//! End-to-end recovery scenarios on the Fig. 6 topology: the orderings
//! behind Figures 7, 8 and 10 must hold at test scale.

use ppa::core::{PlanContext, Planner, StructureAwarePlanner, TaskSet};
use ppa::engine::{EngineConfig, FailureSpec, FtMode, RunReport, Simulation};
use ppa::sim::{SimDuration, SimTime};
use ppa::workloads::{fig6_scenario, Fig6Config, Scenario};

fn cfg() -> Fig6Config {
    Fig6Config {
        rate: 300,
        window: SimDuration::from_secs(10),
        ..Fig6Config::default()
    }
}

fn run(scenario: &Scenario, mode: FtMode, kill: Vec<usize>) -> RunReport {
    Simulation::run(
        &scenario.query,
        scenario.placement.clone(),
        EngineConfig {
            mode,
            ..EngineConfig::default()
        },
        vec![FailureSpec {
            at: SimTime::from_secs(40),
            nodes: kill,
        }],
        SimDuration::from_secs(140),
    )
}

fn mean_secs(report: &RunReport) -> f64 {
    report
        .mean_recovery_latency()
        .expect("all tasks recover")
        .as_secs_f64()
}

#[test]
fn correlated_failure_strategy_ordering() {
    let c = cfg();
    let scenario = fig6_scenario(&c);
    let kill = scenario.worker_kill_set.clone();
    let n = 31;

    let active = mean_secs(&run(&scenario, FtMode::active(n), kill.clone()));
    let cp5 = mean_secs(&run(
        &scenario,
        FtMode::checkpoint(n, SimDuration::from_secs(5)),
        kill.clone(),
    ));
    let cp30 = mean_secs(&run(
        &scenario,
        FtMode::checkpoint(n, SimDuration::from_secs(30)),
        kill.clone(),
    ));
    assert!(active < cp5, "active {active} < checkpoint-5 {cp5}");
    assert!(cp5 < cp30, "checkpoint-5 {cp5} < checkpoint-30 {cp30}");
}

#[test]
fn storm_recovery_grows_with_window() {
    let scenario_small = fig6_scenario(&cfg());
    let big = Fig6Config {
        window: SimDuration::from_secs(30),
        ..cfg()
    };
    let scenario_big = fig6_scenario(&big);
    let storm = |s: &Scenario, w: u64| {
        mean_secs(&run(
            s,
            FtMode::SourceReplay {
                buffer: SimDuration::from_secs(w + 5),
            },
            s.worker_kill_set.clone(),
        ))
    };
    let short = storm(&scenario_small, 10);
    let long = storm(&scenario_big, 30);
    assert!(
        long > short,
        "storm must replay more for longer windows: {long} vs {short}"
    );
}

#[test]
fn recovery_latency_grows_with_rate() {
    let lat = |rate: usize| {
        let c = Fig6Config { rate, ..cfg() };
        let scenario = fig6_scenario(&c);
        mean_secs(&run(
            &scenario,
            FtMode::checkpoint(31, SimDuration::from_secs(15)),
            scenario.worker_kill_set.clone(),
        ))
    };
    assert!(lat(600) > lat(300), "double rate, more backlog to replay");
}

#[test]
fn ppa_half_sits_between_full_and_zero() {
    let c = cfg();
    let scenario = fig6_scenario(&c);
    let kill = scenario.worker_kill_set.clone();
    let cx = PlanContext::new(scenario.query.topology()).unwrap();
    let half = StructureAwarePlanner::default()
        .plan(&cx, 16)
        .unwrap()
        .tasks;
    let interval = SimDuration::from_secs(15);

    let full = mean_secs(&run(
        &scenario,
        FtMode::Ppa {
            plan: TaskSet::full(31),
            checkpoint_interval: Some(interval),
        },
        kill.clone(),
    ));
    let half_lat = mean_secs(&run(&scenario, FtMode::ppa(half, interval), kill.clone()));
    let zero = mean_secs(&run(
        &scenario,
        FtMode::Ppa {
            plan: TaskSet::empty(31),
            checkpoint_interval: Some(interval),
        },
        kill,
    ));
    assert!(full < half_lat, "PPA-1.0 {full} < PPA-0.5 {half_lat}");
    assert!(half_lat < zero, "PPA-0.5 {half_lat} < PPA-0 {zero}");
}

#[test]
fn tentative_output_long_before_full_recovery() {
    let c = Fig6Config {
        window: SimDuration::from_secs(30),
        ..cfg()
    };
    let scenario = fig6_scenario(&c);
    let cx = PlanContext::new(scenario.query.topology()).unwrap();
    let half = StructureAwarePlanner::default()
        .plan(&cx, 16)
        .unwrap()
        .tasks;
    let report = run(
        &scenario,
        FtMode::ppa(half, SimDuration::from_secs(30)),
        scenario.worker_kill_set.clone(),
    );
    let detected = report
        .recoveries
        .iter()
        .map(|r| r.detected_at)
        .min()
        .unwrap();
    let first_tentative = report
        .first_tentative_after(detected)
        .expect("tentative outputs must flow");
    let full = report.full_recovery_at().expect("everything recovers");
    let t = first_tentative.since(detected).as_secs_f64();
    let f = full.since(detected).as_secs_f64();
    assert!(
        f / t.max(1e-9) > 2.0,
        "tentative at {t:.2}s vs full recovery {f:.2}s — gap too small"
    );
}

#[test]
fn detection_happens_on_heartbeat_boundaries() {
    let scenario = fig6_scenario(&cfg());
    let report = run(
        &scenario,
        FtMode::checkpoint(31, SimDuration::from_secs(5)),
        vec![scenario.worker_kill_set[0]],
    );
    for r in &report.recoveries {
        let at = r.detected_at.as_micros();
        assert_eq!(
            at % 5_000_000,
            0,
            "detection on a 5s heartbeat scan, got {}",
            r.detected_at
        );
        assert!(r.detected_at >= r.failed_at);
        assert!(
            r.detected_at.since(r.failed_at) <= SimDuration::from_secs(5),
            "detection within one heartbeat interval"
        );
    }
}

#[test]
fn no_failure_means_no_recoveries_and_clean_sink() {
    let scenario = fig6_scenario(&cfg());
    let report = Simulation::run(
        &scenario.query,
        scenario.placement.clone(),
        EngineConfig {
            mode: FtMode::checkpoint(31, SimDuration::from_secs(5)),
            ..EngineConfig::default()
        },
        vec![],
        SimDuration::from_secs(60),
    );
    assert!(report.recoveries.is_empty());
    assert!(report.sink.iter().all(|s| !s.tentative));
    assert!(!report.sink.is_empty());
}

#[test]
fn engine_runs_are_reproducible_across_processes() {
    // Structural determinism: two independently built simulations with the
    // same seed produce identical sinks and event counts.
    let build = || {
        let scenario = fig6_scenario(&cfg());
        run(
            &scenario,
            FtMode::checkpoint(31, SimDuration::from_secs(15)),
            scenario.worker_kill_set.clone(),
        )
    };
    let a = build();
    let b = build();
    assert_eq!(a.events, b.events);
    let digest = |r: &RunReport| -> Vec<(u64, usize, bool)> {
        r.sink
            .iter()
            .map(|s| (s.batch, s.tuples.len(), s.tentative))
            .collect()
    };
    assert_eq!(digest(&a), digest(&b));
}

#[test]
fn observed_rates_close_the_adaptation_loop() {
    // Run the engine, read back observed per-task rates, re-plan with them
    // (§V-C's dynamic plan adaptation, end to end).
    use ppa::core::{adapt_plan, StructureAwarePlanner};
    let scenario = fig6_scenario(&cfg());
    let report = Simulation::run(
        &scenario.query,
        scenario.placement.clone(),
        EngineConfig::default(),
        vec![],
        SimDuration::from_secs(30),
    );
    let rates = report.observed_out_rates();
    assert_eq!(rates.len(), 31);
    // Sources emit at the configured 300 t/s.
    for (t, &rate) in rates.iter().enumerate().take(16) {
        assert!((rate - 300.0).abs() < 45.0, "source {t} observed {rate}");
    }
    // Downstream halves per hop (selectivity 0.5): O1 tasks ~300 t/s out.
    for (t, &rate) in rates.iter().enumerate().take(24).skip(16) {
        assert!((rate - 300.0).abs() < 60.0, "O1 task {t} observed {rate}");
    }
    // Re-plan against the observed rates: stable workload => no migration.
    let cx = PlanContext::new(scenario.query.topology()).unwrap();
    let planner = StructureAwarePlanner::default();
    let old = planner.plan(&cx, 16).unwrap().tasks;
    let adaptation = adapt_plan(&cx, &planner, &old, 16).unwrap();
    assert!(adaptation.is_noop(), "uniform observed rates keep the plan");
}
