//! Differential parity suite for the approximate recovery family.
//!
//! `FtMode::approximate(.., error_bound = 0)` is the family's anchor: a
//! zero bound means "no divergence tolerated", which normalizes to the
//! exact checkpoint protocol. This suite pins that anchor byte-for-byte
//! on every observable surface — the full `RunReport` (sink tuples,
//! recoveries, outage histories), the serialized `RunLog` JSON the
//! reproduce harness emits, and the engine-event trace JSONL — across
//! the §VI-A kill sets (single node, correlated set, half set), the
//! Q1 workload's kill set, and a generated cascade trace.

use ppa::engine::{
    Cluster, EngineConfig, FailureTrace, FaultFeed, FtMode, RoundRobin, Simulation, StaticPolicy,
    VecSink,
};
use ppa::faults::{CascadeProcess, FailureProcess};
use ppa::obs::to_jsonl;
use ppa::sim::{SimDuration, SimTime};
use ppa::workloads::{fig6_scenario, q1_scenario, Fig6Config, Q1Config, Scenario};
use ppa_bench::runner::RunLog;

/// Every observable surface of one driven run.
struct Surfaces {
    report_debug: String,
    run_log_json: String,
    trace_jsonl: String,
}

/// Drives `scenario` under `mode`, replaying `trace`, and captures every
/// surface the parity claim covers. The run-log strategy label is
/// neutralized — the two modes legitimately carry different labels.
fn drive(scenario: &Scenario, mode: FtMode, trace: &FailureTrace, duration_secs: u64) -> Surfaces {
    let config = EngineConfig {
        seed: 42,
        mode,
        ..EngineConfig::default()
    };
    let mut sim = Simulation::new(&scenario.query, scenario.placement.clone(), config);
    sim.set_trace_sink(Box::new(VecSink::new()));
    let horizon = SimTime::ZERO + SimDuration::from_secs(duration_secs);
    let driven = sim
        .drive(
            &FaultFeed::from_trace(trace.clone()),
            &mut StaticPolicy,
            horizon,
        )
        .expect("kill sets name nodes of their own cluster");
    let events = sim
        .take_trace_sink()
        .map(|mut s| s.take_events())
        .unwrap_or_default();
    let fail_at_s = trace.first_at().map_or(0, |t| t.as_micros() / 1_000_000);
    let log = RunLog::from_report(
        "parity",
        "normalized",
        fail_at_s,
        trace.killed_nodes(),
        &driven.report,
    );
    Surfaces {
        report_debug: format!("{:?}", driven.report),
        run_log_json: log.to_json().to_pretty(),
        trace_jsonl: to_jsonl(&events),
    }
}

/// Asserts all three surfaces byte-identical between exact checkpointing
/// and the zero-bound approximate anchor over the same scenario + trace.
fn assert_parity(name: &str, scenario: &Scenario, trace: &FailureTrace, duration_secs: u64) {
    let n = scenario.graph().n_tasks();
    let interval = SimDuration::from_secs(5);
    let exact = drive(
        scenario,
        FtMode::checkpoint(n, interval),
        trace,
        duration_secs,
    );
    let anchor = drive(
        scenario,
        FtMode::approximate(n, interval, 0),
        trace,
        duration_secs,
    );
    assert_eq!(
        exact.report_debug, anchor.report_debug,
        "{name}: RunReport diverged at bound 0"
    );
    assert_eq!(
        exact.run_log_json, anchor.run_log_json,
        "{name}: RunLog JSON diverged at bound 0"
    );
    assert_eq!(
        exact.trace_jsonl, anchor.trace_jsonl,
        "{name}: trace JSONL diverged at bound 0"
    );
    // The suite must compare real runs, not two empty streams.
    assert!(
        !exact.trace_jsonl.is_empty(),
        "{name}: the traced run recorded no events"
    );
}

fn quick_fig6() -> Scenario {
    fig6_scenario(&Fig6Config {
        rate: 300,
        window: SimDuration::from_secs(10),
        ..Fig6Config::default()
    })
}

#[test]
fn zero_bound_matches_checkpoint_on_the_single_node_kill() {
    // Fig. 7's shape: one worker node dies.
    let s = quick_fig6();
    let trace = FailureTrace::once(SimTime::from_secs(40), vec![s.worker_kill_set[0]]);
    assert_parity("fig07", &s, &trace, 130);
}

#[test]
fn zero_bound_matches_checkpoint_on_the_correlated_kill_set() {
    // Fig. 8's shape: the whole non-source worker set dies at once.
    let s = quick_fig6();
    let trace = FailureTrace::once(SimTime::from_secs(40), s.worker_kill_set.clone());
    assert_parity("fig08", &s, &trace, 130);
}

#[test]
fn zero_bound_matches_checkpoint_on_the_half_kill_set() {
    // Fig. 10's shape: a partial correlated failure (every other worker).
    let s = quick_fig6();
    let half: Vec<usize> = s.worker_kill_set.iter().copied().step_by(2).collect();
    assert!(!half.is_empty());
    let trace = FailureTrace::once(SimTime::from_secs(40), half);
    assert_parity("fig10", &s, &trace, 130);
}

#[test]
fn zero_bound_matches_checkpoint_on_the_q1_workload() {
    // Fig. 12's workload: the hierarchical top-k query (quick shape).
    let s = q1_scenario(&Q1Config {
        src_tasks: 8,
        o1_tasks: 4,
        o2_tasks: 2,
        rate: 150,
        n_objects: 150,
        k: 50,
        window_batches: 10,
        ..Q1Config::default()
    });
    let trace = FailureTrace::once(SimTime::from_secs(30), s.worker_kill_set.clone());
    assert_parity("fig12", &s, &trace, 60);
}

#[test]
fn zero_bound_matches_checkpoint_on_a_generated_cascade() {
    // Beyond the hand-picked kill sets: a seeded cascade on the racked
    // sweep cluster, the same shape approx_sweep replays.
    let cluster = Cluster::racked(12, 12, 4).expect("positive rack size");
    let s = quick_fig6()
        .placed_with(&RoundRobin, &cluster)
        .expect("fig6 fits the sweep cluster");
    let tree = cluster.domains.as_ref().expect("racked cluster has a tree");
    let trace = CascadeProcess {
        level: 1,
        spread: 0.7,
        decay: 0.5,
        hop_delay: SimDuration::from_secs(2),
        fraction: 1.0,
        origin: Some(0),
    }
    .generate_seeded(
        tree,
        SimTime::from_secs(40),
        SimDuration::from_secs(20),
        0xBEEF,
    );
    assert!(
        !trace.killed_nodes().is_empty(),
        "the cascade killed no one"
    );
    assert_parity("cascade", &s, &trace, 130);
}
