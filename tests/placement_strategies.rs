//! Property-style tests of the placement strategies over random
//! topologies (seeded, in-tree RNG — the build environment is offline, so
//! a deterministic case grid stands in for proptest, as in
//! `property_invariants.rs`).
//!
//! Invariants under test:
//!
//! * `DomainSpread` never co-locates a task's primary and its standby in
//!   the same rack when rack capacity allows an escape (some standby node
//!   lives outside the primary's rack);
//! * the `RoundRobin` strategy reproduces `Placement::round_robin`
//!   exactly — bit-identical node assignments — so the refactor cannot
//!   drift from the engine's historical default placement.

use ppa::core::model::TaskGraph;
use ppa::core::{RandomTopologySpec, Skew, TopologyStyle};
use ppa::engine::{Cluster, DomainSpread, Placement, PlacementStrategy, RoundRobin};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Topology × cluster-shape grid: every case is (spec, seed, n_workers,
/// n_standby, rack_size).
fn cases() -> Vec<(RandomTopologySpec, u64, usize, usize, usize)> {
    let mut out = Vec::new();
    let mut case_seed: u64 = 0xC0FF_EE00_D15E_A5E5;
    for ops in [3usize, 6] {
        for join in [0.0, 0.4] {
            for style in [TopologyStyle::Structured, TopologyStyle::Full] {
                for (w, s, rack) in [(4usize, 4usize, 2usize), (6, 6, 3), (9, 3, 4), (5, 5, 5)] {
                    case_seed = case_seed
                        .wrapping_mul(0x5851_F42D_4C95_7F2D)
                        .wrapping_add(0x1405_7B7E_F767_814F);
                    out.push((
                        RandomTopologySpec {
                            n_operators: (ops, ops + 2),
                            parallelism: (1, 4),
                            join_fraction: join,
                            skew: Skew::Uniform,
                            style,
                            ..RandomTopologySpec::default()
                        },
                        case_seed,
                        w,
                        s,
                        rack,
                    ));
                }
            }
        }
    }
    assert_eq!(out.len(), 32);
    out
}

#[test]
fn domain_spread_never_colocates_pairs_when_escapable() {
    for (spec, seed, w, s, rack) in cases() {
        let topo = spec.generate(&mut StdRng::seed_from_u64(seed));
        let graph = TaskGraph::new(topo);
        let cluster = Cluster::racked(w, s, rack).expect("positive rack size");
        let p = DomainSpread::racks()
            .place(&graph, &cluster)
            .expect("random topology places");
        for t in 0..graph.n_tasks() {
            let primary_rack = p.domain_of(p.primary[t]);
            // Capacity allows separation iff some standby node lives
            // outside the primary's rack.
            let escapable = (w..w + s).any(|node| p.domain_of(node) != primary_rack);
            if escapable {
                assert_ne!(
                    p.domain_of(p.standby[t]),
                    primary_rack,
                    "seed {seed} (w={w} s={s} rack={rack}): task {t}'s primary \
                     and standby share a rack despite free capacity elsewhere"
                );
            }
        }
    }
}

#[test]
fn round_robin_strategy_is_bit_identical_to_legacy_round_robin() {
    for (spec, seed, w, s, rack) in cases() {
        let topo = spec.generate(&mut StdRng::seed_from_u64(seed));
        let graph = TaskGraph::new(topo);
        let via_strategy = RoundRobin
            .place(
                &graph,
                &Cluster::racked(w, s, rack).expect("positive rack size"),
            )
            .expect("round robin places");
        let direct = Placement::round_robin(&graph, w, s).expect("round robin places");
        assert_eq!(via_strategy.primary, direct.primary, "seed {seed}");
        assert_eq!(via_strategy.standby, direct.standby, "seed {seed}");
        assert_eq!(via_strategy.n_workers, direct.n_workers);
        assert_eq!(via_strategy.n_standby, direct.n_standby);
    }
}

#[test]
fn domain_spread_balances_load_within_capacity() {
    for (spec, seed, w, s, rack) in cases() {
        let topo = spec.generate(&mut StdRng::seed_from_u64(seed));
        let graph = TaskGraph::new(topo);
        let n = graph.n_tasks();
        let p = DomainSpread::racks()
            .place(
                &graph,
                &Cluster::racked(w, s, rack).expect("positive rack size"),
            )
            .expect("random topology places");
        // No worker exceeds the even share: anti-affinity bends placement,
        // the capacity bound caps it.
        let cap = n.div_ceil(w);
        for node in 0..w {
            assert!(
                p.tasks_on(node).len() <= cap,
                "seed {seed}: node {node} hosts {} tasks (cap {cap})",
                p.tasks_on(node).len()
            );
        }
    }
}
