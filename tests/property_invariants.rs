//! Property-based tests over random topologies: the OF/IC metrics and the
//! planners must satisfy their structural invariants on every input the
//! generator can produce.
//!
//! The build environment is offline, so instead of `proptest` these
//! properties run over a deterministic 48-case grid of generator
//! specifications × derived seeds — the same knobs the proptest strategy
//! sampled, enumerated exhaustively.

use ppa::core::model::TaskIndex;
use ppa::core::{
    GreedyPlanner, PlanContext, Planner, RandomTopologySpec, Skew, StructureAwarePlanner, TaskSet,
    TopologyStyle,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The generator grid: 2 (ops) × 2 (parallelism) × 2 (joins) × 2 (skew) ×
/// 3 (style) = 48 cases, each with a seed derived from its position.
fn cases() -> Vec<(RandomTopologySpec, u64)> {
    let mut out = Vec::new();
    let mut case_seed: u64 = 0x9E37_79B9_7F4A_7C15;
    for ops in [4usize, 8] {
        for para in [1usize, 6] {
            for join in [0.0, 0.5] {
                for skew in [Skew::Uniform, Skew::Zipf { s: 0.3 }] {
                    for style in [
                        TopologyStyle::Structured,
                        TopologyStyle::Full,
                        TopologyStyle::Mixed {
                            full_probability: 0.3,
                        },
                    ] {
                        case_seed = case_seed
                            .wrapping_mul(0x5851_F42D_4C95_7F2D)
                            .wrapping_add(0x1405_7B7E_F767_814F);
                        out.push((
                            RandomTopologySpec {
                                n_operators: (ops, ops + 2),
                                parallelism: (1, para + 2),
                                join_fraction: join,
                                skew,
                                style,
                                ..RandomTopologySpec::default()
                            },
                            case_seed,
                        ));
                    }
                }
            }
        }
    }
    assert_eq!(out.len(), 48);
    out
}

#[test]
fn fidelity_is_bounded_and_boundary_exact() {
    for (spec, seed) in cases() {
        let topo = spec.generate(&mut StdRng::seed_from_u64(seed));
        let cx = PlanContext::new(&topo).unwrap();
        let n = cx.n_tasks();
        assert!(
            (cx.of_plan(&TaskSet::full(n)) - 1.0).abs() < 1e-9,
            "seed {seed}"
        );
        assert_eq!(cx.of_plan(&TaskSet::empty(n)), 0.0, "seed {seed}");
        // Any random subset stays within [0, 1].
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let subset = TaskSet::from_tasks(
            n,
            (0..n)
                .filter(|_| rand::Rng::gen_bool(&mut rng, 0.5))
                .map(TaskIndex),
        );
        let of = cx.of_plan(&subset);
        assert!(
            (0.0..=1.0 + 1e-9).contains(&of),
            "seed {seed}: OF out of range: {of}"
        );
        let ic = cx.ic_plan(&subset);
        assert!(
            (0.0..=1.0 + 1e-9).contains(&ic),
            "seed {seed}: IC out of range: {ic}"
        );
    }
}

#[test]
fn fidelity_is_monotone_in_failures() {
    for (spec, seed) in cases() {
        let topo = spec.generate(&mut StdRng::seed_from_u64(seed));
        let cx = PlanContext::new(&topo).unwrap();
        let n = cx.n_tasks();
        let fid = cx.fidelity();
        let mut failed = TaskSet::empty(n);
        let mut prev = fid.output_fidelity(&failed);
        let mut order: Vec<usize> = (0..n).collect();
        // Deterministic shuffle from the seed.
        for i in (1..order.len()).rev() {
            let j = (seed as usize).wrapping_mul(i).wrapping_add(17) % (i + 1);
            order.swap(i, j);
        }
        for t in order {
            failed.insert(TaskIndex(t));
            let next = fid.output_fidelity(&failed);
            assert!(
                next <= prev + 1e-9,
                "seed {seed}: failing more tasks raised OF"
            );
            prev = next;
        }
    }
}

#[test]
fn ic_never_underestimates_of() {
    // Correlation only adds loss: for the same failed set, IC >= OF.
    for (spec, seed) in cases() {
        let topo = spec.generate(&mut StdRng::seed_from_u64(seed));
        let cx = PlanContext::new(&topo).unwrap();
        let n = cx.n_tasks();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let failed = TaskSet::from_tasks(
            n,
            (0..n)
                .filter(|_| rand::Rng::gen_bool(&mut rng, 0.3))
                .map(TaskIndex),
        );
        let fid = cx.fidelity();
        assert!(
            fid.internal_completeness(&failed) >= fid.output_fidelity(&failed) - 1e-9,
            "seed {seed}"
        );
    }
}

#[test]
fn planners_respect_budget_and_bounds() {
    for (spec, seed) in cases() {
        let topo = spec.generate(&mut StdRng::seed_from_u64(seed));
        let cx = PlanContext::new(&topo).unwrap();
        let n = cx.n_tasks();
        for ratio in [0.2, 0.5] {
            let budget = ((n as f64) * ratio) as usize;
            let sa = StructureAwarePlanner::default().plan(&cx, budget).unwrap();
            let gr = GreedyPlanner.plan(&cx, budget).unwrap();
            assert!(sa.resources() <= budget, "seed {seed}");
            assert!(gr.resources() <= budget, "seed {seed}");
            assert!((0.0..=1.0 + 1e-9).contains(&sa.value), "seed {seed}");
            assert!((0.0..=1.0 + 1e-9).contains(&gr.value), "seed {seed}");
            // Plan value must equal re-evaluating the plan's task set.
            assert!(
                (cx.of_plan(&sa.tasks) - sa.value).abs() < 1e-9,
                "seed {seed}"
            );
        }
    }
}

#[test]
fn sa_is_near_monotone_in_budget() {
    // SA is a heuristic (as is the paper's): a larger budget can steer
    // its greedy path to a slightly different plan, so monotonicity is
    // asserted with a small tolerance. The endpoint is exact: the full
    // budget must always reach OF 1.
    for (spec, seed) in cases() {
        let topo = spec.generate(&mut StdRng::seed_from_u64(seed));
        let cx = PlanContext::new(&topo).unwrap();
        let n = cx.n_tasks();
        let mut prev = -1.0;
        for ratio in [0.1, 0.3, 0.6, 1.0] {
            let budget = ((n as f64) * ratio).ceil() as usize;
            let plan = StructureAwarePlanner::default().plan(&cx, budget).unwrap();
            assert!(
                plan.value >= prev - 0.05,
                "seed {seed}: budget {budget} dropped OF from {prev} to {}",
                plan.value
            );
            prev = prev.max(plan.value);
        }
        // Full budget must reach OF 1.
        let full = StructureAwarePlanner::default().plan(&cx, n).unwrap();
        assert!(
            (full.value - 1.0).abs() < 1e-9,
            "seed {seed}: full budget OF {}",
            full.value
        );
    }
}

#[test]
fn mc_trees_are_minimal_and_alive() {
    use ppa::core::{enumerate_mc_trees, McTreeLimits};
    for (spec, seed) in cases() {
        let topo = spec.generate(&mut StdRng::seed_from_u64(seed));
        let cx = PlanContext::new(&topo).unwrap();
        let limits = McTreeLimits { max_trees: 5_000 };
        let Ok(trees) = enumerate_mc_trees(cx.graph(), limits) else {
            continue; // explosion guard fired: acceptable
        };
        for tree in trees.iter().take(64) {
            // A complete tree alone yields positive fidelity...
            assert!(
                cx.of_plan(tree) > 0.0,
                "seed {seed}: tree {tree:?} contributes nothing"
            );
            // ...and removing any single task kills this tree's contribution
            // or at least never increases fidelity (minimality).
            let with = cx.of_plan(tree);
            for t in tree.iter() {
                let mut smaller = tree.clone();
                smaller.remove(t);
                assert!(cx.of_plan(&smaller) <= with + 1e-9, "seed {seed}");
            }
        }
    }
}
