//! Property-based tests over random topologies: the OF/IC metrics and the
//! planners must satisfy their structural invariants on every input the
//! generator can produce.

use ppa::core::{
    GreedyPlanner, PlanContext, Planner, RandomTopologySpec, Skew, StructureAwarePlanner,
    TaskSet, TopologyStyle,
};
use ppa::core::model::TaskIndex;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spec_strategy() -> impl Strategy<Value = (RandomTopologySpec, u64)> {
    (
        (4usize..=8),
        (1usize..=6),
        prop_oneof![Just(0.0), Just(0.5)],
        prop_oneof![Just(Skew::Uniform), Just(Skew::Zipf { s: 0.3 })],
        prop_oneof![
            Just(TopologyStyle::Structured),
            Just(TopologyStyle::Full),
            Just(TopologyStyle::Mixed { full_probability: 0.3 })
        ],
        any::<u64>(),
    )
        .prop_map(|(ops, para, join, skew, style, seed)| {
            (
                RandomTopologySpec {
                    n_operators: (ops, ops + 2),
                    parallelism: (1, para + 2),
                    join_fraction: join,
                    skew,
                    style,
                    ..RandomTopologySpec::default()
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fidelity_is_bounded_and_boundary_exact((spec, seed) in spec_strategy()) {
        let topo = spec.generate(&mut StdRng::seed_from_u64(seed));
        let cx = PlanContext::new(&topo).unwrap();
        let n = cx.n_tasks();
        prop_assert!((cx.of_plan(&TaskSet::full(n)) - 1.0).abs() < 1e-9);
        prop_assert_eq!(cx.of_plan(&TaskSet::empty(n)), 0.0);
        // Any random subset stays within [0, 1].
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let subset = TaskSet::from_tasks(
            n,
            (0..n).filter(|_| rand::Rng::gen_bool(&mut rng, 0.5)).map(TaskIndex),
        );
        let of = cx.of_plan(&subset);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&of), "OF out of range: {}", of);
        let ic = cx.ic_plan(&subset);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&ic), "IC out of range: {}", ic);
    }

    #[test]
    fn fidelity_is_monotone_in_failures((spec, seed) in spec_strategy()) {
        let topo = spec.generate(&mut StdRng::seed_from_u64(seed));
        let cx = PlanContext::new(&topo).unwrap();
        let n = cx.n_tasks();
        let fid = cx.fidelity();
        let mut failed = TaskSet::empty(n);
        let mut prev = fid.output_fidelity(&failed);
        let mut order: Vec<usize> = (0..n).collect();
        // Deterministic shuffle from the seed.
        for i in (1..order.len()).rev() {
            let j = (seed as usize).wrapping_mul(i).wrapping_add(17) % (i + 1);
            order.swap(i, j);
        }
        for t in order {
            failed.insert(TaskIndex(t));
            let next = fid.output_fidelity(&failed);
            prop_assert!(next <= prev + 1e-9, "failing more tasks raised OF");
            prev = next;
        }
    }

    #[test]
    fn ic_never_underestimates_of((spec, seed) in spec_strategy()) {
        // Correlation only adds loss: for the same failed set, IC >= OF.
        let topo = spec.generate(&mut StdRng::seed_from_u64(seed));
        let cx = PlanContext::new(&topo).unwrap();
        let n = cx.n_tasks();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let failed = TaskSet::from_tasks(
            n,
            (0..n).filter(|_| rand::Rng::gen_bool(&mut rng, 0.3)).map(TaskIndex),
        );
        let fid = cx.fidelity();
        prop_assert!(
            fid.internal_completeness(&failed) >= fid.output_fidelity(&failed) - 1e-9
        );
    }

    #[test]
    fn planners_respect_budget_and_bounds((spec, seed) in spec_strategy()) {
        let topo = spec.generate(&mut StdRng::seed_from_u64(seed));
        let cx = PlanContext::new(&topo).unwrap();
        let n = cx.n_tasks();
        for ratio in [0.2, 0.5] {
            let budget = ((n as f64) * ratio) as usize;
            let sa = StructureAwarePlanner::default().plan(&cx, budget).unwrap();
            let gr = GreedyPlanner.plan(&cx, budget).unwrap();
            prop_assert!(sa.resources() <= budget);
            prop_assert!(gr.resources() <= budget);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&sa.value));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&gr.value));
            // Plan value must equal re-evaluating the plan's task set.
            prop_assert!((cx.of_plan(&sa.tasks) - sa.value).abs() < 1e-9);
        }
    }

    #[test]
    fn sa_is_near_monotone_in_budget((spec, seed) in spec_strategy()) {
        // SA is a heuristic (as is the paper's): a larger budget can steer
        // its greedy path to a slightly different plan, so monotonicity is
        // asserted with a small tolerance. The endpoint is exact: the full
        // budget must always reach OF 1.
        let topo = spec.generate(&mut StdRng::seed_from_u64(seed));
        let cx = PlanContext::new(&topo).unwrap();
        let n = cx.n_tasks();
        let mut prev = -1.0;
        for ratio in [0.1, 0.3, 0.6, 1.0] {
            let budget = ((n as f64) * ratio).ceil() as usize;
            let plan = StructureAwarePlanner::default().plan(&cx, budget).unwrap();
            prop_assert!(
                plan.value >= prev - 0.05,
                "budget {} dropped OF from {} to {}",
                budget,
                prev,
                plan.value
            );
            prev = prev.max(plan.value);
        }
        // Full budget must reach OF 1.
        let full = StructureAwarePlanner::default().plan(&cx, n).unwrap();
        prop_assert!((full.value - 1.0).abs() < 1e-9, "full budget OF {}", full.value);
    }

    #[test]
    fn mc_trees_are_minimal_and_alive((spec, seed) in spec_strategy()) {
        use ppa::core::{enumerate_mc_trees, McTreeLimits};
        let topo = spec.generate(&mut StdRng::seed_from_u64(seed));
        let cx = PlanContext::new(&topo).unwrap();
        let limits = McTreeLimits { max_trees: 5_000 };
        let Ok(trees) = enumerate_mc_trees(cx.graph(), limits) else {
            return Ok(()); // explosion guard fired: acceptable
        };
        for tree in trees.iter().take(64) {
            // A complete tree alone yields positive fidelity...
            prop_assert!(cx.of_plan(tree) > 0.0, "tree {:?} contributes nothing", tree);
            // ...and removing any single task kills this tree's contribution
            // or at least never increases fidelity (minimality).
            let with = cx.of_plan(tree);
            for t in tree.iter() {
                let mut smaller = tree.clone();
                smaller.remove(t);
                prop_assert!(cx.of_plan(&smaller) <= with + 1e-9);
            }
        }
    }
}
