//! The accuracy pipeline end-to-end: plans of increasing budget must yield
//! increasing measured tentative accuracy on Q1 and Q2, and the OF metric
//! must predict it better than IC does on the join query.

use ppa::core::planner::Objective;
use ppa::core::{Planner, StructureAwarePlanner, TaskSet};
use ppa_bench::experiments::fig12::{AccuracyHarness, QueryKind};
use ppa_bench::RunCtx;

#[test]
fn q1_accuracy_tracks_of_and_grows_with_budget() {
    let harness = AccuracyHarness::new(&RunCtx::serial(true), QueryKind::Q1, true);
    let cx = harness.context(Objective::OutputFidelity);
    let mut prev_acc = -1.0;
    for ratio in [0.3, 0.6, 0.9] {
        let plan = StructureAwarePlanner::default()
            .plan(&cx, harness.budget(ratio))
            .unwrap();
        let acc = harness.measure(&plan.tasks);
        assert!(
            acc >= prev_acc - 0.08,
            "accuracy should not collapse as budget grows: {acc} after {prev_acc}"
        );
        assert!(
            (acc - cx.of_plan(&plan.tasks)).abs() < 0.25,
            "ratio {ratio}: OF {} vs measured {acc}",
            cx.of_plan(&plan.tasks)
        );
        prev_acc = acc;
    }
}

#[test]
fn q1_empty_plan_loses_everything() {
    let harness = AccuracyHarness::new(&RunCtx::serial(true), QueryKind::Q1, true);
    let n = harness.scenario.graph().n_tasks();
    let acc = harness.measure(&TaskSet::empty(n));
    assert_eq!(acc, 0.0, "no replicas, no tentative output");
}

#[test]
fn q1_full_plan_is_nearly_perfect() {
    let harness = AccuracyHarness::new(&RunCtx::serial(true), QueryKind::Q1, true);
    let n = harness.scenario.graph().n_tasks();
    let acc = harness.measure(&TaskSet::full(n));
    assert!(
        acc > 0.9,
        "full replication keeps the top-k intact, got {acc}"
    );
}

#[test]
fn q2_of_plan_beats_ic_plan_in_reality() {
    let harness = AccuracyHarness::new(&RunCtx::serial(true), QueryKind::Q2, true);
    let cx_of = harness.context(Objective::OutputFidelity);
    let cx_ic = harness.context(Objective::InternalCompleteness);
    let budget = harness.budget(0.6);
    let plan_of = StructureAwarePlanner::default()
        .plan(&cx_of, budget)
        .unwrap();
    let plan_ic = StructureAwarePlanner::default()
        .plan(&cx_ic, budget)
        .unwrap();
    let acc_of = harness.measure(&plan_of.tasks);
    let acc_ic = harness.measure(&plan_ic.tasks);
    assert!(
        acc_of >= acc_ic,
        "the OF-optimized plan ({acc_of}) must not lose to the IC one ({acc_ic})"
    );
    // And IC's self-assessment overshoots its delivered accuracy.
    assert!(
        plan_ic.value > acc_ic + 0.2,
        "IC promised {} but delivered {acc_ic}",
        plan_ic.value
    );
}

#[test]
fn q2_full_plan_detects_all_jams() {
    let harness = AccuracyHarness::new(&RunCtx::serial(true), QueryKind::Q2, true);
    let n = harness.scenario.graph().n_tasks();
    let acc = harness.measure(&TaskSet::full(n));
    assert!(
        acc > 0.95,
        "full replication must keep detecting jams, got {acc}"
    );
}

#[test]
fn experiments_registry_is_complete() {
    let ids: Vec<&str> = ppa_bench::registry().iter().map(|e| e.id).collect();
    assert_eq!(
        ids,
        vec![
            "fig07",
            "fig08",
            "fig09",
            "fig10",
            "fig12",
            "fig13",
            "fig14",
            "tentative",
            "corr_sweep",
            "placement_sweep",
            "adaptive_sweep",
            "refail_sweep",
            "scale_sweep",
            "approx_sweep",
            "chaos_swarm"
        ]
    );
}

#[test]
fn fig9_experiment_shape_holds_at_quick_scale() {
    let figs = ppa_bench::experiments::fig09::run(&RunCtx::serial(true));
    let fig = &figs[0];
    for series in &fig.series {
        // Ratio falls monotonically with the checkpoint interval.
        let ys: Vec<f64> = series.points.iter().map(|(_, y)| *y).collect();
        for pair in ys.windows(2) {
            assert!(pair[0] > pair[1], "{}: {ys:?}", series.label);
        }
    }
    // Higher rate, higher ratio at every interval.
    let low = &fig.series[0];
    let high = &fig.series[1];
    for (l, h) in low.points.iter().zip(&high.points) {
        assert!(h.1 > l.1, "rate ordering at interval {}", l.0);
    }
}

#[test]
fn figure_markdown_is_renderable() {
    for fig in ppa_bench::experiments::fig09::run(&RunCtx::serial(true)) {
        let md = fig.to_markdown();
        assert!(md.contains("### fig09"));
        assert!(md.lines().count() > 5);
    }
}
