//! Cross-crate integration tests: planners on the actual evaluation
//! topologies (Fig. 6, Q1, Q2).

use ppa::core::planner::Objective;
use ppa::core::{DpPlanner, GreedyPlanner, PlanContext, Planner, StructureAwarePlanner, TaskSet};
use ppa::sim::SimDuration;
use ppa::workloads::navigation::{q2_query, NavigationConfig};
use ppa::workloads::synthetic::{fig6_query, Fig6Config};
use ppa::workloads::worldcup::{q1_query, Q1Config};

fn fig6_cx() -> PlanContext {
    let q = fig6_query(&Fig6Config {
        rate: 500,
        window: SimDuration::from_secs(10),
        ..Fig6Config::default()
    });
    PlanContext::new(q.topology()).unwrap()
}

#[test]
fn fig6_has_16_mc_trees_of_5_tasks() {
    let cx = fig6_cx();
    let trees = cx.mc_trees().unwrap();
    assert_eq!(
        trees.len(),
        16,
        "one tree per source task through the merge chain"
    );
    for tree in trees {
        assert_eq!(tree.len(), 5, "source + O1 + O2 + O3 + O4");
    }
}

#[test]
fn sa_matches_dp_on_fig6_at_every_budget() {
    let cx = fig6_cx();
    for budget in [0, 3, 5, 10, 16, 24, 31] {
        let dp = DpPlanner::default().plan(&cx, budget).unwrap();
        let sa = StructureAwarePlanner::default().plan(&cx, budget).unwrap();
        assert!(
            (sa.value - dp.value).abs() < 1e-9,
            "budget {budget}: SA {} vs DP {}",
            sa.value,
            dp.value
        );
    }
}

#[test]
fn greedy_never_beats_dp_on_fig6() {
    let cx = fig6_cx();
    for budget in [5, 10, 16, 24] {
        let dp = DpPlanner::default().plan(&cx, budget).unwrap();
        let gr = GreedyPlanner.plan(&cx, budget).unwrap();
        assert!(gr.value <= dp.value + 1e-9, "budget {budget}");
    }
}

#[test]
fn fig6_planners_respect_budgets() {
    let cx = fig6_cx();
    let planners: Vec<Box<dyn Planner>> = vec![
        Box::new(DpPlanner::default()),
        Box::new(StructureAwarePlanner::default()),
        Box::new(GreedyPlanner),
    ];
    for planner in &planners {
        for budget in [0, 1, 7, 31, 100] {
            let plan = planner.plan(&cx, budget).unwrap();
            assert!(plan.resources() <= budget.min(31), "{}", planner.name());
        }
    }
}

#[test]
fn q1_dp_is_optimal_over_brute_force_range() {
    let q = q1_query(&Q1Config {
        src_tasks: 4,
        o1_tasks: 2,
        o2_tasks: 2,
        rate: 100,
        n_objects: 64,
        k: 10,
        window_batches: 4,
        ..Q1Config::default()
    });
    let cx = PlanContext::new(q.topology()).unwrap();
    let bf = ppa::core::BruteForcePlanner::default();
    for budget in 0..=cx.n_tasks() {
        let dp = DpPlanner::default().plan(&cx, budget).unwrap();
        let opt = bf.plan(&cx, budget).unwrap();
        assert!(
            (dp.value - opt.value).abs() < 1e-9,
            "budget {budget}: dp {} vs optimal {}",
            dp.value,
            opt.value
        );
    }
}

#[test]
fn q2_join_makes_of_and_ic_diverge() {
    let q = q2_query(&NavigationConfig::default());
    let cx = PlanContext::new(q.topology()).unwrap();
    let n = cx.n_tasks();
    // Replicate only the location-side chain: positive IC, zero OF.
    // Build it from the IC objective's own "trees".
    let cx_ic = PlanContext::new(q.topology())
        .unwrap()
        .with_objective(Objective::InternalCompleteness);
    let mut max_gap = 0.0f64;
    for budget in [n / 3, n / 2, 2 * n / 3] {
        let ic_plan = StructureAwarePlanner::default()
            .plan(&cx_ic, budget)
            .unwrap();
        let of = cx.of_plan(&ic_plan.tasks);
        // IC never underestimates OF for the same plan...
        assert!(of <= ic_plan.value + 1e-9, "budget {budget}");
        max_gap = max_gap.max(ic_plan.value - of);
    }
    // ...and at some budget the IC-optimized plan strands a join side, so
    // the gap is substantial (the Fig. 12(b) effect).
    assert!(
        max_gap > 0.05,
        "IC and OF never diverged (max gap {max_gap})"
    );
}

#[test]
fn full_replication_is_perfect_on_all_workload_topologies() {
    let queries = [
        fig6_query(&Fig6Config::default()).topology().clone(),
        q1_query(&Q1Config::default()).topology().clone(),
        q2_query(&NavigationConfig::default()).topology().clone(),
    ];
    for topology in &queries {
        let cx = PlanContext::new(topology).unwrap();
        let all = TaskSet::full(cx.n_tasks());
        assert!((cx.of_plan(&all) - 1.0).abs() < 1e-9);
        assert!((cx.ic_plan(&all) - 1.0).abs() < 1e-9);
        let none = TaskSet::empty(cx.n_tasks());
        assert_eq!(cx.of_plan(&none), 0.0);
    }
}

#[test]
fn sa_value_grows_with_budget_on_q2() {
    let q = q2_query(&NavigationConfig::default());
    let cx = PlanContext::new(q.topology()).unwrap();
    let mut prev = -1.0;
    for budget in [0, 4, 8, 12, 16, 19] {
        let plan = StructureAwarePlanner::default().plan(&cx, budget).unwrap();
        assert!(plan.value >= prev - 1e-9, "budget {budget}");
        prev = plan.value;
    }
}
