//! Control-plane contract tests.
//!
//! 1. **Parity**: `Simulation::drive` with a `StaticPolicy` (which is what
//!    the legacy `run`/`run_trace` wrappers call) must be byte-identical
//!    to the historical direct paths — `inject` + `run_until` and
//!    `inject_trace` + `run_until` — over the kill sets the fig07–fig12
//!    experiments use. The digests include every sink tuple, so "equal"
//!    means observably equal, not summary-equal.
//! 2. **Health decay**: `DomainHealth`'s decayed score is monotonically
//!    non-increasing between failures, over a deterministic grid of
//!    half-lives, failure patterns and sample offsets (the offline
//!    stand-in for a proptest strategy).

use ppa::engine::{
    DomainHealth, EngineConfig, FailureSpec, FaultFeed, FtMode, RunReport, Simulation, StaticPolicy,
};
use ppa::sim::{SimDuration, SimTime};
use ppa::workloads::{fig6_scenario, q1_scenario, Fig6Config, Q1Config};
use ppa_core::{Planner, StructureAwarePlanner, TaskSet};
use ppa_faults::{CascadeProcess, DomainId, FailureProcess, FailureTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything observable about a run, sink payloads included.
fn digest(rep: &RunReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("events={}\n", rep.events));
    for s in &rep.sink {
        out.push_str(&format!(
            "sink t{} b{} at{} tent{} {:?}\n",
            s.task.0,
            s.batch,
            s.at.as_micros(),
            s.tentative,
            s.tuples
        ));
    }
    for r in &rep.recoveries {
        out.push_str(&format!(
            "rec t{} replica{} det{} rec{:?}\n",
            r.task.0,
            r.via_replica,
            r.detected_at.as_micros(),
            r.recovered_at.map(|t| t.as_micros())
        ));
    }
    out
}

fn quick_fig6() -> Fig6Config {
    Fig6Config {
        rate: 300,
        window: SimDuration::from_secs(10),
        ..Fig6Config::default()
    }
}

/// One parity case: a scenario + mode + kill set, checked along both
/// legacy paths (spec injection and trace replay) against `drive`.
fn assert_parity(
    scenario: &ppa::workloads::Scenario,
    mode: impl Fn() -> FtMode,
    kill_nodes: Vec<usize>,
    label: &str,
) {
    let config = || EngineConfig {
        mode: mode(),
        ..EngineConfig::default()
    };
    let duration = SimDuration::from_secs(90);
    let at = SimTime::from_secs(40);

    // Legacy path 1: direct spec injection + the plain event loop.
    let mut legacy = Simulation::new(&scenario.query, scenario.placement.clone(), config());
    legacy
        .inject(FailureSpec {
            at,
            nodes: kill_nodes.clone(),
        })
        .expect("kill set names cluster nodes");
    let legacy_specs = legacy.run_until(SimTime::ZERO + duration);

    // Legacy path 2: trace replay + the plain event loop.
    let trace = FailureTrace::once(at, kill_nodes.clone());
    let mut legacy = Simulation::new(&scenario.query, scenario.placement.clone(), config());
    legacy.inject_trace(&trace).expect("trace is valid");
    let legacy_trace = legacy.run_until(SimTime::ZERO + duration);

    // The control-plane loop with the do-nothing policy.
    let mut sim = Simulation::new(&scenario.query, scenario.placement.clone(), config());
    let driven = sim
        .drive(
            &FaultFeed::from_specs(vec![FailureSpec {
                at,
                nodes: kill_nodes,
            }]),
            &mut StaticPolicy,
            SimTime::ZERO + duration,
        )
        .expect("feed resolves");

    assert_eq!(
        digest(&legacy_specs),
        digest(&driven.report),
        "{label}: drive(StaticPolicy) diverged from inject + run_until"
    );
    assert_eq!(
        digest(&legacy_trace),
        digest(&driven.report),
        "{label}: drive(StaticPolicy) diverged from inject_trace + run_until"
    );
    assert!(driven.actions.is_empty(), "{label}: static policy acted");
}

#[test]
fn drive_matches_legacy_paths_on_fig07_single_failure() {
    let s = fig6_scenario(&quick_fig6());
    let node = s.worker_kill_set[0];
    let n = s.graph().n_tasks();
    assert_parity(
        &s,
        || FtMode::checkpoint(n, SimDuration::from_secs(5)),
        vec![node],
        "fig07",
    );
}

#[test]
fn drive_matches_legacy_paths_on_fig08_correlated_failure() {
    let s = fig6_scenario(&quick_fig6());
    let kill = s.worker_kill_set.clone();
    let n = s.graph().n_tasks();
    assert_parity(
        &s,
        || FtMode::checkpoint(n, SimDuration::from_secs(5)),
        kill,
        "fig08",
    );
}

#[test]
fn drive_matches_legacy_paths_on_fig10_ppa_plan() {
    let s = fig6_scenario(&quick_fig6());
    let kill = s.worker_kill_set.clone();
    let n = s.graph().n_tasks();
    let cx = ppa_core::PlanContext::new(s.query.topology()).expect("fig6 plans");
    let plan: TaskSet = StructureAwarePlanner::default()
        .plan(&cx, n / 2)
        .expect("SA plan")
        .tasks;
    assert_parity(
        &s,
        || FtMode::ppa(plan.clone(), SimDuration::from_secs(5)),
        kill,
        "fig10",
    );
}

#[test]
fn drive_matches_legacy_paths_on_fig12_q1_workload() {
    let cfg = Q1Config {
        rate: 200,
        ..Q1Config::default()
    };
    let s = q1_scenario(&cfg);
    let kill = s.worker_kill_set.clone();
    let n = s.graph().n_tasks();
    assert_parity(
        &s,
        || FtMode::checkpoint(n, SimDuration::from_secs(5)),
        kill,
        "fig12",
    );
}

#[test]
fn drive_matches_run_trace_on_a_generated_cascade() {
    // The public wrappers themselves (`run_trace` routes through drive)
    // against the plain loop, over a multi-event generated trace.
    let s = fig6_scenario(&quick_fig6());
    let tree = s.worker_fault_domains(5);
    let process = CascadeProcess {
        level: 1,
        spread: 0.9,
        decay: 0.5,
        hop_delay: SimDuration::from_secs(2),
        fraction: 1.0,
        origin: None,
    };
    let trace = process.generate_seeded(
        &tree,
        SimTime::from_secs(40),
        SimDuration::from_secs(30),
        11,
    );
    assert!(trace.len() > 1, "cascade produced a multi-event trace");
    let n = s.graph().n_tasks();
    let config = || EngineConfig {
        mode: FtMode::checkpoint(n, SimDuration::from_secs(5)),
        ..EngineConfig::default()
    };
    let duration = SimDuration::from_secs(90);
    let mut legacy = Simulation::new(&s.query, s.placement.clone(), config());
    legacy.inject_trace(&trace).expect("trace is valid");
    let legacy = legacy.run_until(SimTime::ZERO + duration);
    let wrapped = Simulation::run_trace(&s.query, s.placement.clone(), config(), &trace, duration);
    assert_eq!(digest(&legacy), digest(&wrapped));
}

/// Random multi-wave kill trace over a scenario: waves re-kill nodes of
/// earlier waves and aim at the standby nodes hosting activated replicas
/// — the re-failure path under test. Deterministic in `(waves, seed)`.
fn multi_wave_failures(s: &ppa::workloads::Scenario, waves: usize, seed: u64) -> Vec<FailureSpec> {
    let mut rng = StdRng::seed_from_u64(0x007a_6e00 ^ ((waves as u64) << 32) ^ seed);
    // Kill pool: the worker nodes plus every standby node hosting a
    // replica — the nodes whose death causes re-failures.
    let mut pool = s.worker_kill_set.clone();
    pool.extend(s.placement.standby.iter().copied());
    pool.sort_unstable();
    pool.dedup();
    let mut failures: Vec<FailureSpec> = Vec::new();
    let mut at = 20u64;
    for w in 0..waves {
        at += rng.gen_range(5..20u64);
        let k = rng.gen_range(1..5usize);
        let mut nodes: Vec<usize> = (0..k).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
        if w > 0 {
            // Explicit repeat kill of an earlier wave's node.
            nodes.push(failures[w - 1].nodes[0]);
            // And aim at the standby hosting the activated replica of a
            // first-wave victim.
            if let Some(&victim) = s.placement.tasks_on(failures[0].nodes[0]).first() {
                nodes.push(s.placement.standby[victim.0]);
            }
        }
        nodes.sort_unstable();
        nodes.dedup();
        failures.push(FailureSpec {
            at: SimTime::from_secs(at),
            nodes,
        });
    }
    failures
}

#[test]
fn outage_histories_are_consistent_under_repeat_kills() {
    // Deterministic grid standing in for a proptest strategy: random
    // multi-wave traces over the Fig. 6 scenario, with waves re-killing
    // nodes of earlier waves and hitting the standby nodes where
    // activated replicas live. For every task's outage history:
    //
    //   * every record satisfies failed_at ≤ detected_at ≤ recovered_at
    //     (with the undetected/unrecovered tails allowed only on the
    //     last, still-open record);
    //   * histories are time-ordered and only ever extended after the
    //     previous outage recovered;
    //   * the report's `recoveries` view is exactly each history's first
    //     record — so single-wave traces reproduce the historical
    //     one-shot report (regression parity).
    let mut total_refails = 0usize;
    for waves in [1usize, 3] {
        for seed in 0..6u64 {
            let s = fig6_scenario(&quick_fig6());
            let n = s.graph().n_tasks();
            let failures = multi_wave_failures(&s, waves, seed);
            let config = EngineConfig {
                mode: FtMode::ppa(TaskSet::full(n), SimDuration::from_secs(5)),
                ..EngineConfig::default()
            };
            let report = Simulation::run(
                &s.query,
                s.placement.clone(),
                config,
                failures.clone(),
                SimDuration::from_secs(100),
            );

            let label = format!("waves {waves} seed {seed} failures {failures:?}");
            assert_eq!(
                report.recoveries.len(),
                report.outages.len(),
                "one first-outage view per history: {label}"
            );
            for (view, history) in report.recoveries.iter().zip(&report.outages) {
                assert!(!history.records.is_empty(), "{label}");
                // The view is exactly the first record.
                assert_eq!(view.task, history.task, "{label}");
                let first = &history.records[0];
                assert_eq!(view.via_replica, first.via_replica, "{label}");
                assert_eq!(view.failed_at, first.failed_at, "{label}");
                assert_eq!(view.detected_at, first.detected_at, "{label}");
                assert_eq!(view.recovered_at, first.recovered_at, "{label}");
                if waves == 1 {
                    assert_eq!(
                        history.records.len(),
                        1,
                        "single-wave histories are one-shot: {label}"
                    );
                }
                for (i, rec) in history.records.iter().enumerate() {
                    // Only the last record may still be open/undetected.
                    if i + 1 < history.records.len() {
                        assert!(rec.detected() && !rec.open(), "{label}: {history:?}");
                    }
                    if rec.detected() {
                        assert!(rec.failed_at <= rec.detected_at, "{label}: {rec:?}");
                    } else {
                        assert!(rec.open(), "recovered but never detected: {rec:?}");
                    }
                    if let Some(recovered) = rec.recovered_at {
                        assert!(rec.detected(), "{label}: {rec:?}");
                        assert!(recovered >= rec.detected_at, "{label}: {rec:?}");
                    }
                    if i > 0 {
                        assert!(
                            rec.failed_at >= history.records[i - 1].failed_at,
                            "history out of time order: {label}: {history:?}"
                        );
                    }
                }
                total_refails += history.refail_count();
            }
        }
    }
    assert!(
        total_refails > 0,
        "the grid must actually exercise re-failures"
    );
}

#[test]
fn trace_events_agree_with_outage_histories() {
    // The structured event stream must be consistent with the report's
    // outage accounting, over the same random multi-wave grid as above.
    // Per OutageRecord: one OutageOpened with the right refail flag, a
    // matching OutageDetected at detected_at, and exactly one closing
    // event whose variant (ReplicaActivated / RestoreDone) matches
    // via_replica.
    use ppa::engine::{EngineEvent, TraceSink};
    use std::sync::{Arc, Mutex};

    struct SharedSink(Arc<Mutex<Vec<(SimTime, EngineEvent)>>>);
    impl TraceSink for SharedSink {
        fn record(&mut self, at: SimTime, event: &EngineEvent) {
            self.0
                .lock()
                .expect("sink buffer")
                .push((at, event.clone()));
        }
    }

    let mut total_refails = 0usize;
    for waves in [1usize, 3] {
        for seed in 0..6u64 {
            let s = fig6_scenario(&quick_fig6());
            let n = s.graph().n_tasks();
            let failures = multi_wave_failures(&s, waves, seed);
            let config = EngineConfig {
                mode: FtMode::ppa(TaskSet::full(n), SimDuration::from_secs(5)),
                ..EngineConfig::default()
            };
            let mut sim = Simulation::new(&s.query, s.placement.clone(), config);
            let buffer = Arc::new(Mutex::new(Vec::new()));
            sim.set_trace_sink(Box::new(SharedSink(Arc::clone(&buffer))));
            for f in failures.clone() {
                sim.inject(f).expect("kill sets name live cluster nodes");
            }
            let report = sim.run_until(SimTime::ZERO + SimDuration::from_secs(100));
            let events = buffer.lock().expect("sink buffer").clone();
            let label = format!("waves {waves} seed {seed} failures {failures:?}");

            for history in &report.outages {
                let t = history.task.0;
                // One OutageOpened per record, refail-flagged after the
                // first (emission order matches record order).
                let opened: Vec<bool> = events
                    .iter()
                    .filter_map(|(_, e)| match e {
                        EngineEvent::OutageOpened { task, refail } if *task == t => Some(*refail),
                        _ => None,
                    })
                    .collect();
                let expect: Vec<bool> = (0..history.records.len()).map(|i| i > 0).collect();
                assert_eq!(opened, expect, "{label}: opened events for task {t}");

                for rec in &history.records {
                    if rec.detected() {
                        assert!(
                            events.iter().any(|(at, e)| {
                                *at == rec.detected_at
                                    && matches!(
                                        e,
                                        EngineEvent::OutageDetected { task } if *task == t
                                    )
                            }),
                            "{label}: no OutageDetected at {} for task {t}",
                            rec.detected_at
                        );
                    }
                    if let Some(recovered) = rec.recovered_at {
                        let closes: Vec<&EngineEvent> = events
                            .iter()
                            .filter(|(at, e)| {
                                *at == recovered && e.closes_outage() && e.task() == Some(t)
                            })
                            .map(|(_, e)| e)
                            .collect();
                        assert_eq!(
                            closes.len(),
                            1,
                            "{label}: exactly one closing event at {recovered} for task {t}: \
                             {closes:?}"
                        );
                        let via_replica = matches!(closes[0], EngineEvent::ReplicaActivated { .. });
                        assert_eq!(
                            via_replica, rec.via_replica,
                            "{label}: closing variant for task {t}"
                        );
                    }
                }
                // Globally: one closing event per recovered record, none
                // for still-open outages.
                let recovered = history
                    .records
                    .iter()
                    .filter(|r| r.recovered_at.is_some())
                    .count();
                let closes = events
                    .iter()
                    .filter(|(_, e)| e.closes_outage() && e.task() == Some(t))
                    .count();
                assert_eq!(closes, recovered, "{label}: total closes for task {t}");
                total_refails += history.refail_count();
            }
        }
    }
    assert!(
        total_refails > 0,
        "the grid must actually exercise re-failures"
    );
}

#[test]
fn health_decay_is_monotone_between_failures() {
    // Deterministic grid standing in for a proptest strategy: half-lives
    // × failure-count × seeds. After the last failure, sampling the
    // decayed score at strictly increasing instants must never increase
    // it, and the score stays positive (exponential decay has no zero).
    for half_life_s in [1u64, 7, 30, 300] {
        for n_failures in [1usize, 3, 10] {
            for seed in 0..4u64 {
                let mut rng = StdRng::seed_from_u64(
                    0x5EED ^ (half_life_s << 24) ^ ((n_failures as u64) << 8) ^ seed,
                );
                let mut h = DomainHealth::new(4, SimDuration::from_secs(half_life_s));
                let d = DomainId(rng.gen_range(0..4));
                let mut last = 0u64;
                for _ in 0..n_failures {
                    last += rng.gen_range(1..120_000_000u64);
                    h.record(d, SimTime::from_micros(last));
                }
                let mut at = last;
                let mut prev = f64::INFINITY;
                for _ in 0..50 {
                    at += rng.gen_range(1..30_000_000u64);
                    let score = h.score_at(d, SimTime::from_micros(at));
                    assert!(
                        score <= prev + 1e-12,
                        "half-life {half_life_s}s failures {n_failures} seed {seed}: \
                         score rose from {prev} to {score} at {at}µs"
                    );
                    assert!(score > 0.0, "decay never reaches zero");
                    prev = score;
                }
                // Other domains stay untouched.
                for other in 0..4 {
                    if DomainId(other) != d {
                        assert_eq!(h.score_at(DomainId(other), SimTime::from_micros(at)), 0.0);
                    }
                }
            }
        }
    }
}
