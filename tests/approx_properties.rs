//! Property tests for the approximate recovery family, over random
//! seeded update streams and full engine runs:
//!
//! * **(a) bounded drift** — the divergence a task carries between
//!   shipped backups never exceeds the error bound: every crossing arms
//!   a ship at the crossing instant (model level, random streams).
//! * **(b) bounded loss** — `divergence_at_recovery` recorded by each
//!   lossy recovery is at most the error bound plus the in-flight slack
//!   of the batches processed while a staged ship travels (engine level,
//!   across bounds and kill seeds), and every recorded fidelity floor is
//!   a valid permille.
//! * **(c) monotone cadence** — a smaller error bound never ships fewer
//!   backups than a larger one over the identical run.

use ppa::engine::{
    DivergenceModel, EngineConfig, EngineEvent, FailureTrace, FaultFeed, FtMode, Simulation,
    StaticPolicy, VecSink,
};
use ppa::sim::{SimDuration, SimTime};
use ppa::workloads::{fig6_scenario, Fig6Config};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// (a) Bounded drift at the model level: over random seeded update
/// streams, shipping whenever `absorb` arms keeps the carried drift
/// strictly under the bound at every other instant, and a ship is never
/// armed below the bound.
#[test]
fn carried_divergence_never_exceeds_the_bound() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xD1F7 ^ seed);
        let bound = rng.gen_range(1..2_000u64);
        let mut model = DivergenceModel::new();
        for step in 0..500 {
            let tuples = rng.gen_range(0..300u64);
            if model.absorb(tuples, bound) {
                assert!(
                    model.pending() >= bound,
                    "seed {seed} step {step}: armed below the bound"
                );
                model.shipped();
                assert_eq!(model.pending(), 0, "a shipped backup covers all drift");
            }
            assert!(
                model.pending() < bound,
                "seed {seed} step {step}: carried drift {} >= bound {bound}",
                model.pending()
            );
        }
    }
}

/// (a') Monotone at the model level: on the identical random stream, a
/// smaller bound never ships fewer backups than a larger one.
#[test]
fn a_tighter_bound_never_ships_fewer_backups_on_the_same_stream() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0x5EED ^ seed);
        let stream: Vec<u64> = (0..400).map(|_| rng.gen_range(0..200u64)).collect();
        let ships = |bound: u64| -> usize {
            let mut model = DivergenceModel::new();
            let mut count = 0;
            for &tuples in &stream {
                if model.absorb(tuples, bound) {
                    count += 1;
                    model.shipped();
                }
            }
            count
        };
        let counts: Vec<usize> = [50u64, 200, 800, 3_200].iter().map(|&b| ships(b)).collect();
        for pair in counts.windows(2) {
            assert!(
                pair[0] >= pair[1],
                "seed {seed}: tighter bound shipped fewer backups ({counts:?})"
            );
        }
    }
}

/// One engine run of the quick Fig. 6 scenario under the approximate
/// mode: returns the recorded `(divergence, fidelity_floor)` of every
/// lossy recovery and the number of backups shipped.
fn lossy_run(error_bound: u64, kill_seed: u64) -> (Vec<(u64, u16)>, u64) {
    let cfg = Fig6Config {
        rate: 300,
        window: SimDuration::from_secs(10),
        seed: 42 ^ kill_seed,
        ..Fig6Config::default()
    };
    let scenario = fig6_scenario(&cfg);
    // A seeded subset of the worker kill set: each seed kills a different
    // combination, so recoveries happen from varied snapshot ages.
    let kills: Vec<usize> = scenario
        .worker_kill_set
        .iter()
        .copied()
        .filter(|node| (node + kill_seed as usize) % 3 != 0)
        .collect();
    let n = scenario.graph().n_tasks();
    let config = EngineConfig {
        seed: cfg.seed,
        mode: FtMode::approximate(n, SimDuration::from_secs(5), error_bound),
        ..EngineConfig::default()
    };
    let mut sim = Simulation::new(&scenario.query, scenario.placement.clone(), config);
    sim.set_trace_sink(Box::new(VecSink::new()));
    let horizon = SimTime::ZERO + SimDuration::from_secs(130);
    let trace = FailureTrace::once(SimTime::from_secs(40), kills);
    let driven = sim
        .drive(&FaultFeed::from_trace(trace), &mut StaticPolicy, horizon)
        .expect("kill set names live nodes");
    let events = sim
        .take_trace_sink()
        .map(|mut s| s.take_events())
        .unwrap_or_default();
    let lossy = events
        .iter()
        .filter_map(|(_, e)| match e {
            EngineEvent::ApproxRecovery {
                divergence,
                fidelity_floor,
                ..
            } => Some((*divergence, *fidelity_floor)),
            _ => None,
        })
        .collect();
    // Floors on the report agree with the events (count and range).
    let recorded: Vec<u16> = driven
        .report
        .outages
        .iter()
        .flat_map(|o| o.records.iter())
        .filter_map(|r| r.fidelity_floor)
        .collect();
    let witnessed: Vec<u16> = events
        .iter()
        .filter_map(|(_, e)| match e {
            EngineEvent::ApproxRecovery { fidelity_floor, .. } => Some(*fidelity_floor),
            _ => None,
        })
        .collect();
    assert_eq!(
        recorded.len(),
        witnessed.len(),
        "every lossy recovery is floored once"
    );
    (
        lossy,
        driven.metrics.counter("engine.approx.backups_shipped"),
    )
}

/// (b) Bounded loss at the engine level: the divergence each lossy
/// recovery forfeits is at most the error bound plus the in-flight
/// slack — the tuples absorbed after a ship armed but before it fired
/// (bounded by one topology-wide batch per in-flight interval; two
/// batches is a conservative ceiling).
#[test]
fn divergence_at_recovery_is_bounded_per_closed_outage() {
    let per_batch_total: u64 = 300 * 16; // every source's emission per batch
    let slack = 2 * per_batch_total;
    for &bound in &[500u64, 2_000, 8_000] {
        for kill_seed in 0..3u64 {
            let (lossy, _) = lossy_run(bound, kill_seed);
            assert!(
                !lossy.is_empty(),
                "bound {bound} seed {kill_seed}: no lossy recovery recorded"
            );
            for (divergence, floor) in lossy {
                assert!(
                    divergence <= bound + slack,
                    "bound {bound} seed {kill_seed}: recovery forfeited {divergence} \
                     > bound + slack {}",
                    bound + slack
                );
                assert!(floor <= 1000, "floor {floor}‰ out of range");
            }
        }
    }
}

/// (c) Monotone cadence at the engine level: over the identical scenario
/// and kill set, tightening the bound never ships fewer backups.
#[test]
fn a_tighter_bound_never_ships_fewer_backups_end_to_end() {
    for kill_seed in 0..2u64 {
        let shipped: Vec<u64> = [500u64, 2_000, 8_000]
            .iter()
            .map(|&bound| lossy_run(bound, kill_seed).1)
            .collect();
        assert!(
            shipped[0] >= shipped[1] && shipped[1] >= shipped[2],
            "seed {kill_seed}: ship counts not monotone in the bound: {shipped:?}"
        );
        assert!(
            shipped[0] > 0,
            "seed {kill_seed}: the tight bound never shipped"
        );
    }
}
