//! The paper's Q2 scenario: a community-based navigation service joining a
//! user-location stream with user-reported incidents to flag traffic jams —
//! the intro's motivating time-critical application. The example contrasts
//! an OF-optimized replication plan with an IC-optimized one to show why
//! correlation-awareness matters for join queries.
//!
//! ```text
//! cargo run --release --example incident_detection
//! ```

use ppa::core::planner::Objective;
use ppa::core::{PlanContext, Planner, StructureAwarePlanner, TaskSet};
use ppa::engine::{EngineConfig, FailureSpec, FtMode, Simulation};
use ppa::sim::{SimDuration, SimTime};
use ppa::workloads::incident_accuracy;
use ppa::workloads::navigation::{jam_set, q2_scenario, NavigationConfig};

fn run_with_plan(scenario: &ppa::workloads::Scenario, plan: &TaskSet) -> ppa::engine::RunReport {
    let config = EngineConfig {
        mode: FtMode::ppa(plan.clone(), SimDuration::from_secs(10)),
        passive_recovery: false, // hold the outage: steady tentative service
        ..EngineConfig::default()
    };
    Simulation::run(
        &scenario.query,
        scenario.placement.clone(),
        config,
        vec![FailureSpec {
            at: SimTime::from_secs(20),
            nodes: scenario.placement.all_primary_nodes(),
        }],
        SimDuration::from_secs(70),
    )
}

fn main() {
    let cfg = NavigationConfig {
        loc_src_tasks: 4,
        o1_tasks: 2,
        o3_tasks: 2,
        location_rate: 2_000,
        n_segments: 300,
        ..NavigationConfig::default()
    };
    let scenario = q2_scenario(&cfg);
    let n = scenario.graph().n_tasks();
    let budget = n / 2;

    // Two plans with the same budget, different objectives.
    let cx_of = PlanContext::new(scenario.query.topology()).unwrap();
    let cx_ic = PlanContext::new(scenario.query.topology())
        .unwrap()
        .with_objective(Objective::InternalCompleteness);
    let plan_of = StructureAwarePlanner::default()
        .plan(&cx_of, budget)
        .unwrap();
    let plan_ic = StructureAwarePlanner::default()
        .plan(&cx_ic, budget)
        .unwrap();
    println!("budget {budget}/{n} tasks");
    println!(
        "OF-optimized plan: OF {:.2} (IC would score it {:.2})",
        cx_of.of_plan(&plan_of.tasks),
        cx_of.ic_plan(&plan_of.tasks)
    );
    println!(
        "IC-optimized plan: IC {:.2} (its true OF is {:.2})",
        cx_ic.ic_plan(&plan_ic.tasks),
        cx_ic.of_plan(&plan_ic.tasks)
    );

    // Golden run for ground truth.
    let golden = Simulation::run(
        &scenario.query,
        scenario.placement.clone(),
        EngineConfig::default(),
        vec![],
        SimDuration::from_secs(70),
    );
    let golden_jams: std::collections::BTreeSet<(u64, i64)> = golden
        .sink
        .iter()
        .filter(|s| (35..65).contains(&s.batch))
        .flat_map(|s| jam_set(&s.tuples))
        .collect();
    println!(
        "\ngolden run detected {} jams in the observation window",
        golden_jams.len()
    );

    for (label, plan) in [("OF-plan", &plan_of.tasks), ("IC-plan", &plan_ic.tasks)] {
        let report = run_with_plan(&scenario, plan);
        let acc = incident_accuracy(&golden, &report, 35, 65);
        let detected: std::collections::BTreeSet<(u64, i64)> = report
            .sink
            .iter()
            .filter(|s| (35..65).contains(&s.batch))
            .flat_map(|s| jam_set(&s.tuples))
            .collect();
        println!(
            "{label}: detected {}/{} jams during the outage (accuracy {acc:.2})",
            detected.intersection(&golden_jams).count(),
            golden_jams.len()
        );
    }
}
