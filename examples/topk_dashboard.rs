//! The paper's Q1 scenario as an application: a live "hottest pages"
//! dashboard over a web-access log that keeps serving (tentative) top-k
//! results through a correlated datacenter failure.
//!
//! ```text
//! cargo run --release --example topk_dashboard
//! ```

use ppa::core::{PlanContext, Planner, StructureAwarePlanner};
use ppa::engine::{EngineConfig, FailureSpec, FtMode, Simulation};
use ppa::sim::{SimDuration, SimTime};
use ppa::workloads::topk_accuracy;
use ppa::workloads::worldcup::{q1_scenario, topk_set, Q1Config};

fn main() {
    let cfg = Q1Config {
        src_tasks: 8,
        o1_tasks: 4,
        o2_tasks: 2,
        rate: 300,
        n_objects: 240,
        k: 20,
        window_batches: 10,
        ..Q1Config::default()
    };
    let scenario = q1_scenario(&cfg);
    let n = scenario.graph().n_tasks();

    // Plan: actively replicate half the tasks, chosen structure-aware.
    let cx = PlanContext::new(scenario.query.topology()).unwrap();
    let plan = StructureAwarePlanner::default().plan(&cx, n / 2).unwrap();
    println!(
        "replicating {}/{} tasks, predicted output fidelity {:.2}",
        plan.resources(),
        n,
        plan.value
    );

    // Golden run (no failure) for comparison.
    let golden = Simulation::run(
        &scenario.query,
        scenario.placement.clone(),
        EngineConfig::default(),
        vec![],
        SimDuration::from_secs(60),
    );

    // Failure run: every primary node dies at t = 25 s; passive recovery is
    // held back so the dashboard keeps running on replicas alone.
    let config = EngineConfig {
        mode: FtMode::ppa(plan.tasks.clone(), SimDuration::from_secs(10)),
        passive_recovery: false,
        ..EngineConfig::default()
    };
    let report = Simulation::run(
        &scenario.query,
        scenario.placement.clone(),
        config,
        vec![FailureSpec {
            at: SimTime::from_secs(25),
            nodes: scenario.placement.all_primary_nodes(),
        }],
        SimDuration::from_secs(60),
    );

    // Dashboard view: golden vs tentative top-5 in a late batch.
    let show = |label: &str, rep: &ppa::engine::RunReport, batch: u64| {
        if let Some(s) = rep.sink_batches(batch).next() {
            let top: Vec<String> = topk_set(&s.tuples)
                .into_iter()
                .take(5)
                .map(|k| k.to_string())
                .collect();
            println!(
                "{label:9} batch {batch}: top-5 = [{}]{}",
                top.join(", "),
                if s.tentative { "  [tentative]" } else { "" }
            );
        } else {
            println!("{label:9} batch {batch}: (no output)");
        }
    };
    for batch in [20u64, 45, 55] {
        show("golden", &golden, batch);
        show("failure", &report, batch);
    }

    let acc = topk_accuracy(&golden, &report, 45, 58);
    println!(
        "\nsteady tentative top-{} accuracy: {acc:.2} (predicted OF {:.2})",
        cfg.k, plan.value
    );
}
