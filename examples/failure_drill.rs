//! A failure drill on the Fig. 6 topology: inject the paper's correlated
//! failure (all 15 synthetic-task nodes die) under each fault-tolerance
//! strategy and compare recovery latencies and tentative-output timing.
//!
//! ```text
//! cargo run --release --example failure_drill
//! ```

use ppa::core::{PlanContext, Planner, StructureAwarePlanner};
use ppa::engine::{EngineConfig, FailureSpec, FtMode, Simulation};
use ppa::sim::{SimDuration, SimTime};
use ppa::workloads::{fig6_scenario, Fig6Config};

fn main() {
    let cfg = Fig6Config {
        rate: 1000,
        window: SimDuration::from_secs(30),
        ..Fig6Config::default()
    };
    let scenario = fig6_scenario(&cfg);
    let n = scenario.graph().n_tasks();
    let cx = PlanContext::new(scenario.query.topology()).unwrap();
    let half_plan = StructureAwarePlanner::default()
        .plan(&cx, n / 2)
        .unwrap()
        .tasks;

    let strategies: Vec<(&str, FtMode)> = vec![
        ("Active-5s", FtMode::active(n)),
        (
            "PPA-0.5",
            FtMode::ppa(half_plan, SimDuration::from_secs(15)),
        ),
        (
            "Checkpoint-15s",
            FtMode::checkpoint(n, SimDuration::from_secs(15)),
        ),
        (
            "Storm",
            FtMode::SourceReplay {
                buffer: SimDuration::from_secs(35),
            },
        ),
    ];

    println!(
        "{:>15} {:>12} {:>12} {:>16}",
        "strategy", "mean (s)", "max (s)", "1st tentative (s)"
    );
    for (label, mode) in strategies {
        let config = EngineConfig {
            mode,
            ..EngineConfig::default()
        };
        let report = Simulation::run(
            &scenario.query,
            scenario.placement.clone(),
            config,
            vec![FailureSpec {
                at: SimTime::from_secs(70),
                nodes: scenario.worker_kill_set.clone(),
            }],
            SimDuration::from_secs(260),
        );
        let detected = report
            .recoveries
            .iter()
            .map(|r| r.detected_at)
            .min()
            .unwrap();
        let mean = report
            .mean_recovery_latency()
            .map_or(f64::NAN, |d| d.as_secs_f64());
        let max = report
            .recoveries
            .iter()
            .filter_map(|r| r.latency())
            .map(|d| d.as_secs_f64())
            .fold(f64::NAN, f64::max);
        let tentative = report
            .first_tentative_after(detected)
            .map_or("—".to_string(), |t| {
                format!("{:.2}", t.since(detected).as_secs_f64())
            });
        println!("{label:>15} {mean:>12.2} {max:>12.2} {tentative:>16}");
    }
    println!(
        "\n(correlated failure at t=70s over {} worker nodes; detection ≤ 5s later)",
        scenario.worker_kill_set.len()
    );
}
