//! Explore replication planning on the Fig. 6 topology: enumerate MC-trees,
//! sweep the replication budget and compare the three planners' predicted
//! output fidelity, printing which tasks each algorithm picks.
//!
//! ```text
//! cargo run --release --example plan_explorer
//! ```

use ppa::core::mctree::min_tree_size;
use ppa::core::{
    enumerate_mc_trees, DpPlanner, GreedyPlanner, McTreeLimits, PlanContext, Planner,
    StructureAwarePlanner,
};
use ppa::sim::SimDuration;
use ppa::workloads::synthetic::{fig6_query, Fig6Config};

fn main() {
    let cfg = Fig6Config {
        rate: 1000,
        window: SimDuration::from_secs(30),
        ..Fig6Config::default()
    };
    let query = fig6_query(&cfg);
    let cx = PlanContext::new(query.topology()).unwrap();
    let n = cx.n_tasks();

    let trees = enumerate_mc_trees(cx.graph(), McTreeLimits::default()).unwrap();
    println!(
        "Fig. 6 topology: {} operators, {n} tasks, {} MC-trees (smallest: {} tasks)\n",
        query.topology().n_operators(),
        trees.len(),
        min_tree_size(cx.graph()),
    );

    let planners: Vec<(&str, Box<dyn Planner>)> = vec![
        ("DP", Box::new(DpPlanner::default())),
        ("SA", Box::new(StructureAwarePlanner::default())),
        ("Greedy", Box::new(GreedyPlanner)),
    ];

    println!("{:>8} {:>8} {:>8} {:>8}", "budget", "DP", "SA", "Greedy");
    for budget in [5usize, 8, 12, 16, 20, 24, 31] {
        let mut row = format!("{budget:>8}");
        for (_, planner) in &planners {
            let of = planner
                .plan(&cx, budget)
                .map(|p| p.value)
                .unwrap_or(f64::NAN);
            row.push_str(&format!(" {of:>8.3}"));
        }
        println!("{row}");
    }

    println!("\nSA plan at budget 16 (task ids; sources are t0..t15):");
    let plan = StructureAwarePlanner::default().plan(&cx, 16).unwrap();
    let ids: Vec<String> = plan.tasks.iter().map(|t| format!("t{}", t.0)).collect();
    println!("  {{{}}}", ids.join(", "));
    println!("  predicted OF: {:.3}", plan.value);
    println!(
        "  worst-case IC of the same plan: {:.3} (joins absent, so close to OF)",
        cx.ic_plan(&plan.tasks)
    );
}
