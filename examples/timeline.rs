//! The `refail_sweep` scenario as two side-by-side run timelines: the
//! same two-wave cascade (wave 1 kills a worker rack, wave 2 kills the
//! standby rack hosting the activated replicas) replayed under the
//! static policy and under `DomainHealthPolicy`, rendered from each
//! run's recorded trace-event stream.
//!
//! ```text
//! cargo run --release --example timeline
//! ```
//!
//! Row legend: `.` healthy, `x` outage before detection, `X` outage
//! after detection, `|` the recovery instant; `v` marks an injected
//! failure wave. Only tasks that fail at least once get a row.

use ppa::core::{Planner, StructureAwarePlanner, TaskSet};
use ppa::engine::{
    Cluster, DomainHealthPolicy, DriveReport, EngineEvent, FailureTrace, FaultFeed, FtMode,
    RoundRobin, Simulation, TraceSink,
};
use ppa::faults::{CascadeProcess, FailureProcess};
use ppa::obs::{render_timeline, TimelineConfig};
use ppa::sim::{SimDuration, SimTime};
use ppa::workloads::{fig6_scenario, Fig6Config, Scenario};
use std::sync::{Arc, Mutex};

/// The `refail_sweep` cluster: 12 workers + 12 standbys, racks of 4.
const N_WORKERS: usize = 12;
const N_STANDBY: usize = 12;
const RACK_SIZE: usize = 4;
/// Wave schedule (quick-mode `refail_sweep` numbers): wave 1 after the
/// window fills, wave 2 past detection and takeover, so it kills
/// *activated* replicas.
const WAVE1_SECS: u64 = 40;
const WAVE_GAP_SECS: u64 = 30;
const DURATION_SECS: u64 = 130;
/// Cascade spread probability shared by both waves.
const SPREAD: f64 = 0.9;

/// A [`TraceSink`] buffering into shared storage, so the events stay
/// readable after the simulation consumed the boxed sink.
struct SharedSink(Arc<Mutex<Vec<(SimTime, EngineEvent)>>>);

impl TraceSink for SharedSink {
    fn record(&mut self, at: SimTime, event: &EngineEvent) {
        self.0
            .lock()
            .expect("trace buffer poisoned")
            .push((at, event.clone()));
    }
}

/// The two-wave trace: wave 1 cascades from the first worker rack, wave
/// 2 from the first standby rack (the rack `RoundRobin` aligns with the
/// first worker rack's standbys). Policy-independent, so both runs
/// replay identical node deaths.
fn two_wave_trace(cluster: &Cluster, seed: u64) -> FailureTrace {
    let tree = cluster.domains.as_ref().expect("racked cluster has a tree");
    let wave = |origin: usize, start_secs: u64, salt: u64| {
        let process = CascadeProcess {
            level: 1,
            spread: SPREAD,
            decay: 0.5,
            hop_delay: SimDuration::from_secs(2),
            fraction: 1.0,
            origin: Some(origin),
        };
        process.generate_seeded(
            tree,
            SimTime::from_secs(start_secs),
            SimDuration::from_secs(20),
            seed ^ salt,
        )
    };
    let mut trace = wave(0, WAVE1_SECS, 0x2ef1);
    for e in wave(N_WORKERS / RACK_SIZE, WAVE1_SECS + WAVE_GAP_SECS, 0x2ef2).events() {
        trace.push(e.at, e.nodes.clone());
    }
    trace
}

/// Drives one policy's run with a trace sink attached and returns the
/// recorded event stream next to the control-plane report.
fn drive(scenario: &Scenario, trace: &FailureTrace) -> (Vec<(SimTime, EngineEvent)>, DriveReport) {
    let n = scenario.graph().n_tasks();
    let cx = scenario
        .placement
        .plan_context(scenario.query.topology())
        .expect("fig6 plans against its racked cluster");
    let plan: TaskSet = StructureAwarePlanner::default()
        .plan(&cx, n / 2)
        .expect("SA plan")
        .tasks;
    let mut config = ppa::engine::EngineConfig {
        mode: FtMode::ppa(plan, SimDuration::from_secs(5)),
        ..ppa::engine::EngineConfig::default()
    };
    // Steady-state tentative sampling: a re-failed task comes back only
    // through the control plane.
    config.passive_recovery = false;

    let mut sim = Simulation::new(&scenario.query, scenario.placement.clone(), config);
    let buffer = Arc::new(Mutex::new(Vec::new()));
    sim.set_trace_sink(Box::new(SharedSink(Arc::clone(&buffer))));
    let mut policy = scenario.make_policy();
    let report = sim
        .drive(
            &FaultFeed::from_trace(trace.clone()),
            policy.as_mut(),
            SimTime::ZERO + SimDuration::from_secs(DURATION_SECS),
        )
        .expect("trace names nodes of the racked cluster");
    let events = std::mem::take(&mut *buffer.lock().expect("trace buffer poisoned"));
    (events, report)
}

/// Joins two multi-line blocks into two columns separated by `gap`.
fn side_by_side(left: &str, right: &str, gap: &str) -> String {
    let l: Vec<&str> = left.lines().collect();
    let r: Vec<&str> = right.lines().collect();
    let width = l.iter().map(|s| s.chars().count()).max().unwrap_or(0);
    let mut out = String::new();
    for i in 0..l.len().max(r.len()) {
        let lv = l.get(i).copied().unwrap_or("");
        let rv = r.get(i).copied().unwrap_or("");
        let line = format!("{lv:<width$}{gap}{rv}");
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

fn main() {
    let cfg = Fig6Config {
        rate: 300,
        window: SimDuration::from_secs(10),
        ..Fig6Config::default()
    };
    let cluster = Cluster::racked(N_WORKERS, N_STANDBY, RACK_SIZE).expect("positive rack size");
    let trace = two_wave_trace(&cluster, cfg.seed);
    let scenario = || -> Scenario {
        fig6_scenario(&cfg)
            .placed_with(&RoundRobin, &cluster)
            .expect("fig6 fits the sweep cluster")
    };

    let base = scenario();
    let budget = base.graph().n_tasks() / 2;
    let adaptive = scenario().with_policy(move || Box::new(DomainHealthPolicy::new(Some(budget))));

    let (static_events, static_run) = drive(&base, &trace);
    let (adaptive_events, adaptive_run) = drive(&adaptive, &trace);

    let chart = |title: &str, events: &[(SimTime, EngineEvent)]| -> String {
        render_timeline(
            events,
            &TimelineConfig {
                title: title.to_string(),
                width: 48,
                until: Some(SimTime::from_secs(DURATION_SECS)),
            },
        )
    };
    println!(
        "Two cascade waves (spread {SPREAD}), {} nodes killed: wave 1 at {WAVE1_SECS}s hits \
         the first worker rack, wave 2 at {}s hits the standby rack hosting the activated \
         replicas. Passive recovery is held down, so only the control plane can close a \
         second outage.\n",
        trace.killed_nodes().len(),
        WAVE1_SECS + WAVE_GAP_SECS,
    );
    print!(
        "{}",
        side_by_side(
            &chart("static policy", &static_events),
            &chart("domain-health policy", &adaptive_events),
            "   ",
        )
    );

    let refail_tally = |run: &DriveReport| -> (usize, usize) {
        let refailed: Vec<_> = run
            .report
            .outages
            .iter()
            .filter(|o| o.records.len() >= 2)
            .collect();
        let closed = refailed
            .iter()
            .filter(|o| o.records.last().is_some_and(|r| r.recovered_at.is_some()))
            .count();
        (refailed.len(), closed)
    };
    println!();
    for (name, run) in [("static", &static_run), ("domain-health", &adaptive_run)] {
        let (refails, closed) = refail_tally(run);
        println!(
            "{name:>15}: {refails} second outages opened, {closed} closed within the run \
             ({} control action(s))",
            run.actions.len(),
        );
    }
}
