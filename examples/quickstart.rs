//! Quickstart: build a tiny streaming query, run it on the simulated
//! cluster with PPA fault tolerance, kill a node, and watch it recover.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ppa::core::model::{OperatorSpec, Partitioning};
use ppa::engine::udf::{CountingSource, MapUdf};
use ppa::engine::{EngineConfig, FailureSpec, FtMode, Placement, QueryBuilder, Simulation, Tuple};
use ppa::sim::{SimDuration, SimTime};

fn main() {
    // 1. An executable query: 4 sources -> 2 filters -> 1 collector.
    let mut q = QueryBuilder::new();
    let sources = q.add_source(OperatorSpec::source("events", 4, 1_000.0), |task| {
        Box::new(CountingSource {
            per_batch: 1_000,
            seed: 7 + task as u64,
            key_space: 4096,
        })
    });
    let filters = q.add_operator(OperatorSpec::map("filter", 2, 0.5), |_| {
        Box::new(MapUdf::new(|t: &Tuple| {
            t.key.is_multiple_of(2).then(|| t.clone())
        }))
    });
    let collect = q.add_operator(OperatorSpec::map("collect", 1, 1.0), |_| {
        Box::new(MapUdf::new(|t: &Tuple| Some(t.clone())))
    });
    q.connect(sources, filters, Partitioning::Merge).unwrap();
    q.connect(filters, collect, Partitioning::Merge).unwrap();
    let query = q.build().unwrap();

    // 2. A cluster: one node per task plus one standby per task.
    let graph = ppa::core::model::TaskGraph::new(query.topology().clone());
    let n = graph.n_tasks();
    let placement = Placement::explicit((0..n).collect(), (n..2 * n).collect(), n, n)
        .expect("one node per task is a valid placement");

    // 3. PPA fault tolerance: checkpoint everything every 5 s.
    let config = EngineConfig {
        mode: FtMode::checkpoint(n, SimDuration::from_secs(5)),
        ..EngineConfig::default()
    };

    // 4. Kill the node hosting the first filter task at t = 12 s.
    let filter_task = 4; // tasks 0..4 are the sources
    let failure = FailureSpec {
        at: SimTime::from_secs(12),
        nodes: vec![filter_task],
    };

    let report = Simulation::run(
        &query,
        placement,
        config,
        vec![failure],
        SimDuration::from_secs(40),
    );

    // 5. What happened?
    println!("simulated {} events", report.events);
    for r in &report.recoveries {
        println!(
            "task {} failed at {}, detected at {}, recovered {} after detection",
            r.task,
            r.failed_at,
            r.detected_at,
            r.latency().map_or("never".into(), |l| l.to_string()),
        );
    }
    let tentative = report.sink.iter().filter(|s| s.tentative).count();
    println!(
        "sink emitted {} batches ({} tentative while the filter was down)",
        report.sink.len(),
        tentative
    );
    let last = report.sink.last().expect("sink produced output");
    println!(
        "final batch {} carried {} tuples (all keys even: {})",
        last.batch,
        last.tuples.len(),
        last.tuples.iter().all(|t| t.key % 2 == 0),
    );
}
