//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the minimal slice of the `rand 0.8` API it actually uses: the [`Rng`]
//! extension trait (`gen`, `gen_bool`, `gen_range`), [`SeedableRng`], and
//! [`rngs::StdRng`]. The generator behind `StdRng` is xoshiro256** seeded via
//! SplitMix64 — statistically solid for workload synthesis and, crucially,
//! fully deterministic for a given seed, which the reproduction harness
//! relies on (`--jobs N` must not change results).
//!
//! This is NOT a drop-in replacement for the real crate: the stream produced
//! for a given seed differs from upstream `StdRng` (which is ChaCha12), and
//! only the methods used by this workspace are provided.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                // Unbiased bounded sampling: reject draws past the largest
                // multiple of `span` representable in u64.
                let zone = u64::MAX - (u64::MAX % span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return self.start.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return <$t as Standard>::sample_standard(rng);
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        start + (end - start) * f64::sample_standard(rng)
    }
}

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::sample_standard(self) < p
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Mirrors `rand::SeedableRng` for the seeding styles this workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (xoshiro256**, seeded via SplitMix64).
    ///
    /// Unlike upstream `StdRng` this is not ChaCha12; callers here only rely
    /// on determinism per seed, not on a particular stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..7usize);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&w));
            let f = rng.gen_range(0.25..=0.75f64);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 5 values hit: {seen:?}");
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
