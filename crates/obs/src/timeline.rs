//! A plain-text run timeline: per-task outage/recovery spans drawn on a
//! shared simulated-time axis, aligned with the injected failure waves.
//!
//! The renderer is a pure function of the event stream and its config,
//! so a rendered timeline is as deterministic as the trace it came from.

use crate::event::EngineEvent;
use ppa_sim::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Rendering knobs for [`render_timeline`].
#[derive(Debug, Clone)]
pub struct TimelineConfig {
    /// Heading printed above the chart (blank to omit the line).
    pub title: String,
    /// Number of columns in the plot area.
    pub width: usize,
    /// Axis horizon; defaults to the last recorded instant.
    pub until: Option<SimTime>,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            title: String::new(),
            width: 64,
            until: None,
        }
    }
}

/// One task's outage as the renderer sees it.
struct Span {
    open: SimTime,
    detected: Option<SimTime>,
    close: Option<SimTime>,
}

/// Renders the event stream as one chart:
///
/// ```text
/// static policy  (0.0s .. 420.0s, 1 col ~ 6.6s)
/// waves     :     v         v
/// task    17: ....xxXXX|....xxxxXXXXXX|..
/// ```
///
/// Row legend: `.` healthy, `x` outage before detection, `X` outage
/// after detection (recovery underway), `|` the recovery instant; `v`
/// marks an injected failure wave. Tasks that never fail are omitted.
pub fn render_timeline(events: &[(SimTime, EngineEvent)], config: &TimelineConfig) -> String {
    let width = config.width.max(8);
    let t_max = config.until.unwrap_or_else(|| {
        events
            .iter()
            .map(|(at, _)| *at)
            .max()
            .unwrap_or(SimTime::ZERO)
    });
    let span_us = t_max.as_micros().max(1);
    let col = |at: SimTime| -> usize {
        ((at.as_micros().min(span_us) as u128 * (width as u128 - 1)) / span_us as u128) as usize
    };

    // Replay the stream into per-task span lists plus the wave instants.
    let mut waves: Vec<SimTime> = Vec::new();
    let mut tasks: BTreeMap<usize, Vec<Span>> = BTreeMap::new();
    for (at, event) in events {
        match event {
            EngineEvent::FailureInjected { .. } => waves.push(*at),
            EngineEvent::OutageOpened { task, .. } => {
                tasks.entry(*task).or_default().push(Span {
                    open: *at,
                    detected: None,
                    close: None,
                });
            }
            EngineEvent::RecoverySetback { task } => {
                // The open record re-armed: its earlier detection is void.
                if let Some(span) = tasks.entry(*task).or_default().last_mut() {
                    if span.close.is_none() {
                        span.detected = None;
                    }
                }
            }
            EngineEvent::OutageDetected { task } => {
                if let Some(span) = tasks.entry(*task).or_default().last_mut() {
                    if span.close.is_none() && span.detected.is_none() {
                        span.detected = Some(*at);
                    }
                }
            }
            e if e.closes_outage() => {
                if let Some(task) = e.task() {
                    if let Some(span) = tasks.entry(task).or_default().last_mut() {
                        if span.close.is_none() {
                            span.close = Some(*at);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    let mut out = String::new();
    if !config.title.is_empty() {
        let _ = writeln!(
            out,
            "{}  (0.0s .. {}, 1 col ~ {:.1}s)",
            config.title,
            t_max,
            t_max.as_secs_f64() / (width.saturating_sub(1).max(1)) as f64
        );
    }

    let mut wave_row = vec![' '; width];
    for w in &waves {
        wave_row[col(*w)] = 'v';
    }
    let _ = writeln!(out, "waves     : {}", wave_row.iter().collect::<String>());

    for (task, spans) in &tasks {
        let mut row = vec!['.'; width];
        for span in spans {
            let from = col(span.open);
            let to = span.close.map_or(width - 1, &col);
            let detect = span.detected.map(&col);
            for (c, cell) in row.iter_mut().enumerate().take(to + 1).skip(from) {
                *cell = match detect {
                    Some(d) if c >= d => 'X',
                    _ => 'x',
                };
            }
            if let Some(close) = span.close {
                row[col(close)] = '|';
            }
        }
        let _ = writeln!(out, "task {task:>5}: {}", row.iter().collect::<String>());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    #[test]
    fn renders_waves_and_outage_phases() -> TestResult {
        let events = vec![
            (
                SimTime::ZERO,
                EngineEvent::FailureInjected { nodes: vec![1] },
            ),
            (
                SimTime::ZERO,
                EngineEvent::OutageOpened {
                    task: 4,
                    refail: false,
                },
            ),
            (
                SimTime::from_secs(30),
                EngineEvent::OutageDetected { task: 4 },
            ),
            (
                SimTime::from_secs(60),
                EngineEvent::ReplicaActivated { task: 4 },
            ),
            (
                SimTime::from_secs(90),
                EngineEvent::OutageOpened {
                    task: 4,
                    refail: true,
                },
            ),
        ];
        let config = TimelineConfig {
            title: "demo".to_string(),
            width: 10,
            until: Some(SimTime::from_secs(90)),
        };
        let text = render_timeline(&events, &config);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("demo  (0.0s .. 90.000s"));
        assert_eq!(lines[1], "waves     : v         ");
        // Undetected 0..30s, detected 30..60s, recovery tick at 60s, the
        // refail at 90s still open at the horizon.
        assert_eq!(lines[2], "task     4: xxxXXX|..x");
        Ok(())
    }

    #[test]
    fn setback_voids_the_earlier_detection() -> TestResult {
        let events = vec![
            (
                SimTime::ZERO,
                EngineEvent::OutageOpened {
                    task: 0,
                    refail: false,
                },
            ),
            (
                SimTime::from_secs(10),
                EngineEvent::OutageDetected { task: 0 },
            ),
            (
                SimTime::from_secs(20),
                EngineEvent::RecoverySetback { task: 0 },
            ),
        ];
        let config = TimelineConfig {
            width: 8,
            until: Some(SimTime::from_secs(70)),
            ..TimelineConfig::default()
        };
        let text = render_timeline(&events, &config);
        // No detection survives, so the whole open span renders 'x'.
        assert!(text.contains("task     0: xxxxxxxx"));
        assert!(!text.contains('X'));
        Ok(())
    }

    #[test]
    fn empty_stream_renders_only_the_wave_axis() -> TestResult {
        let text = render_timeline(&[], &TimelineConfig::default());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("waves     :"));
        Ok(())
    }
}
