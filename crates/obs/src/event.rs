//! Typed engine events and the sink that receives them.
//!
//! Every variant is a lifecycle transition the engine's event loop goes
//! through; the emitting sites live in `ppa-engine` (`runtime/mod.rs`,
//! `control.rs`). Payloads are plain integers and static strings so a
//! serialized event is a stable, deterministic function of the run.

use ppa_sim::SimTime;

/// One observable engine transition, emitted at a simulated instant.
///
/// The timestamp travels separately (see [`TraceSink::record`]) because
/// some transitions are *scheduled* ahead of the event-loop clock — a
/// recovery completes at the node's CPU horizon, not at the instant the
/// decision was made — and the event carries the semantic instant.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// A failure event fired and actually killed these nodes (nodes an
    /// earlier event already killed are not listed).
    FailureInjected { nodes: Vec<usize> },
    /// A task's active incarnation died: a fresh outage record opened.
    /// `refail` marks outages beyond the task's first.
    OutageOpened { task: usize, refail: bool },
    /// A death mid-recovery re-armed the task's open outage record: the
    /// pending recovery path (and its detection) is void.
    RecoverySetback { task: usize },
    /// The master's heartbeat scan detected the task's current outage.
    OutageDetected { task: usize },
    /// A passive recovery started: checkpoint restore or Storm restart on
    /// `node`.
    RestoreStarted { task: usize, node: usize },
    /// A passive recovery restored the task's pre-failure progress.
    RestoreDone { task: usize },
    /// A scheduled restore completion arrived for a task that died again
    /// mid-load — the restore is void, re-detection owns the task.
    RestoreVoided { task: usize },
    /// An active replica took over for the task (outage closed).
    ReplicaActivated { task: usize },
    /// The master began proxying the failed task's punctuations: the
    /// first tentative (degraded) output of this outage is flowing.
    TentativeResumed { task: usize },
    /// Approximate mode: a task's accumulated divergence reached the
    /// error bound and a state backup shipped, covering `divergence`
    /// drift units (input tuples absorbed since the previous backup).
    ApproxBackupShipped { task: usize, divergence: u64 },
    /// Approximate mode: a lossy recovery completed — the task restored
    /// its last shipped snapshot and jumped `skipped_batches` batches to
    /// the frontier without replay, forfeiting `divergence` drift units;
    /// `fidelity_floor` is the outage's guaranteed fidelity in permille.
    /// Always followed by the `restore_done` that closes the outage.
    ApproxRecovery {
        task: usize,
        divergence: u64,
        skipped_batches: u64,
        fidelity_floor: u16,
    },
    /// The control plane adopted a re-plan: replicas established and torn
    /// down, and the adopted plan's size.
    ReplanAdopted {
        activated: usize,
        deactivated: usize,
        plan_size: usize,
    },
    /// The control plane scheduled a migration: moves planned by
    /// `plan_evacuation` and moves actually applied to live incarnations.
    MigrationScheduled {
        planned_primaries: usize,
        planned_standbys: usize,
        moved_primaries: usize,
        moved_standbys: usize,
    },
    /// A control action had no effect, with the engine's reason.
    ControlNoEffect {
        action: &'static str,
        reason: &'static str,
    },
    /// An epoch boundary's cluster health: per-fault-domain time-decayed
    /// failure scores, `(domain id, score)` in domain order (empty when
    /// the placement carries no fault-domain mapping).
    EpochHealthSnapshot { scores: Vec<(usize, f64)> },
}

impl EngineEvent {
    /// Stable snake_case kind tag used by every exporter.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineEvent::FailureInjected { .. } => "failure_injected",
            EngineEvent::OutageOpened { .. } => "outage_opened",
            EngineEvent::RecoverySetback { .. } => "recovery_setback",
            EngineEvent::OutageDetected { .. } => "outage_detected",
            EngineEvent::RestoreStarted { .. } => "restore_started",
            EngineEvent::RestoreDone { .. } => "restore_done",
            EngineEvent::RestoreVoided { .. } => "restore_voided",
            EngineEvent::ReplicaActivated { .. } => "replica_activated",
            EngineEvent::TentativeResumed { .. } => "tentative_resumed",
            EngineEvent::ApproxBackupShipped { .. } => "approx_backup_shipped",
            EngineEvent::ApproxRecovery { .. } => "approx_recovery",
            EngineEvent::ReplanAdopted { .. } => "replan_adopted",
            EngineEvent::MigrationScheduled { .. } => "migration_scheduled",
            EngineEvent::ControlNoEffect { .. } => "control_no_effect",
            EngineEvent::EpochHealthSnapshot { .. } => "epoch_health_snapshot",
        }
    }

    /// The logical task the event concerns, when it concerns exactly one.
    pub fn task(&self) -> Option<usize> {
        match self {
            EngineEvent::OutageOpened { task, .. }
            | EngineEvent::RecoverySetback { task }
            | EngineEvent::OutageDetected { task }
            | EngineEvent::RestoreStarted { task, .. }
            | EngineEvent::RestoreDone { task }
            | EngineEvent::RestoreVoided { task }
            | EngineEvent::ReplicaActivated { task }
            | EngineEvent::TentativeResumed { task }
            | EngineEvent::ApproxBackupShipped { task, .. }
            | EngineEvent::ApproxRecovery { task, .. } => Some(*task),
            _ => None,
        }
    }

    /// Whether this event closes the task's current outage (the two ways
    /// a task's progress is restored).
    pub fn closes_outage(&self) -> bool {
        matches!(
            self,
            EngineEvent::RestoreDone { .. } | EngineEvent::ReplicaActivated { .. }
        )
    }
}

/// A receiver for the engine's event stream.
///
/// Implementations must be deterministic functions of the calls they
/// receive — the engine's byte-identical `--jobs N` guarantee extends
/// through the sink. `Send` so a recorded run can cross the harness's
/// worker-pool boundary.
pub trait TraceSink: Send {
    /// One event at a simulated instant. `at` can run ahead of previously
    /// recorded instants (completions are scheduled at CPU horizons);
    /// emission order is deterministic, time order is not guaranteed.
    fn record(&mut self, at: SimTime, event: &EngineEvent);

    /// Drains the buffered events, when this sink buffers any — how a
    /// checker gets a run's stream back through a `Box<dyn TraceSink>`
    /// without downcasting. Streaming sinks keep the default (empty).
    fn take_events(&mut self) -> Vec<(SimTime, EngineEvent)> {
        Vec::new()
    }
}

/// The buffering sink: keeps every `(instant, event)` pair in emission
/// order. The exporters consume its `events`.
#[derive(Debug, Default)]
pub struct VecSink {
    pub events: Vec<(SimTime, EngineEvent)>,
}

impl VecSink {
    pub fn new() -> Self {
        VecSink::default()
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, at: SimTime, event: &EngineEvent) {
        self.events.push((at, event.clone()));
    }

    fn take_events(&mut self) -> Vec<(SimTime, EngineEvent)> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_snake_case() {
        let e = EngineEvent::OutageOpened {
            task: 3,
            refail: true,
        };
        assert_eq!(e.kind(), "outage_opened");
        assert_eq!(e.task(), Some(3));
        assert!(!e.closes_outage());
        assert!(EngineEvent::RestoreDone { task: 1 }.closes_outage());
        assert!(EngineEvent::ReplicaActivated { task: 1 }.closes_outage());
        assert_eq!(
            EngineEvent::FailureInjected { nodes: vec![1, 2] }.task(),
            None
        );
    }

    #[test]
    fn vec_sink_buffers_in_emission_order() {
        let mut sink = VecSink::new();
        sink.record(
            SimTime::from_secs(5),
            &EngineEvent::OutageDetected { task: 0 },
        );
        sink.record(
            SimTime::from_secs(2),
            &EngineEvent::FailureInjected { nodes: vec![4] },
        );
        assert_eq!(sink.events.len(), 2);
        // Emission order is kept even when instants run backwards.
        assert_eq!(sink.events[0].0, SimTime::from_secs(5));
        assert_eq!(sink.events[1].0, SimTime::from_secs(2));
    }
}
