//! A deterministic metrics registry: monotone counters, gauges and
//! fixed-bucket histograms keyed by `&'static str` names.
//!
//! Everything is `BTreeMap`-ordered, so a snapshot serializes in one
//! stable name order regardless of registration order — the same
//! guarantee the workspace's D001 lint rule enforces for every other
//! iteration that escapes into reports.

use std::collections::BTreeMap;

/// Fixed bucket upper bounds (microseconds) for latency-shaped
/// histograms: 1 s, 2 s, 5 s, 10 s, 20 s, 50 s, plus the implicit
/// overflow bucket.
pub const LATENCY_BUCKETS_US: &[u64] = &[
    1_000_000, 2_000_000, 5_000_000, 10_000_000, 20_000_000, 50_000_000,
];

/// One histogram: cumulative-style fixed buckets plus count and sum.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Histogram {
    /// Upper bounds, strictly increasing; values above the last bound
    /// land in the overflow bucket.
    bounds: &'static [u64],
    /// One count per bound, plus the trailing overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
    }
}

/// The live registry a run updates in place.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increments a monotone counter by 1.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increments a monotone counter by `n`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Sets a gauge to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Raises a gauge to `value` if it exceeds the current reading.
    pub fn max_gauge(&mut self, name: &'static str, value: f64) {
        let g = self.gauges.entry(name).or_insert(value);
        if value > *g {
            *g = value;
        }
    }

    /// Records one observation into the named fixed-bucket histogram.
    /// The bounds are fixed at first observation; later observations
    /// reuse them (static names pair with static bucket layouts).
    pub fn observe(&mut self, name: &'static str, bounds: &'static [u64], value: u64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// A counter's current value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// An immutable, name-ordered copy of everything measured so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(&k, &v)| (k, v)).collect(),
            gauges: self.gauges.iter().map(|(&k, &v)| (k, v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(&k, h)| {
                    (
                        k,
                        HistogramSnapshot {
                            bounds: h.bounds,
                            counts: h.counts.clone(),
                            total: h.total,
                            sum: h.sum,
                        },
                    )
                })
                .collect(),
        }
    }
}

/// An immutable histogram reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper bounds; the final count is the overflow bucket.
    pub bounds: &'static [u64],
    /// One count per bound plus the trailing overflow bucket.
    pub counts: Vec<u64>,
    pub total: u64,
    pub sum: u64,
}

/// A point-in-time reading of a [`MetricsRegistry`], in name order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(&'static str, u64)>,
    pub gauges: Vec<(&'static str, f64)>,
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// A counter's value in this snapshot (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| *k == name)
            .map_or(0, |&(_, v)| v)
    }

    /// A gauge's value in this snapshot, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    /// A histogram reading in this snapshot, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_in_name_order() {
        let mut m = MetricsRegistry::new();
        m.inc("z.last");
        m.add("a.first", 2);
        m.inc("z.last");
        assert_eq!(m.counter("z.last"), 2);
        assert_eq!(m.counter("missing"), 0);
        let snap = m.snapshot();
        // BTreeMap order, not insertion order.
        assert_eq!(snap.counters, vec![("a.first", 2), ("z.last", 2)]);
        assert_eq!(snap.counter("a.first"), 2);
    }

    #[test]
    fn gauges_set_and_max() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("g", 3.0);
        m.set_gauge("g", 1.0);
        assert_eq!(m.snapshot().gauge("g"), Some(1.0));
        m.max_gauge("h", 2.0);
        m.max_gauge("h", 1.0);
        m.max_gauge("h", 5.0);
        assert_eq!(m.snapshot().gauge("h"), Some(5.0));
        assert_eq!(m.snapshot().gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_values_with_overflow() -> Result<(), Box<dyn std::error::Error>> {
        let mut m = MetricsRegistry::new();
        for v in [500_000, 1_000_000, 3_000_000, 99_000_000] {
            m.observe("lat", LATENCY_BUCKETS_US, v);
        }
        let snap = m.snapshot();
        let h = snap.histogram("lat").ok_or("histogram recorded")?;
        // <=1s: two (500ms and exactly 1s), <=5s: one, overflow: one.
        assert_eq!(h.counts, vec![2, 0, 1, 0, 0, 0, 1]);
        assert_eq!(h.total, 4);
        assert_eq!(h.sum, 103_500_000);
        assert!(snap.histogram("missing").is_none());
        Ok(())
    }
}
