//! Stream-level invariant checking over [`EngineEvent`] streams.
//!
//! The chaos swarm validates runs against *invariants* instead of golden
//! outputs: whatever the scenario, topology or chaos schedule, every
//! task's event stream must walk the outage lifecycle state machine
//! (`OutageOpened → OutageDetected → {RestoreDone | ReplicaActivated}`,
//! with `RecoverySetback` looping a record back to undetected). This
//! module checks exactly the properties expressible over the stream
//! alone; cross-layer checks (events ↔ report ↔ metrics reconciliation)
//! live in `ppa-chaos`, which sees the engine's `RunReport` too.

use crate::event::EngineEvent;
use ppa_sim::SimTime;
use std::collections::BTreeMap;

/// One invariant violation: which rule broke, where, and how.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Stable snake_case rule tag (e.g. `open_without_close`).
    pub invariant: &'static str,
    /// The instant of the offending event (or the run end).
    pub at: SimTime,
    /// The logical task concerned, when the rule concerns one.
    pub task: Option<usize>,
    /// Human-readable specifics.
    pub detail: String,
}

impl Violation {
    fn new(invariant: &'static str, at: SimTime, task: Option<usize>, detail: String) -> Self {
        Violation {
            invariant,
            at,
            task,
            detail,
        }
    }
}

/// The checker's verdict over one stream, with the lifecycle counts it
/// established on the way (useful for swarm summaries).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamCheck {
    pub events: usize,
    pub outages_opened: usize,
    pub outages_closed: usize,
    pub setbacks: usize,
    pub violations: Vec<Violation>,
}

impl StreamCheck {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Per-task fold state of the outage lifecycle machine.
#[derive(Default)]
struct TaskState {
    /// Records opened so far (drives the `refail` flag check).
    opened: usize,
    /// A record is currently open.
    open: bool,
    /// `OutageDetected` count within the current record.
    detections: usize,
    /// `TentativeResumed` seen for the current record (at most one — the
    /// engine emits it on a record's *first* proxied output only).
    tentative: bool,
    /// `ApproxRecovery` seen for the current record (at most one — a
    /// voided approximate restore must not record its loss twice).
    approx: bool,
    /// The current record's `OutageOpened` instant.
    opened_at: SimTime,
}

/// Folds the stream (in emission order) through every task's lifecycle
/// state machine. Event timestamps may run ahead of emission order
/// (completions land at CPU horizons), so only per-record ordering —
/// close and detection not before their open — is checked, never global
/// monotonicity.
pub fn check_stream(events: &[(SimTime, EngineEvent)]) -> StreamCheck {
    let mut tasks: BTreeMap<usize, TaskState> = BTreeMap::new();
    let mut out = StreamCheck {
        events: events.len(),
        ..StreamCheck::default()
    };

    for &(at, ref event) in events {
        match event {
            EngineEvent::FailureInjected { nodes } => {
                if nodes.is_empty() {
                    out.violations.push(Violation::new(
                        "empty_failure_wave",
                        at,
                        None,
                        "FailureInjected with an empty kill list".to_string(),
                    ));
                }
            }
            EngineEvent::OutageOpened { task, refail } => {
                let st = tasks.entry(*task).or_default();
                if st.open {
                    out.violations.push(Violation::new(
                        "open_while_open",
                        at,
                        Some(*task),
                        "a fresh outage record opened while one is still open".to_string(),
                    ));
                }
                if *refail != (st.opened > 0) {
                    out.violations.push(Violation::new(
                        "refail_flag_wrong",
                        at,
                        Some(*task),
                        format!(
                            "refail={refail} on outage record #{} (must mark every record \
                             beyond the first)",
                            st.opened + 1
                        ),
                    ));
                }
                st.opened += 1;
                st.open = true;
                st.detections = 0;
                st.tentative = false;
                st.approx = false;
                st.opened_at = at;
                out.outages_opened += 1;
            }
            EngineEvent::RecoverySetback { task } => {
                let st = tasks.entry(*task).or_default();
                if !st.open {
                    out.violations.push(Violation::new(
                        "setback_without_open_outage",
                        at,
                        Some(*task),
                        "RecoverySetback with no open outage record".to_string(),
                    ));
                }
                out.setbacks += 1;
            }
            EngineEvent::OutageDetected { task } => {
                let st = tasks.entry(*task).or_default();
                if !st.open {
                    out.violations.push(Violation::new(
                        "detect_without_open_outage",
                        at,
                        Some(*task),
                        "OutageDetected with no open outage record".to_string(),
                    ));
                } else if at < st.opened_at {
                    out.violations.push(Violation::new(
                        "detect_before_open",
                        at,
                        Some(*task),
                        format!(
                            "detected at {at}, before the record opened at {}",
                            st.opened_at
                        ),
                    ));
                }
                st.detections += 1;
            }
            EngineEvent::RestoreStarted { task, .. } => {
                let st = tasks.entry(*task).or_default();
                if !st.open || st.detections == 0 {
                    out.violations.push(Violation::new(
                        "restore_before_detection",
                        at,
                        Some(*task),
                        "RestoreStarted without a detected open outage".to_string(),
                    ));
                }
            }
            EngineEvent::TentativeResumed { task } => {
                let st = tasks.entry(*task).or_default();
                if !st.open || st.detections == 0 {
                    out.violations.push(Violation::new(
                        "tentative_before_detection",
                        at,
                        Some(*task),
                        "TentativeResumed without a detected open outage".to_string(),
                    ));
                }
                if st.tentative {
                    out.violations.push(Violation::new(
                        "tentative_twice",
                        at,
                        Some(*task),
                        "a second TentativeResumed within one outage record".to_string(),
                    ));
                }
                st.tentative = true;
            }
            EngineEvent::ApproxRecovery {
                task,
                fidelity_floor,
                ..
            } => {
                let st = tasks.entry(*task).or_default();
                if !st.open || st.detections == 0 {
                    out.violations.push(Violation::new(
                        "approx_recovery_before_detection",
                        at,
                        Some(*task),
                        "ApproxRecovery without a detected open outage".to_string(),
                    ));
                }
                if st.approx {
                    out.violations.push(Violation::new(
                        "approx_recovery_twice",
                        at,
                        Some(*task),
                        "a second ApproxRecovery within one outage record \
                         (forfeited fidelity double-counted)"
                            .to_string(),
                    ));
                }
                if *fidelity_floor > 1000 {
                    out.violations.push(Violation::new(
                        "fidelity_floor_out_of_range",
                        at,
                        Some(*task),
                        format!("fidelity_floor {fidelity_floor} exceeds 1000 permille"),
                    ));
                }
                st.approx = true;
            }
            EngineEvent::RestoreDone { task } | EngineEvent::ReplicaActivated { task } => {
                let st = tasks.entry(*task).or_default();
                if !st.open {
                    out.violations.push(Violation::new(
                        "close_without_open",
                        at,
                        Some(*task),
                        format!("{} with no open outage record", event.kind()),
                    ));
                } else {
                    if st.detections == 0 {
                        out.violations.push(Violation::new(
                            "close_before_detection",
                            at,
                            Some(*task),
                            format!("{} closed a record never detected", event.kind()),
                        ));
                    }
                    if at < st.opened_at {
                        out.violations.push(Violation::new(
                            "close_before_open",
                            at,
                            Some(*task),
                            format!(
                                "closed at {at}, before the record opened at {}",
                                st.opened_at
                            ),
                        ));
                    }
                }
                st.open = false;
                out.outages_closed += 1;
            }
            EngineEvent::RestoreVoided { task } => {
                // A stale completion may trail an already-closed record;
                // the only hard requirement is that the task failed at
                // some point.
                let st = tasks.entry(*task).or_default();
                if st.opened == 0 {
                    out.violations.push(Violation::new(
                        "void_without_outage",
                        at,
                        Some(*task),
                        "RestoreVoided for a task that never had an outage".to_string(),
                    ));
                }
            }
            EngineEvent::EpochHealthSnapshot { scores } => {
                if !scores.windows(2).all(|w| w[0].0 < w[1].0) {
                    out.violations.push(Violation::new(
                        "health_scores_unordered",
                        at,
                        None,
                        "EpochHealthSnapshot scores not in strict domain order".to_string(),
                    ));
                }
            }
            EngineEvent::ReplanAdopted { .. }
            | EngineEvent::MigrationScheduled { .. }
            | EngineEvent::ControlNoEffect { .. }
            | EngineEvent::ApproxBackupShipped { .. } => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn healthy_stream() -> Vec<(SimTime, EngineEvent)> {
        vec![
            (s(40), EngineEvent::FailureInjected { nodes: vec![3] }),
            (
                s(40),
                EngineEvent::OutageOpened {
                    task: 2,
                    refail: false,
                },
            ),
            (s(45), EngineEvent::OutageDetected { task: 2 }),
            (s(45), EngineEvent::RestoreStarted { task: 2, node: 9 }),
            (s(46), EngineEvent::TentativeResumed { task: 2 }),
            (s(48), EngineEvent::RestoreDone { task: 2 }),
            (
                s(60),
                EngineEvent::OutageOpened {
                    task: 2,
                    refail: true,
                },
            ),
            (s(65), EngineEvent::OutageDetected { task: 2 }),
            (s(67), EngineEvent::ReplicaActivated { task: 2 }),
        ]
    }

    #[test]
    fn healthy_lifecycle_passes() {
        let check = check_stream(&healthy_stream());
        assert!(check.ok(), "{:?}", check.violations);
        assert_eq!(check.outages_opened, 2);
        assert_eq!(check.outages_closed, 2);
        assert_eq!(check.events, 9);
    }

    #[test]
    fn rearm_loops_back_to_undetected() {
        let events = vec![
            (
                s(40),
                EngineEvent::OutageOpened {
                    task: 1,
                    refail: false,
                },
            ),
            (s(45), EngineEvent::OutageDetected { task: 1 }),
            (s(46), EngineEvent::RecoverySetback { task: 1 }),
            (s(50), EngineEvent::OutageDetected { task: 1 }),
            (s(51), EngineEvent::RestoreDone { task: 1 }),
            // The stale completion of the voided first restore.
            (s(52), EngineEvent::RestoreVoided { task: 1 }),
        ];
        let check = check_stream(&events);
        assert!(check.ok(), "{:?}", check.violations);
        assert_eq!(check.setbacks, 1);
    }

    #[test]
    fn close_without_open_is_flagged() {
        let events = vec![(s(48), EngineEvent::RestoreDone { task: 2 })];
        let check = check_stream(&events);
        assert_eq!(check.violations.len(), 1);
        assert_eq!(check.violations[0].invariant, "close_without_open");
        assert_eq!(check.violations[0].task, Some(2));
    }

    #[test]
    fn double_open_and_wrong_refail_are_flagged() {
        let events = vec![
            (
                s(40),
                EngineEvent::OutageOpened {
                    task: 0,
                    refail: true, // first record must not be a refail
                },
            ),
            (
                s(41),
                EngineEvent::OutageOpened {
                    task: 0,
                    refail: true, // opened while still open
                },
            ),
        ];
        let check = check_stream(&events);
        let rules: Vec<&str> = check.violations.iter().map(|v| v.invariant).collect();
        assert!(rules.contains(&"refail_flag_wrong"), "{rules:?}");
        assert!(rules.contains(&"open_while_open"), "{rules:?}");
    }

    #[test]
    fn close_before_detection_is_flagged() {
        let events = vec![
            (
                s(40),
                EngineEvent::OutageOpened {
                    task: 5,
                    refail: false,
                },
            ),
            (s(41), EngineEvent::ReplicaActivated { task: 5 }),
        ];
        let check = check_stream(&events);
        assert_eq!(check.violations.len(), 1);
        assert_eq!(check.violations[0].invariant, "close_before_detection");
    }

    #[test]
    fn approx_recovery_lifecycle_rules() {
        // Healthy: open → detect → approx_recovery → restore_done.
        let healthy = vec![
            (
                s(40),
                EngineEvent::OutageOpened {
                    task: 1,
                    refail: false,
                },
            ),
            (s(45), EngineEvent::OutageDetected { task: 1 }),
            (
                s(46),
                EngineEvent::ApproxRecovery {
                    task: 1,
                    divergence: 120,
                    skipped_batches: 6,
                    fidelity_floor: 0,
                },
            ),
            (s(46), EngineEvent::RestoreDone { task: 1 }),
        ];
        assert!(check_stream(&healthy).ok());

        // A second ApproxRecovery in one record double-counts the loss.
        let mut doubled = healthy.clone();
        doubled.insert(
            3,
            (
                s(46),
                EngineEvent::ApproxRecovery {
                    task: 1,
                    divergence: 120,
                    skipped_batches: 6,
                    fidelity_floor: 0,
                },
            ),
        );
        let check = check_stream(&doubled);
        assert_eq!(check.violations.len(), 1);
        assert_eq!(check.violations[0].invariant, "approx_recovery_twice");

        // Undetected and out-of-range floors are flagged.
        let bad = vec![(
            s(46),
            EngineEvent::ApproxRecovery {
                task: 2,
                divergence: 1,
                skipped_batches: 0,
                fidelity_floor: 1500,
            },
        )];
        let rules: Vec<&str> = check_stream(&bad)
            .violations
            .iter()
            .map(|v| v.invariant)
            .collect();
        assert!(
            rules.contains(&"approx_recovery_before_detection"),
            "{rules:?}"
        );
        assert!(rules.contains(&"fidelity_floor_out_of_range"), "{rules:?}");
    }

    #[test]
    fn duplicate_tentative_is_flagged() {
        let events = vec![
            (
                s(40),
                EngineEvent::OutageOpened {
                    task: 3,
                    refail: false,
                },
            ),
            (s(45), EngineEvent::OutageDetected { task: 3 }),
            (s(46), EngineEvent::TentativeResumed { task: 3 }),
            (s(47), EngineEvent::TentativeResumed { task: 3 }),
        ];
        let check = check_stream(&events);
        assert_eq!(check.violations.len(), 1);
        assert_eq!(check.violations[0].invariant, "tentative_twice");
    }
}
