//! # ppa-obs — deterministic engine observability
//!
//! The engine's window into a run while it happens: a [`TraceSink`]
//! receives typed, sim-timestamped [`EngineEvent`]s at every lifecycle
//! transition (failure injection, outage open/detect, replica takeover,
//! checkpoint restore, tentative resumption, control-plane actions,
//! epoch health snapshots), and a [`MetricsRegistry`] aggregates the same
//! transitions into monotone counters, gauges and fixed-bucket histograms
//! keyed by static names.
//!
//! Everything rides **simulated time only** — no wall clocks — so a
//! recorded trace is a deterministic function of the run: byte-identical
//! across worker counts and repeated runs, which makes traces usable as
//! golden test artifacts and as the input stream for invariant checking
//! (the ROADMAP's chaos-swarm item).
//!
//! Three exporters turn a recorded event stream into artifacts:
//!
//! * [`export::to_jsonl`] — the canonical one-event-per-line JSON trace;
//! * [`export::to_chrome_trace`] — Chrome `trace_event` JSON, openable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev) (outages
//!   render as per-task duration spans, everything else as instants);
//! * [`timeline::render_timeline`] — a plain-text per-task outage/recovery
//!   timeline aligned with the injected failure waves.

pub mod event;
pub mod export;
pub mod invariant;
pub mod metrics;
pub mod timeline;

pub use event::{EngineEvent, TraceSink, VecSink};
pub use export::{to_chrome_trace, to_jsonl};
pub use invariant::{check_stream, StreamCheck, Violation};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use timeline::{render_timeline, TimelineConfig};
