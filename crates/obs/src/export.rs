//! Trace exporters: canonical JSONL and Chrome `trace_event` JSON.
//!
//! Both are hand-rolled writers over plain integers and static strings,
//! so the output is a byte-deterministic function of the event stream —
//! fields appear in one fixed order, numbers use Rust's shortest-form
//! `Display`, and no map iteration order leaks in.

use crate::event::EngineEvent;
use ppa_sim::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON string literal. Event
/// payload strings are static identifiers today, but the writer stays
/// honest about quoting anyway.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Appends the event's payload fields (everything after `at_us` and
/// `kind`) to a JSON object body under construction. Each field is
/// written as `,"name":value` in a fixed, kind-specific order.
fn write_payload(event: &EngineEvent, out: &mut String) {
    match event {
        EngineEvent::FailureInjected { nodes } => {
            out.push_str(",\"nodes\":[");
            for (i, n) in nodes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{n}");
            }
            out.push(']');
        }
        EngineEvent::OutageOpened { task, refail } => {
            let _ = write!(out, ",\"task\":{task},\"refail\":{refail}");
        }
        EngineEvent::RecoverySetback { task }
        | EngineEvent::OutageDetected { task }
        | EngineEvent::RestoreDone { task }
        | EngineEvent::RestoreVoided { task }
        | EngineEvent::ReplicaActivated { task }
        | EngineEvent::TentativeResumed { task } => {
            let _ = write!(out, ",\"task\":{task}");
        }
        EngineEvent::RestoreStarted { task, node } => {
            let _ = write!(out, ",\"task\":{task},\"node\":{node}");
        }
        EngineEvent::ApproxBackupShipped { task, divergence } => {
            let _ = write!(out, ",\"task\":{task},\"divergence\":{divergence}");
        }
        EngineEvent::ApproxRecovery {
            task,
            divergence,
            skipped_batches,
            fidelity_floor,
        } => {
            let _ = write!(
                out,
                ",\"task\":{task},\"divergence\":{divergence},\"skipped_batches\":{skipped_batches},\"fidelity_floor\":{fidelity_floor}"
            );
        }
        EngineEvent::ReplanAdopted {
            activated,
            deactivated,
            plan_size,
        } => {
            let _ = write!(
                out,
                ",\"activated\":{activated},\"deactivated\":{deactivated},\"plan_size\":{plan_size}"
            );
        }
        EngineEvent::MigrationScheduled {
            planned_primaries,
            planned_standbys,
            moved_primaries,
            moved_standbys,
        } => {
            let _ = write!(
                out,
                ",\"planned_primaries\":{planned_primaries},\"planned_standbys\":{planned_standbys},\"moved_primaries\":{moved_primaries},\"moved_standbys\":{moved_standbys}"
            );
        }
        EngineEvent::ControlNoEffect { action, reason } => {
            out.push_str(",\"action\":\"");
            escape_json(action, out);
            out.push_str("\",\"reason\":\"");
            escape_json(reason, out);
            out.push('"');
        }
        EngineEvent::EpochHealthSnapshot { scores } => {
            out.push_str(",\"scores\":[");
            for (i, (domain, score)) in scores.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{domain},{score}]");
            }
            out.push(']');
        }
    }
}

/// The canonical trace format: one JSON object per line, in emission
/// order, each `{"at_us":...,"kind":"...",<payload>}` with a fixed
/// field order per kind. Ends with a trailing newline when non-empty.
pub fn to_jsonl(events: &[(SimTime, EngineEvent)]) -> String {
    let mut out = String::new();
    for (at, event) in events {
        let _ = write!(
            out,
            "{{\"at_us\":{},\"kind\":\"{}\"",
            at.as_micros(),
            event.kind()
        );
        write_payload(event, &mut out);
        out.push_str("}\n");
    }
    out
}

/// Converts a recorded stream to Chrome `trace_event` JSON, loadable in
/// `chrome://tracing` or Perfetto.
///
/// Each task maps to a thread (`tid` = task id, `pid` 0). Outages
/// render as `ph:"X"` duration spans from `outage_opened` to the
/// closing `restore_done`/`replica_activated` (an outage still open at
/// the end of the stream spans to the last recorded instant); every
/// event additionally renders as a `ph:"i"` instant — thread-scoped
/// when it concerns one task, global otherwise.
pub fn to_chrome_trace(events: &[(SimTime, EngineEvent)]) -> String {
    let mut entries: Vec<String> = Vec::new();
    let t_max = events
        .iter()
        .map(|(at, _)| at.as_micros())
        .max()
        .unwrap_or(0);

    // Open outage spans per task: (opened_us, refail).
    let mut open: BTreeMap<usize, (u64, bool)> = BTreeMap::new();
    for (at, event) in events {
        let us = at.as_micros();
        match event {
            EngineEvent::OutageOpened { task, refail } => {
                open.insert(*task, (us, *refail));
            }
            e if e.closes_outage() => {
                if let Some(task) = e.task() {
                    if let Some((from, refail)) = open.remove(&task) {
                        entries.push(span_entry(task, from, us, refail));
                    }
                }
            }
            _ => {}
        }
    }
    // Outages never closed span to the end of the recording; BTreeMap
    // iteration keeps the flush order deterministic.
    for (task, (from, refail)) in &open {
        entries.push(span_entry(*task, *from, t_max.max(*from), *refail));
    }

    for (at, event) in events {
        let mut e = String::new();
        let scope = if event.task().is_some() { "t" } else { "g" };
        let tid = event.task().unwrap_or(0);
        let _ = write!(
            e,
            "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"{}\",\"args\":{{\"at_us\":{}",
            event.kind(),
            at.as_micros(),
            tid,
            scope,
            at.as_micros()
        );
        write_payload(event, &mut e);
        e.push_str("}}");
        entries.push(e);
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(e);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn span_entry(task: usize, from_us: u64, to_us: u64, refail: bool) -> String {
    let name = if refail { "refail outage" } else { "outage" };
    format!(
        "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"refail\":{}}}}}",
        name,
        from_us,
        to_us.saturating_sub(from_us),
        task,
        refail
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn sample() -> Vec<(SimTime, EngineEvent)> {
        vec![
            (
                SimTime::from_secs(100),
                EngineEvent::FailureInjected { nodes: vec![3, 7] },
            ),
            (
                SimTime::from_secs(100),
                EngineEvent::OutageOpened {
                    task: 5,
                    refail: false,
                },
            ),
            (
                SimTime::from_secs(103),
                EngineEvent::OutageDetected { task: 5 },
            ),
            (
                SimTime::from_secs(110),
                EngineEvent::RestoreDone { task: 5 },
            ),
        ]
    }

    #[test]
    fn jsonl_is_one_fixed_order_object_per_line() -> TestResult {
        let text = to_jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            "{\"at_us\":100000000,\"kind\":\"failure_injected\",\"nodes\":[3,7]}"
        );
        assert_eq!(
            lines[1],
            "{\"at_us\":100000000,\"kind\":\"outage_opened\",\"task\":5,\"refail\":false}"
        );
        assert!(text.ends_with('\n'));
        assert!(to_jsonl(&[]).is_empty());
        Ok(())
    }

    #[test]
    fn chrome_trace_pairs_outage_spans() -> TestResult {
        let text = to_chrome_trace(&sample());
        // One closed span: opened at 100s, closed at 110s.
        assert!(text.contains(
            "{\"name\":\"outage\",\"ph\":\"X\",\"ts\":100000000,\"dur\":10000000,\"pid\":0,\"tid\":5,\"args\":{\"refail\":false}}"
        ));
        // Global instant for the injection, thread instant for the detection.
        assert!(text.contains("\"name\":\"failure_injected\",\"ph\":\"i\""));
        assert!(text.contains("\"s\":\"g\""));
        assert!(text.contains("\"name\":\"outage_detected\",\"ph\":\"i\""));
        assert!(text.ends_with("}\n"));
        Ok(())
    }

    #[test]
    fn chrome_trace_flushes_unclosed_spans_to_stream_end() -> TestResult {
        let events = vec![
            (
                SimTime::from_secs(10),
                EngineEvent::OutageOpened {
                    task: 2,
                    refail: true,
                },
            ),
            (
                SimTime::from_secs(40),
                EngineEvent::OutageDetected { task: 2 },
            ),
        ];
        let text = to_chrome_trace(&events);
        assert!(text.contains(
            "{\"name\":\"refail outage\",\"ph\":\"X\",\"ts\":10000000,\"dur\":30000000,\"pid\":0,\"tid\":2,\"args\":{\"refail\":true}}"
        ));
        Ok(())
    }

    #[test]
    fn control_strings_are_quoted_and_escaped() -> TestResult {
        let events = vec![(
            SimTime::ZERO,
            EngineEvent::ControlNoEffect {
                action: "replan",
                reason: "plan \"empty\"",
            },
        )];
        let line = to_jsonl(&events);
        assert!(line.contains("\"action\":\"replan\",\"reason\":\"plan \\\"empty\\\"\""));
        Ok(())
    }
}
