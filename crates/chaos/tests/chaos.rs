//! End-to-end chaos tests: each buggify point observably perturbs a
//! deterministic scenario, zero chaos is byte-identical to the plain
//! fault path, horizons reject out-of-range events with typed errors,
//! and a small swarm runs clean and shard-invariant.

use ppa_chaos::{build, run_swarm, ChaosConfig, ModeTag, ProcessTag, ScenarioParams, StrategyTag};
use ppa_engine::{
    ChaosError, ChaosKind, ChaosSpec, EngineError, EngineEvent, FailureSpec, FailureTrace,
    FaultFeed, RunReport, Simulation, StaticPolicy, VecSink,
};
use ppa_sim::{SimDuration, SimTime};
use std::error::Error;

type TestResult = Result<(), Box<dyn Error>>;
type RunOutcome = Result<(RunReport, Vec<(SimTime, EngineEvent)>), Box<dyn Error>>;

/// A fixed, quiet scenario: checkpointed chain on a racked cluster, no
/// generated failures, no drawn chaos — tests inject their own.
fn params() -> ScenarioParams {
    ScenarioParams {
        index: 0,
        seed: 1234,
        sources: 2,
        rate: 50,
        mids: 1,
        window_batches: 5,
        selectivity: 1.0,
        workers: 8,
        rack_size: 2,
        strategy: StrategyTag::RoundRobin,
        mode: ModeTag::Checkpoint { interval_secs: 2 },
        process: ProcessTag::Quiet,
        chaos: ChaosConfig {
            seed: 1,
            buggify: 0,
            rekills: 0,
            max_dead_frac: 0.4,
        },
        horizon_secs: 60,
    }
}

/// Kills task 0's primary at 30 s and runs to the horizon with the given
/// chaos schedule, returning the report and the recorded event stream.
fn run_with_chaos(chaos: &[ChaosSpec]) -> RunOutcome {
    let built = build(&params(), 1)?;
    let kill_node = built.placement.primary[0];
    let mut sim = Simulation::new(&built.query, built.placement.clone(), built.config.clone());
    sim.set_horizon(built.horizon);
    sim.set_trace_sink(Box::new(VecSink::new()));
    for spec in chaos {
        sim.inject_chaos(spec.clone())?;
    }
    let feed = FaultFeed::from_trace(FailureTrace::once(SimTime::from_secs(30), vec![kill_node]));
    let driven = sim.drive(&feed, &mut StaticPolicy, built.horizon)?;
    let events = sim
        .take_trace_sink()
        .map(|mut s| s.take_events())
        .unwrap_or_default();
    Ok((driven.report, events))
}

fn outage_of_task0(report: &RunReport) -> Result<&ppa_engine::OutageRecord, Box<dyn Error>> {
    report
        .outages
        .iter()
        .find(|o| o.task.0 == 0)
        .and_then(|o| o.records.first())
        .ok_or_else(|| "task 0 has no outage record".into())
}

#[test]
fn heartbeat_drop_delays_detection_by_a_scan() -> TestResult {
    let (baseline, _) = run_with_chaos(&[])?;
    let d0 = outage_of_task0(&baseline)?.detected_at;
    let (dropped, _) = run_with_chaos(&[ChaosSpec {
        at: SimTime::from_secs(28),
        kind: ChaosKind::HeartbeatDrop { scans: 1 },
    }])?;
    let d1 = outage_of_task0(&dropped)?.detected_at;
    assert!(
        d1 >= d0 + SimDuration::from_secs(5),
        "dropping one scan must push detection a heartbeat interval out \
         (baseline {d0}, dropped {d1})"
    );
    Ok(())
}

#[test]
fn heartbeat_delay_postpones_detection() -> TestResult {
    let (baseline, _) = run_with_chaos(&[])?;
    let d0 = outage_of_task0(&baseline)?.detected_at;
    let (delayed, _) = run_with_chaos(&[ChaosSpec {
        at: SimTime::from_secs(28),
        kind: ChaosKind::HeartbeatDelay {
            by: SimDuration::from_secs(4),
        },
    }])?;
    let d1 = outage_of_task0(&delayed)?.detected_at;
    assert!(d1 > d0, "a delayed scan detects later ({d0} → {d1})");
    Ok(())
}

#[test]
fn heartbeat_duplicate_is_idempotent() -> TestResult {
    // An extra out-of-cadence scan before anything failed must change
    // nothing observable (detection is idempotent).
    let (baseline, _) = run_with_chaos(&[])?;
    let (extra, _) = run_with_chaos(&[ChaosSpec {
        at: SimTime::from_secs(10),
        kind: ChaosKind::HeartbeatDuplicate,
    }])?;
    let b = outage_of_task0(&baseline)?;
    let e = outage_of_task0(&extra)?;
    assert_eq!(b, e, "pre-failure duplicate scan is invisible");
    Ok(())
}

#[test]
fn restore_stall_shifts_recovery() -> TestResult {
    let (baseline, _) = run_with_chaos(&[])?;
    let r0 = outage_of_task0(&baseline)?
        .recovered_at
        .ok_or("baseline run must recover")?;
    let stall = SimDuration::from_secs(5);
    let (stalled, _) = run_with_chaos(&[ChaosSpec {
        at: SimTime::from_secs(20),
        kind: ChaosKind::RestoreStall { task: 0, by: stall },
    }])?;
    let r1 = outage_of_task0(&stalled)?
        .recovered_at
        .ok_or("stalled run must still recover within the horizon")?;
    assert!(
        r1 >= r0 + stall,
        "a {stall} stall must delay recovery at least that much ({r0} → {r1})"
    );
    Ok(())
}

#[test]
fn restore_void_causes_a_setback_then_recovery() -> TestResult {
    // Stall the restore so the void reliably lands mid-restore.
    let (report, events) = run_with_chaos(&[
        ChaosSpec {
            at: SimTime::from_secs(20),
            kind: ChaosKind::RestoreStall {
                task: 0,
                by: SimDuration::from_secs(10),
            },
        },
        ChaosSpec {
            at: SimTime::from_secs(38),
            kind: ChaosKind::RestoreVoid { task: 0 },
        },
    ])?;
    let setbacks = events
        .iter()
        .filter(|(_, e)| matches!(e, EngineEvent::RecoverySetback { task: 0 }))
        .count();
    assert!(setbacks >= 1, "the void must re-arm the open outage");
    let record = outage_of_task0(&report)?;
    assert!(
        record.recovered_at.is_some(),
        "the re-armed outage must still recover within the horizon"
    );
    Ok(())
}

#[test]
fn voided_approximate_restore_rearms_without_double_counting_the_floor() -> TestResult {
    // A stalled restore of an approximate-mode task is voided mid-load:
    // the outage re-arms (setback), the voided completion must NOT run
    // the lossy jump (no ApproxRecovery, no floor), and the re-armed
    // restore closes the outage with exactly one floor on the record.
    let mut p = params();
    p.mode = ModeTag::Approx { error_bound: 100 };
    let built = build(&p, 1)?;
    let mid = 2; // first non-source task (sources recover exactly)
    let kill_node = built.placement.primary[mid];
    let mut sim = Simulation::new(&built.query, built.placement.clone(), built.config.clone());
    sim.set_horizon(built.horizon);
    sim.set_trace_sink(Box::new(VecSink::new()));
    sim.inject_chaos(ChaosSpec {
        at: SimTime::from_secs(20),
        kind: ChaosKind::RestoreStall {
            task: mid,
            by: SimDuration::from_secs(10),
        },
    })?;
    sim.inject_chaos(ChaosSpec {
        at: SimTime::from_secs(38),
        kind: ChaosKind::RestoreVoid { task: mid },
    })?;
    let feed = FaultFeed::from_trace(FailureTrace::once(SimTime::from_secs(30), vec![kill_node]));
    let driven = sim.drive(&feed, &mut StaticPolicy, built.horizon)?;
    let events = sim
        .take_trace_sink()
        .map(|mut s| s.take_events())
        .unwrap_or_default();

    let setbacks = events
        .iter()
        .filter(|(_, e)| matches!(e, EngineEvent::RecoverySetback { task } if *task == mid))
        .count();
    assert!(setbacks >= 1, "the void must re-arm the open outage");
    let voided = events
        .iter()
        .filter(|(_, e)| matches!(e, EngineEvent::RestoreVoided { task } if *task == mid))
        .count();
    assert!(voided >= 1, "the stalled completion must observe the void");
    let lossy: Vec<(u64, u16)> = events
        .iter()
        .filter_map(|(_, e)| match e {
            EngineEvent::ApproxRecovery {
                task,
                divergence,
                fidelity_floor,
                ..
            } if *task == mid => Some((*divergence, *fidelity_floor)),
            _ => None,
        })
        .collect();
    assert_eq!(
        lossy.len(),
        1,
        "exactly one lossy recovery despite the voided restore: {lossy:?}"
    );
    let outage = driven
        .report
        .outages
        .iter()
        .find(|o| o.task.0 == mid)
        .ok_or("mid task has no outage record")?;
    let floors: Vec<u16> = outage
        .records
        .iter()
        .filter_map(|r| r.fidelity_floor)
        .collect();
    assert_eq!(
        floors,
        vec![lossy[0].1],
        "the record carries the single lossy recovery's floor, once"
    );
    assert!(
        outage
            .records
            .last()
            .is_some_and(|r| r.recovered_at.is_some()),
        "the re-armed outage must still recover within the horizon"
    );
    assert_eq!(
        driven
            .metrics
            .counter("engine.approx.divergence_at_recovery"),
        lossy[0].0,
        "metered divergence equals the single event's divergence"
    );
    Ok(())
}

#[test]
fn zero_chaos_run_is_byte_identical_to_the_plain_fault_path() -> TestResult {
    let built = build(&params(), 1)?;
    let kill = FailureSpec {
        at: SimTime::from_secs(30),
        nodes: vec![built.placement.primary[0]],
    };
    // Through the chaos feed (quiet config)…
    let resolved = built
        .feed
        .with_spec(kill.clone())
        .resolve(&built.placement, built.horizon)?;
    assert!(resolved.schedule.is_empty());
    let chaos_run = {
        let b = build(&params(), 1)?;
        let mut sim = Simulation::new(&b.query, b.placement.clone(), b.config.clone());
        sim.set_horizon(b.horizon);
        sim.drive(
            &FaultFeed::from_trace(resolved.trace.clone()),
            &mut StaticPolicy,
            b.horizon,
        )?
        .report
    };
    // …and the plain path, no chaos subsystem anywhere.
    let plain_run = {
        let b = build(&params(), 1)?;
        let mut sim = Simulation::new(&b.query, b.placement.clone(), b.config.clone());
        sim.drive(
            &FaultFeed::new().with_spec(kill),
            &mut StaticPolicy,
            b.horizon,
        )?
        .report
    };
    assert_eq!(
        format!("{chaos_run:?}"),
        format!("{plain_run:?}"),
        "a quiet chaos feed must not perturb the run at all"
    );
    Ok(())
}

#[test]
fn horizons_reject_late_events_with_typed_errors() -> TestResult {
    let built = build(&params(), 1)?;
    let mut sim = Simulation::new(&built.query, built.placement.clone(), built.config.clone());
    let horizon = built.horizon;
    sim.set_horizon(horizon);
    let late = SimTime::from_secs(95);
    assert_eq!(
        sim.inject(FailureSpec {
            at: late,
            nodes: vec![0]
        }),
        Err(EngineError::EventPastHorizon { at: late, horizon })
    );
    assert_eq!(
        sim.inject_chaos(ChaosSpec {
            at: late,
            kind: ChaosKind::HeartbeatDuplicate
        }),
        Err(ChaosError::Engine(EngineError::EventPastHorizon {
            at: late,
            horizon
        }))
    );
    // Within the horizon both paths accept.
    sim.inject(FailureSpec {
        at: SimTime::from_secs(30),
        nodes: vec![0],
    })?;
    sim.inject_chaos(ChaosSpec {
        at: SimTime::from_secs(30),
        kind: ChaosKind::HeartbeatDuplicate,
    })?;
    Ok(())
}

#[test]
fn a_small_swarm_runs_clean_and_shard_invariant() -> TestResult {
    let a = run_swarm(2024, 10, 1)?;
    assert_eq!(a.failed(), Vec::<usize>::new(), "{}", a.render());
    let b = run_swarm(2024, 10, 4)?;
    assert_eq!(a, b, "outcomes are shard-invariant");
    assert_eq!(a.render(), b.render());
    Ok(())
}
