//! # ppa-chaos — seeded chaos swarm for the deterministic engine
//!
//! FoundationDB-style simulation testing over `ppa-engine`: a seeded,
//! randomized-but-deterministic adversary composes the `ppa-faults`
//! failure processes with **buggify points** (delayed / duplicated /
//! dropped heartbeats, stalled and voided restores, mid-recovery
//! re-kills), and a swarm runner executes N seeded scenarios checking
//! every run against *invariants* instead of golden outputs.
//!
//! The crate's layers:
//!
//! * [`schedule`] — [`ChaosSchedule`]: normalized buggify schedules with
//!   a canonical `ppa-chaos/1` text form (the chaos twin of
//!   `ppa-faults/1` kill traces);
//! * [`feed`] — [`ChaosFeed`]: a `FaultFeed` composed with the seeded
//!   adversary, guarded by [`can_kill`] so no scenario ever kills the
//!   last copy of a task's exactly-once state or exceeds the dead-node
//!   budget;
//! * [`scenario`] — `(root_seed, index)` → topology × placement ×
//!   ft-mode × failure process × chaos config, all drawn from one RNG
//!   stream;
//! * [`check`] — cross-layer invariant checking (stream lifecycle ∧
//!   report histories ∧ metrics counters ∧ sink exactly-once ∧
//!   closed-or-explained outages);
//! * [`mod@shrink`] — greedy delta debugging of failing
//!   `(trace, schedule)` pairs;
//! * [`swarm`] — the runner: pure per-seed execution
//!   ([`run_seed`]), sequential reference ([`run_swarm`]), stable
//!   reports, and shrunk repro artifacts on failure.
//!
//! Everything is a pure function of its seeds: outcomes are
//! byte-identical across worker threads (`--jobs`), event-loop shards
//! (`shards`) and repeated runs — the property the swarm's own
//! determinism tests pin.

pub mod check;
pub mod feed;
pub mod scenario;
pub mod schedule;
pub mod shrink;
pub mod swarm;

pub use check::{check_run, CheckInput};
pub use feed::{can_kill, ChaosConfig, ChaosFeed, ResolvedChaos};
pub use scenario::{
    build, BuiltScenario, ModeTag, ProcessTag, ScenarioError, ScenarioParams, StrategyTag,
};
pub use schedule::{ChaosSchedule, ScheduleParseError};
pub use shrink::{shrink, Shrunk};
pub use swarm::{run_seed, run_swarm, Repro, SeedOutcome, SwarmError, SwarmReport};
