//! Chaos schedules: an ordered, normalized sequence of buggify injections
//! with a round-trip text serialization — the chaos-side twin of
//! `ppa_faults::FailureTrace`.
//!
//! A repro artifact pairs one `FailureTrace` (`ppa-faults/1`) with one
//! [`ChaosSchedule`] (`ppa-chaos/1`): replaying both against the same
//! scenario reproduces a failing swarm run byte-identically.

use ppa_engine::{ChaosKind, ChaosSpec};
use ppa_sim::{SimDuration, SimTime};
use std::fmt;

/// An ordered chaos scenario: events sorted by `(time, kind, arguments)`,
/// so equal schedules serialize byte-identically no matter how they were
/// built.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosSchedule {
    events: Vec<ChaosSpec>,
}

/// Error from [`ChaosSchedule::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleParseError {
    /// The first non-comment line was not the `ppa-chaos/1` header.
    MissingHeader,
    /// A malformed event line, with its 1-based line number.
    BadLine { line: usize, reason: String },
}

impl fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleParseError::MissingHeader => {
                write!(f, "missing `{}` header", ChaosSchedule::FORMAT)
            }
            ScheduleParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for ScheduleParseError {}

/// Canonical sort key: time, then kind order, then arguments.
fn sort_key(spec: &ChaosSpec) -> (SimTime, u8, u64, u64) {
    match &spec.kind {
        ChaosKind::HeartbeatDrop { scans } => (spec.at, 0, u64::from(*scans), 0),
        ChaosKind::HeartbeatDelay { by } => (spec.at, 1, by.as_micros(), 0),
        ChaosKind::HeartbeatDuplicate => (spec.at, 2, 0, 0),
        ChaosKind::RestoreStall { task, by } => (spec.at, 3, *task as u64, by.as_micros()),
        ChaosKind::RestoreVoid { task } => (spec.at, 4, *task as u64, 0),
    }
}

impl ChaosSchedule {
    /// Format tag written as the first line of every serialized schedule.
    pub const FORMAT: &'static str = "ppa-chaos/1";

    /// An empty schedule (no chaos).
    pub fn new() -> Self {
        ChaosSchedule::default()
    }

    /// Builds a normalized schedule from arbitrary events.
    pub fn from_events(events: impl IntoIterator<Item = ChaosSpec>) -> Self {
        let mut schedule = ChaosSchedule::new();
        for e in events {
            schedule.push(e);
        }
        schedule
    }

    /// Adds an event, keeping the schedule normalized (sorted by
    /// `(time, kind, arguments)`; duplicates are kept — firing the same
    /// buggify twice is a valid, meaningful schedule).
    pub fn push(&mut self, spec: ChaosSpec) {
        let key = sort_key(&spec);
        let pos = self.events.partition_point(|e| sort_key(e) <= key);
        self.events.insert(pos, spec);
    }

    /// The normalized events, in time order.
    pub fn events(&self) -> &[ChaosSpec] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total detection slack this schedule can introduce: the sum of every
    /// dropped scan's heartbeat interval and every heartbeat delay — the
    /// allowance the invariant checker grants late detections.
    pub fn detection_slack(&self, heartbeat_interval: SimDuration) -> SimDuration {
        let mut slack = SimDuration::ZERO;
        for e in &self.events {
            match &e.kind {
                ChaosKind::HeartbeatDrop { scans } => {
                    for _ in 0..*scans {
                        slack += heartbeat_interval;
                    }
                }
                ChaosKind::HeartbeatDelay { by } => slack += *by,
                _ => {}
            }
        }
        slack
    }

    /// Total stall this schedule can add to restore completions — the
    /// allowance granted to slow recoveries.
    pub fn restore_slack(&self) -> SimDuration {
        let mut slack = SimDuration::ZERO;
        for e in &self.events {
            if let ChaosKind::RestoreStall { by, .. } = &e.kind {
                slack += *by;
            }
        }
        slack
    }

    /// Serializes the schedule: a header line, then one
    /// `<at_µs> <kind> [args...]` line per event. Canonical — equal
    /// schedules serialize byte-identically.
    pub fn to_text(&self) -> String {
        let mut out = String::from(Self::FORMAT);
        out.push('\n');
        for e in &self.events {
            out.push_str(&e.at.as_micros().to_string());
            out.push(' ');
            out.push_str(e.kind.name());
            match &e.kind {
                ChaosKind::HeartbeatDrop { scans } => {
                    out.push(' ');
                    out.push_str(&scans.to_string());
                }
                ChaosKind::HeartbeatDelay { by } => {
                    out.push(' ');
                    out.push_str(&by.as_micros().to_string());
                }
                ChaosKind::HeartbeatDuplicate => {}
                ChaosKind::RestoreStall { task, by } => {
                    out.push(' ');
                    out.push_str(&task.to_string());
                    out.push(' ');
                    out.push_str(&by.as_micros().to_string());
                }
                ChaosKind::RestoreVoid { task } => {
                    out.push(' ');
                    out.push_str(&task.to_string());
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parses a schedule serialized by [`ChaosSchedule::to_text`]. Blank
    /// lines and `#` comments are ignored; events need not be pre-sorted.
    pub fn from_text(text: &str) -> Result<Self, ScheduleParseError> {
        let mut schedule = ChaosSchedule::new();
        let mut saw_header = false;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if !saw_header {
                if line != Self::FORMAT {
                    return Err(ScheduleParseError::MissingHeader);
                }
                saw_header = true;
                continue;
            }
            let bad = |reason: String| ScheduleParseError::BadLine {
                line: i + 1,
                reason,
            };
            let mut fields = line.split_whitespace();
            let at = fields
                .next()
                .ok_or_else(|| bad("empty event line".to_string()))
                .and_then(|s| {
                    s.parse::<u64>()
                        .map_err(|_| bad(format!("bad timestamp {s:?}")))
                })?;
            let kind_tag = fields
                .next()
                .ok_or_else(|| bad("missing chaos kind".to_string()))?;
            let mut arg = |what: &str| -> Result<u64, ScheduleParseError> {
                fields
                    .next()
                    .ok_or_else(|| ScheduleParseError::BadLine {
                        line: i + 1,
                        reason: format!("{kind_tag} needs <{what}>"),
                    })
                    .and_then(|s| {
                        s.parse::<u64>().map_err(|_| ScheduleParseError::BadLine {
                            line: i + 1,
                            reason: format!("bad {what} {s:?}"),
                        })
                    })
            };
            let kind = match kind_tag {
                "heartbeat_drop" => ChaosKind::HeartbeatDrop {
                    scans: arg("scans")? as u32,
                },
                "heartbeat_delay" => ChaosKind::HeartbeatDelay {
                    by: SimDuration::from_micros(arg("delay_us")?),
                },
                "heartbeat_duplicate" => ChaosKind::HeartbeatDuplicate,
                "restore_stall" => ChaosKind::RestoreStall {
                    task: arg("task")? as usize,
                    by: SimDuration::from_micros(arg("stall_us")?),
                },
                "restore_void" => ChaosKind::RestoreVoid {
                    task: arg("task")? as usize,
                },
                other => return Err(bad(format!("unknown chaos kind {other:?}"))),
            };
            schedule.push(ChaosSpec {
                at: SimTime::from_micros(at),
                kind,
            });
        }
        if !saw_header {
            return Err(ScheduleParseError::MissingHeader);
        }
        Ok(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    type TestResult = Result<(), Box<dyn Error>>;

    fn sample() -> ChaosSchedule {
        ChaosSchedule::from_events([
            ChaosSpec {
                at: SimTime::from_secs(50),
                kind: ChaosKind::RestoreStall {
                    task: 3,
                    by: SimDuration::from_millis(2500),
                },
            },
            ChaosSpec {
                at: SimTime::from_secs(10),
                kind: ChaosKind::HeartbeatDrop { scans: 2 },
            },
            ChaosSpec {
                at: SimTime::from_secs(10),
                kind: ChaosKind::HeartbeatDuplicate,
            },
            ChaosSpec {
                at: SimTime::from_secs(20),
                kind: ChaosKind::HeartbeatDelay {
                    by: SimDuration::from_secs(3),
                },
            },
            ChaosSpec {
                at: SimTime::from_secs(60),
                kind: ChaosKind::RestoreVoid { task: 1 },
            },
        ])
    }

    #[test]
    fn push_normalizes_by_time_then_kind() {
        let s = sample();
        let kinds: Vec<&str> = s.events().iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            vec![
                "heartbeat_drop",
                "heartbeat_duplicate",
                "heartbeat_delay",
                "restore_stall",
                "restore_void"
            ]
        );
    }

    #[test]
    fn text_round_trips_canonically() -> TestResult {
        let s = sample();
        let text = s.to_text();
        assert!(text.starts_with("ppa-chaos/1\n"), "{text}");
        let back = ChaosSchedule::from_text(&text)?;
        assert_eq!(back, s);
        assert_eq!(back.to_text(), text, "serialization is canonical");
        Ok(())
    }

    #[test]
    fn construction_order_does_not_matter() {
        let mut a = ChaosSchedule::new();
        let mut b = ChaosSchedule::new();
        let one = ChaosSpec {
            at: SimTime::from_secs(1),
            kind: ChaosKind::HeartbeatDuplicate,
        };
        let two = ChaosSpec {
            at: SimTime::from_secs(2),
            kind: ChaosKind::RestoreVoid { task: 0 },
        };
        a.push(one.clone());
        a.push(two.clone());
        b.push(two);
        b.push(one);
        assert_eq!(a, b);
        assert_eq!(a.to_text(), b.to_text());
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert_eq!(
            ChaosSchedule::from_text(""),
            Err(ScheduleParseError::MissingHeader)
        );
        assert!(matches!(
            ChaosSchedule::from_text("ppa-chaos/1\nxx heartbeat_drop 1\n"),
            Err(ScheduleParseError::BadLine { line: 2, .. })
        ));
        assert!(matches!(
            ChaosSchedule::from_text("ppa-chaos/1\n10 explode\n"),
            Err(ScheduleParseError::BadLine { .. })
        ));
        assert!(matches!(
            ChaosSchedule::from_text("ppa-chaos/1\n10 restore_stall 3\n"),
            Err(ScheduleParseError::BadLine { .. })
        ));
    }

    #[test]
    fn slack_sums_heartbeat_and_restore_chaos() {
        let s = sample();
        let hb = SimDuration::from_secs(5);
        // Two dropped scans (2 × 5 s) + one 3 s delay.
        assert_eq!(s.detection_slack(hb), SimDuration::from_secs(13));
        assert_eq!(s.restore_slack(), SimDuration::from_millis(2500));
    }
}
