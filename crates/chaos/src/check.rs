//! Cross-layer invariant checking: one run's event stream, [`RunReport`],
//! metrics snapshot and resolved chaos scenario must all tell the same
//! story.
//!
//! `ppa_obs::check_stream` validates what the stream alone can express
//! (the per-task outage lifecycle machine); this module adds every check
//! that needs a second witness:
//!
//! * **events ↔ report** — each task's `OutageOpened`/close events agree
//!   with its `TaskOutages` record history, record timestamps are
//!   ordered, and only the last record may be open;
//! * **events ↔ trace** — `FailureInjected` waves replay the resolved
//!   kill trace exactly;
//! * **events ↔ metrics** — every lifecycle counter equals its event
//!   count, and throughput counters reconcile with the report;
//! * **exactly-once sinks** — a non-tentative sink batch id is emitted
//!   once, unless its sink task went through a state restore (a restore
//!   rewinds the batch cursor, legitimately re-emitting);
//! * **closed-or-explained** — an outage still open at the horizon is
//!   either detected (recovery in flight) or undetected but within the
//!   detection allowance (heartbeat cadence + the chaos schedule's
//!   slack); anything else is a lost outage.

use crate::feed::ResolvedChaos;
use ppa_engine::{EngineEvent, FailureTrace, MetricsSnapshot, RunReport};
use ppa_obs::{check_stream, Violation};
use ppa_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Everything the checker cross-references for one run.
pub struct CheckInput<'a> {
    pub report: &'a RunReport,
    pub events: &'a [(SimTime, EngineEvent)],
    pub metrics: &'a MetricsSnapshot,
    pub resolved: &'a ResolvedChaos,
    pub horizon: SimTime,
    pub heartbeat: SimDuration,
}

fn violation(
    invariant: &'static str,
    at: SimTime,
    task: Option<usize>,
    detail: String,
) -> Violation {
    Violation {
        invariant,
        at,
        task,
        detail,
    }
}

/// Runs the stream checker plus every cross-layer check; returns all
/// violations found (empty = the run holds its invariants).
pub fn check_run(input: &CheckInput<'_>) -> Vec<Violation> {
    let mut out = check_stream(input.events).violations;
    check_report_agreement(input, &mut out);
    check_trace_agreement(input, &mut out);
    check_metrics_agreement(input, &mut out);
    check_sink_exactly_once(input, &mut out);
    check_closed_or_explained(input, &mut out);
    check_fidelity_floor(input, &mut out);
    out
}

/// Per-task event counts folded out of the stream.
#[derive(Default)]
struct TaskEvents {
    opened: usize,
    closed: usize,
    restores_started: usize,
    /// Instant of the last `OutageOpened`/`RecoverySetback` — the last
    /// time the task's detection clock was (re)armed.
    last_armed: SimTime,
}

fn fold_task_events(events: &[(SimTime, EngineEvent)]) -> BTreeMap<usize, TaskEvents> {
    let mut tasks: BTreeMap<usize, TaskEvents> = BTreeMap::new();
    for &(at, ref event) in events {
        match event {
            EngineEvent::OutageOpened { task, .. } => {
                let st = tasks.entry(*task).or_default();
                st.opened += 1;
                st.last_armed = st.last_armed.max(at);
            }
            EngineEvent::RecoverySetback { task } => {
                let st = tasks.entry(*task).or_default();
                st.last_armed = st.last_armed.max(at);
            }
            EngineEvent::RestoreDone { task } | EngineEvent::ReplicaActivated { task } => {
                tasks.entry(*task).or_default().closed += 1;
            }
            EngineEvent::RestoreStarted { task, .. } => {
                tasks.entry(*task).or_default().restores_started += 1;
            }
            _ => {}
        }
    }
    tasks
}

/// events ↔ report: outage histories and the stream must agree.
fn check_report_agreement(input: &CheckInput<'_>, out: &mut Vec<Violation>) {
    let by_task = fold_task_events(input.events);
    let end = input.report.ended_at;

    for outages in &input.report.outages {
        let task = outages.task.0;
        let folded = by_task.get(&task);
        let opened = folded.map_or(0, |f| f.opened);
        if opened != outages.records.len() {
            out.push(violation(
                "report_open_count_mismatch",
                end,
                Some(task),
                format!(
                    "{} OutageOpened events but {} outage records",
                    opened,
                    outages.records.len()
                ),
            ));
        }
        let closed_events = folded.map_or(0, |f| f.closed);
        let closed_records = outages.records.iter().filter(|r| !r.open()).count();
        if closed_events != closed_records {
            out.push(violation(
                "report_close_count_mismatch",
                end,
                Some(task),
                format!("{closed_events} close events but {closed_records} recovered records"),
            ));
        }
        for (i, r) in outages.records.iter().enumerate() {
            if r.detected() && r.detected_at < r.failed_at {
                out.push(violation(
                    "record_detected_before_failed",
                    r.detected_at,
                    Some(task),
                    format!(
                        "record #{i}: detected {} < failed {}",
                        r.detected_at, r.failed_at
                    ),
                ));
            }
            if let Some(rec) = r.recovered_at {
                if !r.detected() {
                    out.push(violation(
                        "record_recovered_undetected",
                        rec,
                        Some(task),
                        format!("record #{i} recovered without a detection"),
                    ));
                } else if rec < r.detected_at {
                    out.push(violation(
                        "record_recovered_before_detected",
                        rec,
                        Some(task),
                        format!(
                            "record #{i}: recovered {} < detected {}",
                            rec, r.detected_at
                        ),
                    ));
                }
            }
            if r.open() && i + 1 != outages.records.len() {
                out.push(violation(
                    "non_final_record_open",
                    end,
                    Some(task),
                    format!(
                        "record #{i} is open but {} records follow it",
                        outages.records.len() - i - 1
                    ),
                ));
            }
        }
    }

    // The converse direction: a task with outage events must own a
    // report history.
    for (&task, folded) in &by_task {
        if folded.opened > 0 && !input.report.outages.iter().any(|o| o.task.0 == task) {
            out.push(violation(
                "report_history_missing",
                end,
                Some(task),
                format!(
                    "{} OutageOpened events but no outage history",
                    folded.opened
                ),
            ));
        }
    }
}

/// events ↔ trace: `FailureInjected` waves must replay the resolved kill
/// trace exactly — same instants, same node sets, same order.
fn check_trace_agreement(input: &CheckInput<'_>, out: &mut Vec<Violation>) {
    let observed: Vec<(SimTime, Vec<usize>)> = input
        .events
        .iter()
        .filter_map(|(at, e)| match e {
            EngineEvent::FailureInjected { nodes } => Some((*at, nodes.clone())),
            _ => None,
        })
        .collect();
    let expected: Vec<(SimTime, Vec<usize>)> = input
        .resolved
        .trace
        .events()
        .iter()
        .map(|e| (e.at, e.nodes.clone()))
        .collect();
    if observed != expected {
        out.push(violation(
            "trace_replay_mismatch",
            input.horizon,
            None,
            format!(
                "{} FailureInjected waves do not replay the {}-event resolved trace",
                observed.len(),
                expected.len()
            ),
        ));
    }
}

/// events ↔ metrics: lifecycle counters must equal their event counts,
/// and throughput counters must reconcile with the report.
fn check_metrics_agreement(input: &CheckInput<'_>, out: &mut Vec<Violation>) {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut nodes_killed = 0u64;
    let mut refails = 0u64;
    for (_, event) in input.events {
        match event {
            EngineEvent::FailureInjected { nodes } => {
                *counts.entry("engine.failures.waves").or_default() += 1;
                nodes_killed += nodes.len() as u64;
            }
            EngineEvent::OutageOpened { refail, .. } => {
                *counts.entry("engine.outages.opened").or_default() += 1;
                if *refail {
                    refails += 1;
                }
            }
            EngineEvent::OutageDetected { .. } => {
                *counts.entry("engine.outages.detected").or_default() += 1;
            }
            EngineEvent::RestoreStarted { .. } => {
                *counts.entry("engine.restores.started").or_default() += 1;
            }
            EngineEvent::RestoreDone { .. } => {
                *counts.entry("engine.recoveries.via_restore").or_default() += 1;
            }
            EngineEvent::RestoreVoided { .. } => {
                *counts.entry("engine.restores.voided").or_default() += 1;
            }
            EngineEvent::ReplicaActivated { .. } => {
                *counts.entry("engine.recoveries.via_replica").or_default() += 1;
            }
            EngineEvent::TentativeResumed { .. } => {
                *counts.entry("engine.tentative.resumed").or_default() += 1;
            }
            EngineEvent::ApproxBackupShipped { .. } => {
                *counts.entry("engine.approx.backups_shipped").or_default() += 1;
            }
            EngineEvent::ApproxRecovery { divergence, .. } => {
                *counts
                    .entry("engine.approx.divergence_at_recovery")
                    .or_default() += divergence;
            }
            _ => {}
        }
    }
    counts.insert("engine.failures.nodes_killed", nodes_killed);
    counts.insert("engine.outages.refails", refails);
    counts.insert("engine.chaos.fired", input.resolved.schedule.len() as u64);
    counts.insert("engine.events.processed", input.report.events);
    counts.insert("engine.tuples.moved", input.report.tuples_moved);

    for (name, expected) in counts {
        let actual = input.metrics.counter(name);
        if actual != expected {
            out.push(violation(
                "metrics_counter_mismatch",
                input.horizon,
                None,
                format!("{name}: counter reads {actual}, events say {expected}"),
            ));
        }
    }
}

/// Exactly-once sink accounting: a non-tentative `(task, batch)` pair
/// may repeat only if that sink task went through a state restore (the
/// restore rewinds its batch cursor; downstream re-emission is the
/// documented at-least-once window of checkpoint recovery).
fn check_sink_exactly_once(input: &CheckInput<'_>, out: &mut Vec<Violation>) {
    let by_task = fold_task_events(input.events);
    let mut seen: BTreeMap<(usize, u64), usize> = BTreeMap::new();
    for batch in &input.report.sink {
        if batch.tentative {
            continue;
        }
        *seen.entry((batch.task.0, batch.batch)).or_default() += 1;
    }
    for ((task, batch), count) in seen {
        if count > 1 && by_task.get(&task).map_or(0, |f| f.restores_started) == 0 {
            out.push(violation(
                "sink_duplicate_batch",
                input.horizon,
                Some(task),
                format!(
                    "non-tentative batch {batch} emitted {count}× by a task that never restored"
                ),
            ));
        }
    }
}

/// Closed-or-explained: every outage still open at the horizon must be
/// detected (recovery in flight — the run just ended first) or still
/// within the detection allowance measured from the last (re)arming of
/// its detection clock: two heartbeat scans plus whatever slack the
/// chaos schedule legitimately injected.
fn check_closed_or_explained(input: &CheckInput<'_>, out: &mut Vec<Violation>) {
    let by_task = fold_task_events(input.events);
    let slack = input.resolved.schedule.detection_slack(input.heartbeat);
    let allowance = input.heartbeat + input.heartbeat + slack;
    for outages in &input.report.outages {
        let task = outages.task.0;
        let Some(last) = outages.records.last() else {
            continue;
        };
        if !last.open() || last.detected() {
            continue;
        }
        let armed = by_task.get(&task).map_or(last.failed_at, |f| f.last_armed);
        let overdue = input.horizon.since(armed.min(input.horizon));
        if overdue > allowance {
            out.push(violation(
                "undetected_outage_overdue",
                input.horizon,
                Some(task),
                format!(
                    "outage armed at {armed} still undetected {overdue} later \
                     (allowance {allowance})"
                ),
            ));
        }
    }
}

/// Fidelity-floor accounting: the stream's `ApproxRecovery` events and
/// the report's `fidelity_floor` records must tell the same story — a
/// floor is in permille (≤ 1000), every recorded floor has exactly one
/// matching lossy-recovery event for its task (same values, same order),
/// and a lossy recovery never leaves the report floorless. This is the
/// invariant that catches a voided/stalled restore double-counting an
/// approximate recovery into one outage record.
fn check_fidelity_floor(input: &CheckInput<'_>, out: &mut Vec<Violation>) {
    let end = input.report.ended_at;
    let mut event_floors: BTreeMap<usize, Vec<u16>> = BTreeMap::new();
    for (at, event) in input.events {
        if let EngineEvent::ApproxRecovery {
            task,
            fidelity_floor,
            ..
        } = event
        {
            if *fidelity_floor > 1000 {
                out.push(violation(
                    "fidelity_floor_out_of_range",
                    *at,
                    Some(*task),
                    format!("ApproxRecovery floor {fidelity_floor}‰ exceeds 1000"),
                ));
            }
            event_floors.entry(*task).or_default().push(*fidelity_floor);
        }
    }
    for outages in &input.report.outages {
        let task = outages.task.0;
        let recorded: Vec<u16> = outages
            .records
            .iter()
            .filter_map(|r| r.fidelity_floor)
            .collect();
        let witnessed = event_floors.remove(&task).unwrap_or_default();
        if recorded != witnessed {
            out.push(violation(
                "fidelity_floor_mismatch",
                end,
                Some(task),
                format!("report floors {recorded:?} but ApproxRecovery events say {witnessed:?}"),
            ));
        }
    }
    for (task, witnessed) in event_floors {
        out.push(violation(
            "fidelity_floor_mismatch",
            end,
            Some(task),
            format!(
                "{} ApproxRecovery events but no outage history",
                witnessed.len()
            ),
        ));
    }
}

/// Convenience used by tests and the shrinker's predicate: whether the
/// kill trace + schedule pair still violates when replayed.
pub fn trace_of(resolved: &ResolvedChaos) -> &FailureTrace {
    &resolved.trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ChaosSchedule;

    fn empty_input<'a>(
        report: &'a RunReport,
        events: &'a [(SimTime, EngineEvent)],
        metrics: &'a MetricsSnapshot,
        resolved: &'a ResolvedChaos,
    ) -> CheckInput<'a> {
        CheckInput {
            report,
            events,
            metrics,
            resolved,
            horizon: SimTime::from_secs(60),
            heartbeat: SimDuration::from_secs(5),
        }
    }

    #[test]
    fn an_empty_run_checks_clean() {
        let report = RunReport::default();
        let events: Vec<(SimTime, EngineEvent)> = Vec::new();
        let metrics = MetricsSnapshot::default();
        let resolved = ResolvedChaos {
            trace: FailureTrace::new(),
            schedule: ChaosSchedule::new(),
            suppressed_kills: 0,
        };
        let input = empty_input(&report, &events, &metrics, &resolved);
        assert!(check_run(&input).is_empty());
    }

    #[test]
    fn a_phantom_wave_is_a_trace_mismatch() {
        let report = RunReport::default();
        let events = vec![(
            SimTime::from_secs(10),
            EngineEvent::FailureInjected { nodes: vec![1] },
        )];
        let metrics = MetricsSnapshot {
            counters: vec![
                ("engine.failures.nodes_killed", 1),
                ("engine.failures.waves", 1),
            ],
            ..MetricsSnapshot::default()
        };
        let resolved = ResolvedChaos {
            trace: FailureTrace::new(), // resolved trace says: no kills
            schedule: ChaosSchedule::new(),
            suppressed_kills: 0,
        };
        let input = empty_input(&report, &events, &metrics, &resolved);
        let rules: Vec<&str> = check_run(&input).iter().map(|v| v.invariant).collect();
        assert!(rules.contains(&"trace_replay_mismatch"), "{rules:?}");
    }

    #[test]
    fn floor_without_a_recovery_event_is_a_mismatch() {
        use ppa_engine::{OutageRecord, TaskOutages};
        let mut report = RunReport::default();
        report.outages.push(TaskOutages {
            task: ppa_core::model::TaskIndex(3),
            records: vec![OutageRecord {
                via_replica: false,
                failed_at: SimTime::from_secs(20),
                detected_at: SimTime::from_secs(25),
                recovered_at: Some(SimTime::from_secs(26)),
                fidelity_floor: Some(700),
            }],
        });
        // One opened/closed pair so the lifecycle checks stay quiet; the
        // floor on the record has no ApproxRecovery witness.
        let events = vec![
            (
                SimTime::from_secs(20),
                EngineEvent::OutageOpened {
                    task: 3,
                    refail: false,
                },
            ),
            (
                SimTime::from_secs(25),
                EngineEvent::OutageDetected { task: 3 },
            ),
            (SimTime::from_secs(26), EngineEvent::RestoreDone { task: 3 }),
        ];
        let metrics = MetricsSnapshot {
            counters: vec![
                ("engine.outages.opened", 1),
                ("engine.outages.detected", 1),
                ("engine.recoveries.via_restore", 1),
            ],
            ..MetricsSnapshot::default()
        };
        let resolved = ResolvedChaos {
            trace: FailureTrace::new(),
            schedule: ChaosSchedule::new(),
            suppressed_kills: 0,
        };
        let input = empty_input(&report, &events, &metrics, &resolved);
        let check = check_run(&input);
        assert!(
            check
                .iter()
                .any(|v| v.invariant == "fidelity_floor_mismatch"),
            "{check:?}"
        );

        // Adding the witnessing event (and its divergence counter)
        // reconciles the two layers.
        let mut events = events;
        events.insert(
            2,
            (
                SimTime::from_secs(26),
                EngineEvent::ApproxRecovery {
                    task: 3,
                    divergence: 42,
                    skipped_batches: 4,
                    fidelity_floor: 700,
                },
            ),
        );
        let metrics = MetricsSnapshot {
            counters: vec![
                ("engine.outages.opened", 1),
                ("engine.outages.detected", 1),
                ("engine.recoveries.via_restore", 1),
                ("engine.approx.divergence_at_recovery", 42),
            ],
            ..MetricsSnapshot::default()
        };
        let input = empty_input(&report, &events, &metrics, &resolved);
        let check = check_run(&input);
        assert!(
            !check
                .iter()
                .any(|v| v.invariant == "fidelity_floor_mismatch"),
            "{check:?}"
        );
    }

    #[test]
    fn counter_drift_is_flagged() {
        let report = RunReport::default();
        let events = vec![(
            SimTime::from_secs(10),
            EngineEvent::OutageDetected { task: 0 },
        )];
        // Stream says one detection; registry says two.
        let metrics = MetricsSnapshot {
            counters: vec![("engine.outages.detected", 2)],
            ..MetricsSnapshot::default()
        };
        let resolved = ResolvedChaos {
            trace: FailureTrace::new(),
            schedule: ChaosSchedule::new(),
            suppressed_kills: 0,
        };
        let input = empty_input(&report, &events, &metrics, &resolved);
        let check = check_run(&input);
        assert!(
            check
                .iter()
                .any(|v| v.invariant == "metrics_counter_mismatch"
                    && v.detail.contains("engine.outages.detected")),
            "{check:?}"
        );
    }
}
