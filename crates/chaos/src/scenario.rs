//! Seeded scenario generation: one root seed and an index deterministically
//! expand into a topology × placement × fault-tolerance mode × failure
//! process × chaos config — the swarm's whole input space.
//!
//! Every parameter is drawn from one [`StdRng`] stream in a fixed order,
//! so `(root_seed, index)` names a scenario completely: the repro workflow
//! is "re-run the same pair", and shrunk artifacts stay replayable against
//! the scenario they came from.

use crate::feed::{ChaosConfig, ChaosFeed};
use ppa_core::model::{OperatorSpec, Partitioning};
use ppa_core::{Planner, StructureAwarePlanner};
use ppa_engine::udf::CountingSource;
use ppa_engine::{
    Cluster, DomainSpread, EngineConfig, FtMode, Packed, Placement, PlacementStrategy, Query,
    QueryBuilder, RoundRobin,
};
use ppa_faults::{CascadeProcess, DomainBurstProcess, FailureProcess, IndependentProcess};
use ppa_sim::{SimDuration, SimTime};
use ppa_workloads::synthetic::SyntheticOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Scenario construction failure: a drawn parameter combination the
/// underlying builders reject. Always a swarm bug (the generator must
/// only draw valid combinations), so the swarm surfaces it as an error
/// rather than skipping the seed silently.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioError(pub String);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario construction failed: {}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

/// Placement strategy choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyTag {
    RoundRobin,
    Packed,
    DomainSpread,
}

impl StrategyTag {
    fn name(self) -> &'static str {
        match self {
            StrategyTag::RoundRobin => "rr",
            StrategyTag::Packed => "packed",
            StrategyTag::DomainSpread => "spread",
        }
    }
}

/// Fault-tolerance mode choice (materialized into [`FtMode`] once the
/// placement exists — PPA plans need the placement's fault-domain tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeTag {
    Active,
    Checkpoint {
        interval_secs: u64,
    },
    PpaHalf,
    Storm,
    /// Divergence-bounded approximate backups with lossy recovery.
    Approx {
        error_bound: u64,
    },
}

impl ModeTag {
    fn name(self) -> &'static str {
        match self {
            ModeTag::Active => "active",
            ModeTag::Checkpoint { .. } => "checkpoint",
            ModeTag::PpaHalf => "ppa",
            ModeTag::Storm => "storm",
            ModeTag::Approx { .. } => "approx",
        }
    }
}

/// Base failure process choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessTag {
    /// Independent Poisson node failures.
    Independent,
    /// One correlated rack-level burst.
    DomainBurst,
    /// A cascade spreading across racks.
    Cascade,
    /// No base failures — buggify-only scenario.
    Quiet,
}

impl ProcessTag {
    fn name(self) -> &'static str {
        match self {
            ProcessTag::Independent => "indep",
            ProcessTag::DomainBurst => "burst",
            ProcessTag::Cascade => "cascade",
            ProcessTag::Quiet => "quiet",
        }
    }
}

/// Everything one swarm scenario is parameterized by — a pure function
/// of `(root_seed, index)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioParams {
    pub index: usize,
    /// The derived per-scenario seed (workload + engine seed).
    pub seed: u64,
    pub sources: usize,
    pub rate: usize,
    pub mids: usize,
    pub window_batches: u64,
    pub selectivity: f64,
    pub workers: usize,
    pub rack_size: usize,
    pub strategy: StrategyTag,
    pub mode: ModeTag,
    pub process: ProcessTag,
    pub chaos: ChaosConfig,
    pub horizon_secs: u64,
}

/// Splitmix-style seed derivation: spreads consecutive indices across
/// the seed space so per-scenario streams are independent.
fn derive_seed(root: u64, index: usize) -> u64 {
    let mut z = root ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ScenarioParams {
    /// Expands `(root_seed, index)` into a full scenario parameterization.
    pub fn for_seed(root_seed: u64, index: usize) -> Self {
        let seed = derive_seed(root_seed, index);
        let mut rng = StdRng::seed_from_u64(seed);
        let sources = rng.gen_range(2..=3usize);
        let rate = rng.gen_range(40..=160usize);
        let mids = rng.gen_range(1..=3usize);
        let window_batches = rng.gen_range(5..=10u64);
        let selectivity = rng.gen_range(0.5..=1.0f64);
        let workers = rng.gen_range(8..=12usize);
        let rack_size = rng.gen_range(2..=4usize);
        let strategy = match rng.gen_range(0..3u32) {
            0 => StrategyTag::RoundRobin,
            1 => StrategyTag::Packed,
            _ => StrategyTag::DomainSpread,
        };
        let mode = match rng.gen_range(0..5u32) {
            0 => ModeTag::Active,
            1 => ModeTag::Checkpoint {
                interval_secs: rng.gen_range(2..=5u64),
            },
            2 => ModeTag::PpaHalf,
            3 => ModeTag::Storm,
            // Bounds spanning "ships every couple of batches" (the rate
            // floor is 40 tuples/batch) to "ships rarely" — the lossy
            // recovery and floor bookkeeping get exercised across the
            // whole cadence range.
            _ => ModeTag::Approx {
                error_bound: rng.gen_range(100..=4_000u64),
            },
        };
        let process = match rng.gen_range(0..4u32) {
            0 => ProcessTag::Independent,
            1 => ProcessTag::DomainBurst,
            2 => ProcessTag::Cascade,
            _ => ProcessTag::Quiet,
        };
        let chaos = ChaosConfig {
            seed: seed ^ 0xC4A0_55AA,
            buggify: rng.gen_range(0..=5usize),
            rekills: rng.gen_range(0..=2usize),
            max_dead_frac: 0.4,
        };
        ScenarioParams {
            index,
            seed,
            sources,
            rate,
            mids,
            window_batches,
            selectivity,
            workers,
            rack_size,
            strategy,
            mode,
            process,
            chaos,
            horizon_secs: 60,
        }
    }

    /// Total logical tasks of the scenario's query.
    pub fn n_tasks(&self) -> usize {
        self.sources + self.mids + 1
    }

    /// A compact, stable one-line description for swarm reports.
    pub fn label(&self) -> String {
        format!(
            "src={}x{} mid={} {} {} {} bug={} rekill={}",
            self.sources,
            self.rate,
            self.mids,
            self.strategy.name(),
            self.mode.name(),
            self.process.name(),
            self.chaos.buggify,
            self.chaos.rekills,
        )
    }
}

/// A scenario materialized and ready to run.
pub struct BuiltScenario {
    pub query: Query,
    pub placement: Placement,
    pub config: EngineConfig,
    pub feed: ChaosFeed,
    pub horizon: SimTime,
    pub heartbeat: SimDuration,
}

/// Materializes a parameterization: builds the query, places it on the
/// racked cluster, derives the engine config (PPA plans against the
/// placement's own fault-domain tree) and assembles the chaos feed.
pub fn build(params: &ScenarioParams, shards: usize) -> Result<BuiltScenario, ScenarioError> {
    let err = |e: &dyn fmt::Display| ScenarioError(e.to_string());

    // Topology: `sources` counting sources → a chain of `mids` windowed
    // synthetic operators → one sink operator collecting output.
    let mut q = QueryBuilder::new();
    let seed = params.seed;
    let rate = params.rate;
    let src = q.add_source(
        OperatorSpec::source("src", params.sources, rate as f64),
        move |task| {
            Box::new(CountingSource {
                per_batch: rate,
                seed: seed ^ ((task as u64) << 8),
                key_space: 1 << 20,
            })
        },
    );
    let window = params.window_batches;
    let sel = params.selectivity;
    // The sources (parallelism ≥ 2) merge into the first mid; the rest
    // of the chain is parallelism-1 → one-to-one edges.
    let mut prev = src;
    for i in 0..params.mids {
        let op = q.add_operator(OperatorSpec::map(format!("mid{i}"), 1, sel), move |_| {
            Box::new(SyntheticOp::new(window, sel))
        });
        let part = if i == 0 {
            Partitioning::Merge
        } else {
            Partitioning::OneToOne
        };
        q.connect(prev, op, part).map_err(|e| err(&e))?;
        prev = op;
    }
    let sink = q.add_operator(OperatorSpec::map("sink", 1, 1.0), move |_| {
        Box::new(SyntheticOp::new(window, 1.0))
    });
    q.connect(prev, sink, Partitioning::OneToOne)
        .map_err(|e| err(&e))?;
    let query = q.build().map_err(|e| err(&e))?;

    // Placement on a racked cluster (standbys mirror the workers).
    let graph = ppa_core::model::TaskGraph::new(query.topology().clone());
    let cluster =
        Cluster::racked(params.workers, params.workers, params.rack_size).map_err(|e| err(&e))?;
    let placement = match params.strategy {
        StrategyTag::RoundRobin => RoundRobin.place(&graph, &cluster),
        StrategyTag::Packed => Packed.place(&graph, &cluster),
        StrategyTag::DomainSpread => DomainSpread::default().place(&graph, &cluster),
    }
    .map_err(|e| err(&e))?;

    // Engine config. The mode is materialized here because a PPA plan
    // needs the placement's fault-domain tree.
    let n_tasks = params.n_tasks();
    let mut config = EngineConfig {
        seed: params.seed,
        shards,
        ..EngineConfig::default()
    };
    config.mode = match params.mode {
        ModeTag::Active => FtMode::active(n_tasks),
        ModeTag::Checkpoint { interval_secs } => {
            FtMode::checkpoint(n_tasks, SimDuration::from_secs(interval_secs))
        }
        ModeTag::PpaHalf => {
            let cx = placement
                .plan_context(query.topology())
                .map_err(|e| err(&e))?;
            let plan = StructureAwarePlanner::default()
                .plan(&cx, n_tasks / 2)
                .map_err(|e| err(&e))?
                .tasks;
            FtMode::ppa(plan, SimDuration::from_secs(5))
        }
        ModeTag::Storm => FtMode::SourceReplay {
            buffer: SimDuration::from_secs(params.window_batches + 5),
        },
        ModeTag::Approx { error_bound } => {
            FtMode::approximate(n_tasks, SimDuration::from_secs(5), error_bound)
        }
    };

    // The failure process covers [20 s, 45 s) of the 60 s horizon,
    // leaving detection + recovery room before the end-of-run checks.
    let start = SimTime::from_secs(20);
    let span = SimDuration::from_secs(25);
    let process: Option<Box<dyn FailureProcess>> = match params.process {
        ProcessTag::Independent => Some(Box::new(IndependentProcess {
            mtbf: SimDuration::from_secs(600),
        })),
        ProcessTag::DomainBurst => Some(Box::new(DomainBurstProcess {
            level: 1,
            bursts: 1,
            fraction: 1.0,
        })),
        ProcessTag::Cascade => Some(Box::new(CascadeProcess {
            level: 1,
            spread: 0.5,
            decay: 0.5,
            hop_delay: SimDuration::from_secs(2),
            fraction: 1.0,
            origin: None,
        })),
        ProcessTag::Quiet => None,
    };
    let mut feed = ChaosFeed::new(params.chaos.clone());
    if let Some(process) = process {
        feed = feed.with_process(process, start, span, params.seed ^ 0xFA17);
    }

    let heartbeat = config.heartbeat_interval;
    Ok(BuiltScenario {
        query,
        placement,
        config,
        feed,
        horizon: SimTime::from_secs(params.horizon_secs),
        heartbeat,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    type TestResult = Result<(), Box<dyn Error>>;

    #[test]
    fn params_are_a_pure_function_of_seed_and_index() {
        let a = ScenarioParams::for_seed(42, 7);
        let b = ScenarioParams::for_seed(42, 7);
        assert_eq!(a, b);
        let c = ScenarioParams::for_seed(42, 8);
        assert_ne!(a.seed, c.seed, "indices derive distinct seeds");
    }

    #[test]
    fn seeds_cover_the_parameter_space() {
        // Across a modest index range every strategy, mode and process
        // variant must appear — the swarm exercises the whole matrix.
        let params: Vec<ScenarioParams> = (0..64).map(|i| ScenarioParams::for_seed(1, i)).collect();
        for tag in [
            StrategyTag::RoundRobin,
            StrategyTag::Packed,
            StrategyTag::DomainSpread,
        ] {
            assert!(params.iter().any(|p| p.strategy == tag), "{tag:?} missing");
        }
        for tag in [
            ProcessTag::Independent,
            ProcessTag::DomainBurst,
            ProcessTag::Cascade,
            ProcessTag::Quiet,
        ] {
            assert!(params.iter().any(|p| p.process == tag), "{tag:?} missing");
        }
        assert!(params.iter().any(|p| matches!(p.mode, ModeTag::Active)));
        assert!(params.iter().any(|p| matches!(p.mode, ModeTag::Storm)));
        assert!(params.iter().any(|p| matches!(p.mode, ModeTag::PpaHalf)));
        assert!(params
            .iter()
            .any(|p| matches!(p.mode, ModeTag::Checkpoint { .. })));
        assert!(params
            .iter()
            .any(|p| matches!(p.mode, ModeTag::Approx { .. })));
        // Every drawn approximate bound is positive: bound 0 is the
        // parity anchor (normalizes to exact checkpointing) and belongs
        // to the differential suite, not the swarm.
        for p in &params {
            if let ModeTag::Approx { error_bound } = p.mode {
                assert!(error_bound > 0);
            }
        }
    }

    #[test]
    fn every_scenario_in_range_builds() -> TestResult {
        for i in 0..16 {
            let params = ScenarioParams::for_seed(99, i);
            let built = build(&params, 1)?;
            assert_eq!(built.placement.primary.len(), params.n_tasks());
            assert!(built.horizon == SimTime::from_secs(60));
        }
        Ok(())
    }
}
