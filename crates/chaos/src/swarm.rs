//! The swarm runner: execute N seeded scenarios, check every run's
//! invariants, shrink failures to minimal repro artifacts.
//!
//! [`run_seed`] is a pure function of `(root_seed, index, shards)` —
//! byte-identical outcomes however runs are distributed across worker
//! threads or event-loop shards. The bench harness fans seeds out across
//! its job pool and reassembles outcomes in index order; [`run_swarm`]
//! is the sequential reference implementation the determinism tests
//! compare against.

use crate::check::{check_run, CheckInput};
use crate::feed::ResolvedChaos;
use crate::scenario::{build, BuiltScenario, ScenarioError, ScenarioParams};
use crate::schedule::ChaosSchedule;
use crate::shrink::shrink;
use ppa_engine::{
    ChaosError, EngineError, EngineEvent, FailureTrace, FaultFeed, MetricsSnapshot, RunReport,
    Simulation, StaticPolicy, VecSink,
};
use ppa_obs::{to_jsonl, Violation};
use ppa_sim::SimTime;
use std::fmt;

/// A swarm-level failure: the scenario generator or the engine rejected
/// a run outright (distinct from an invariant violation, which is a
/// *finding*, not an error).
#[derive(Debug, Clone, PartialEq)]
pub enum SwarmError {
    Scenario(ScenarioError),
    Engine(EngineError),
    Chaos(ChaosError),
}

impl fmt::Display for SwarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwarmError::Scenario(e) => write!(f, "{e}"),
            SwarmError::Engine(e) => write!(f, "{e}"),
            SwarmError::Chaos(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SwarmError {}

impl From<ScenarioError> for SwarmError {
    fn from(e: ScenarioError) -> Self {
        SwarmError::Scenario(e)
    }
}

impl From<EngineError> for SwarmError {
    fn from(e: EngineError) -> Self {
        SwarmError::Engine(e)
    }
}

impl From<ChaosError> for SwarmError {
    fn from(e: ChaosError) -> Self {
        SwarmError::Chaos(e)
    }
}

/// The replayable artifact set of one failing seed: everything needed to
/// reproduce the violation without the swarm.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Shrunk kill trace in `ppa-faults/1` text form.
    pub trace_text: String,
    /// Shrunk chaos schedule in `ppa-chaos/1` text form.
    pub schedule_text: String,
    /// JSONL event trace of the shrunk failing run.
    pub events_jsonl: String,
    /// Predicate evaluations the shrink spent.
    pub shrink_attempts: usize,
}

/// One seed's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedOutcome {
    pub index: usize,
    /// The derived per-scenario seed.
    pub seed: u64,
    pub label: String,
    pub events: usize,
    pub outages_opened: usize,
    pub outages_closed: usize,
    pub chaos_fired: usize,
    pub suppressed_kills: usize,
    /// Violations of the *original* (unshrunk) run.
    pub violations: Vec<Violation>,
    /// Shrunk repro artifacts, present iff `violations` is non-empty
    /// and the failure reproduces under replay.
    pub repro: Option<Repro>,
}

impl SeedOutcome {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// What one replay of a scenario yields.
struct RunArtifacts {
    report: RunReport,
    events: Vec<(SimTime, EngineEvent)>,
    metrics: MetricsSnapshot,
}

/// Replays a resolved `(trace, schedule)` pair against a built scenario.
fn run_once(
    built: &BuiltScenario,
    trace: &FailureTrace,
    schedule: &ChaosSchedule,
) -> Result<RunArtifacts, SwarmError> {
    let mut sim = Simulation::new(&built.query, built.placement.clone(), built.config.clone());
    sim.set_horizon(built.horizon);
    sim.set_trace_sink(Box::new(VecSink::new()));
    for spec in schedule.events() {
        sim.inject_chaos(spec.clone())?;
    }
    let driven = sim.drive(
        &FaultFeed::from_trace(trace.clone()),
        &mut StaticPolicy,
        built.horizon,
    )?;
    let events = sim
        .take_trace_sink()
        .map(|mut s| s.take_events())
        .unwrap_or_default();
    Ok(RunArtifacts {
        report: driven.report,
        events,
        metrics: driven.metrics,
    })
}

fn check_artifacts(
    built: &BuiltScenario,
    resolved: &ResolvedChaos,
    arts: &RunArtifacts,
) -> Vec<Violation> {
    check_run(&CheckInput {
        report: &arts.report,
        events: &arts.events,
        metrics: &arts.metrics,
        resolved,
        horizon: built.horizon,
        heartbeat: built.heartbeat,
    })
}

/// Runs one seeded scenario end to end: derive parameters, build, resolve
/// chaos, replay, check invariants — and on violation, shrink to a
/// minimal replayable repro.
pub fn run_seed(root_seed: u64, index: usize, shards: usize) -> Result<SeedOutcome, SwarmError> {
    let params = ScenarioParams::for_seed(root_seed, index);
    let built = build(&params, shards)?;
    let resolved = built.feed.resolve(&built.placement, built.horizon)?;
    let arts = run_once(&built, &resolved.trace, &resolved.schedule)?;
    let violations = check_artifacts(&built, &resolved, &arts);

    let repro = if violations.is_empty() {
        None
    } else {
        // Shrink against the real predicate: replay the candidate pair
        // and re-check. A candidate the engine rejects (or that runs
        // clean) does not fail, so the original failure is preserved.
        let shrunk = shrink(&resolved.trace, &resolved.schedule, |t, s| {
            let candidate = ResolvedChaos {
                trace: t.clone(),
                schedule: s.clone(),
                suppressed_kills: resolved.suppressed_kills,
            };
            match run_once(&built, t, s) {
                Ok(arts) => !check_artifacts(&built, &candidate, &arts).is_empty(),
                Err(_) => false,
            }
        });
        let replayed = run_once(&built, &shrunk.trace, &shrunk.schedule)?;
        Some(Repro {
            trace_text: shrunk.trace.to_text(),
            schedule_text: shrunk.schedule.to_text(),
            events_jsonl: to_jsonl(&replayed.events),
            shrink_attempts: shrunk.attempts,
        })
    };

    let mut outcome = SeedOutcome {
        index,
        seed: params.seed,
        label: params.label(),
        events: arts.events.len(),
        outages_opened: 0,
        outages_closed: 0,
        chaos_fired: resolved.schedule.len(),
        suppressed_kills: resolved.suppressed_kills,
        violations,
        repro,
    };
    for (_, e) in &arts.events {
        match e {
            EngineEvent::OutageOpened { .. } => outcome.outages_opened += 1,
            EngineEvent::RestoreDone { .. } | EngineEvent::ReplicaActivated { .. } => {
                outcome.outages_closed += 1
            }
            _ => {}
        }
    }
    Ok(outcome)
}

/// A whole swarm's outcomes, in index order.
#[derive(Debug, Clone, PartialEq)]
pub struct SwarmReport {
    pub root_seed: u64,
    pub outcomes: Vec<SeedOutcome>,
}

impl SwarmReport {
    /// Indexes of seeds that violated invariants.
    pub fn failed(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .filter(|o| !o.ok())
            .map(|o| o.index)
            .collect()
    }

    /// A stable text rendering: one line per seed, violations expanded.
    /// Byte-identical across `--jobs` and `shards` settings.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "chaos swarm: root seed {}, {} scenarios, {} failed",
            self.root_seed,
            self.outcomes.len(),
            self.failed().len()
        );
        for o in &self.outcomes {
            let verdict = if o.ok() { "ok" } else { "FAIL" };
            let _ = writeln!(
                out,
                "seed {:04} [{:#018x}] {:<44} events={:<4} outages={}/{} chaos={} suppressed={} {}",
                o.index,
                o.seed,
                o.label,
                o.events,
                o.outages_closed,
                o.outages_opened,
                o.chaos_fired,
                o.suppressed_kills,
                verdict
            );
            for v in &o.violations {
                let task = v.task.map_or(String::new(), |t| format!(" task={t}"));
                let _ = writeln!(out, "    {} at {}{}: {}", v.invariant, v.at, task, v.detail);
            }
        }
        out
    }
}

/// Sequential swarm over `n` seeds. The parallel fan-out lives in the
/// bench harness; this is the deterministic reference.
pub fn run_swarm(root_seed: u64, n: usize, shards: usize) -> Result<SwarmReport, SwarmError> {
    let mut outcomes = Vec::with_capacity(n);
    for index in 0..n {
        outcomes.push(run_seed(root_seed, index, shards)?);
    }
    Ok(SwarmReport {
        root_seed,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    type TestResult = Result<(), Box<dyn Error>>;

    #[test]
    fn a_seed_runs_clean_end_to_end() -> TestResult {
        let outcome = run_seed(42, 0, 1)?;
        assert!(outcome.ok(), "violations: {:?}", outcome.violations);
        assert!(outcome.events > 0, "the trace sink saw the run");
        Ok(())
    }

    #[test]
    fn seed_outcomes_are_deterministic() -> TestResult {
        let a = run_seed(7, 3, 1)?;
        let b = run_seed(7, 3, 1)?;
        assert_eq!(a, b);
        Ok(())
    }

    #[test]
    fn outcomes_are_shard_invariant() -> TestResult {
        for index in 0..4 {
            let unsharded = run_seed(11, index, 1)?;
            let sharded = run_seed(11, index, 4)?;
            assert_eq!(unsharded, sharded, "seed index {index}");
        }
        Ok(())
    }

    #[test]
    fn swarm_report_renders_stably() -> TestResult {
        let a = run_swarm(5, 3, 1)?;
        let b = run_swarm(5, 3, 4)?;
        assert_eq!(a.render(), b.render(), "byte-identical across shards");
        assert_eq!(a.failed(), Vec::<usize>::new());
        Ok(())
    }
}
