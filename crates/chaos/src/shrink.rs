//! Shrink-on-failure: reduce a failing `(FailureTrace, ChaosSchedule)`
//! pair to a minimal one that still fails, by greedy delta debugging.
//!
//! The shrinker is generic over the failure predicate, so property tests
//! can drive it with synthetic predicates and the swarm drives it with
//! "replay the candidate against the scenario and re-check invariants".
//! Three reduction moves run to a bounded fixpoint:
//!
//! 1. drop one chaos-schedule event;
//! 2. drop one kill-trace event;
//! 3. halve one kill event's node list (keep either half).
//!
//! Every accepted move strictly shrinks `(trace events + schedule
//! events, total nodes)`, so termination is structural; the attempt cap
//! only bounds predicate cost on pathological inputs.

use crate::schedule::ChaosSchedule;
use ppa_engine::FailureTrace;

/// Ceiling on predicate evaluations per shrink. Each evaluation replays
/// a full scenario in the swarm, so the cap keeps a worst-case shrink in
/// the same cost band as a few dozen ordinary seeds.
const MAX_ATTEMPTS: usize = 256;

/// A shrunk failing scenario and how much work finding it took.
#[derive(Debug, Clone, PartialEq)]
pub struct Shrunk {
    pub trace: FailureTrace,
    pub schedule: ChaosSchedule,
    /// Predicate evaluations spent.
    pub attempts: usize,
}

fn without_trace_event(trace: &FailureTrace, drop: usize) -> FailureTrace {
    let mut out = FailureTrace::new();
    for (i, e) in trace.events().iter().enumerate() {
        if i != drop {
            out.push(e.at, e.nodes.clone());
        }
    }
    out
}

fn with_nodes_halved(trace: &FailureTrace, at_idx: usize, first_half: bool) -> FailureTrace {
    let mut out = FailureTrace::new();
    for (i, e) in trace.events().iter().enumerate() {
        if i == at_idx {
            let mid = e.nodes.len() / 2;
            let kept = if first_half {
                e.nodes[..mid].to_vec()
            } else {
                e.nodes[mid..].to_vec()
            };
            out.push(e.at, kept);
        } else {
            out.push(e.at, e.nodes.clone());
        }
    }
    out
}

fn without_schedule_event(schedule: &ChaosSchedule, drop: usize) -> ChaosSchedule {
    ChaosSchedule::from_events(
        schedule
            .events()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, e)| e.clone()),
    )
}

/// Greedily shrinks a failing pair. `still_fails` must return `true` for
/// the input pair (the caller established the failure); the result is
/// the smallest pair the moves above reach that still fails.
pub fn shrink<F>(trace: &FailureTrace, schedule: &ChaosSchedule, mut still_fails: F) -> Shrunk
where
    F: FnMut(&FailureTrace, &ChaosSchedule) -> bool,
{
    let mut best_trace = trace.clone();
    let mut best_schedule = schedule.clone();
    let mut attempts = 0usize;
    let mut try_candidate = |t: &FailureTrace, s: &ChaosSchedule, attempts: &mut usize| -> bool {
        if *attempts >= MAX_ATTEMPTS {
            return false;
        }
        *attempts += 1;
        still_fails(t, s)
    };

    loop {
        let mut progressed = false;

        // Move 1: drop schedule events, highest index first so earlier
        // indices stay valid after a removal.
        let mut i = best_schedule.len();
        while i > 0 {
            i -= 1;
            let candidate = without_schedule_event(&best_schedule, i);
            if try_candidate(&best_trace, &candidate, &mut attempts) {
                best_schedule = candidate;
                progressed = true;
            }
        }

        // Move 2: drop whole kill events.
        let mut i = best_trace.len();
        while i > 0 {
            i -= 1;
            let candidate = without_trace_event(&best_trace, i);
            if try_candidate(&candidate, &best_schedule, &mut attempts) {
                best_trace = candidate;
                progressed = true;
            }
        }

        // Move 3: halve multi-node kill events.
        let mut i = best_trace.len();
        while i > 0 {
            i -= 1;
            if best_trace.events()[i].nodes.len() < 2 {
                continue;
            }
            for first_half in [true, false] {
                let candidate = with_nodes_halved(&best_trace, i, first_half);
                if try_candidate(&candidate, &best_schedule, &mut attempts) {
                    best_trace = candidate;
                    progressed = true;
                    break;
                }
            }
        }

        if !progressed || attempts >= MAX_ATTEMPTS {
            break;
        }
    }

    Shrunk {
        trace: best_trace,
        schedule: best_schedule,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_engine::{ChaosKind, ChaosSpec};
    use ppa_sim::SimTime;

    fn big_trace() -> FailureTrace {
        let mut t = FailureTrace::new();
        t.push(SimTime::from_secs(10), vec![0, 1, 2, 3]);
        t.push(SimTime::from_secs(20), vec![4, 5]);
        t.push(SimTime::from_secs(30), vec![6]);
        t
    }

    fn big_schedule() -> ChaosSchedule {
        ChaosSchedule::from_events([
            ChaosSpec {
                at: SimTime::from_secs(5),
                kind: ChaosKind::HeartbeatDuplicate,
            },
            ChaosSpec {
                at: SimTime::from_secs(15),
                kind: ChaosKind::HeartbeatDrop { scans: 2 },
            },
            ChaosSpec {
                at: SimTime::from_secs(25),
                kind: ChaosKind::RestoreVoid { task: 1 },
            },
        ])
    }

    /// The failure depends only on node 5 dying: the shrinker must strip
    /// everything else.
    #[test]
    fn shrinks_to_the_single_culprit_kill() {
        let shrunk = shrink(&big_trace(), &big_schedule(), |t, _| {
            t.events().iter().any(|e| e.nodes.contains(&5))
        });
        assert_eq!(shrunk.trace.len(), 1);
        assert_eq!(shrunk.trace.events()[0].nodes, vec![5]);
        assert!(shrunk.schedule.is_empty(), "schedule fully stripped");
        assert!(shrunk.attempts <= MAX_ATTEMPTS);
    }

    /// The failure needs the RestoreVoid *and* at least one kill: both
    /// survive, everything else goes.
    #[test]
    fn keeps_a_jointly_necessary_pair() {
        let shrunk = shrink(&big_trace(), &big_schedule(), |t, s| {
            let void = s
                .events()
                .iter()
                .any(|e| matches!(e.kind, ChaosKind::RestoreVoid { .. }));
            void && !t.is_empty()
        });
        assert_eq!(shrunk.schedule.len(), 1);
        assert!(matches!(
            shrunk.schedule.events()[0].kind,
            ChaosKind::RestoreVoid { .. }
        ));
        assert_eq!(shrunk.trace.len(), 1);
        assert_eq!(
            shrunk.trace.events()[0].nodes.len(),
            1,
            "the surviving kill is halved down to one node"
        );
    }

    /// Shrinking preserves the failure: the returned pair still fails,
    /// and is no larger than the input (the shrinker's core property).
    #[test]
    fn result_still_fails_and_never_grows() {
        let trace = big_trace();
        let schedule = big_schedule();
        let pred = |t: &FailureTrace, _: &ChaosSchedule| {
            t.events().iter().map(|e| e.nodes.len()).sum::<usize>() >= 2
        };
        let shrunk = shrink(&trace, &schedule, pred);
        assert!(pred(&shrunk.trace, &shrunk.schedule), "still fails");
        assert!(shrunk.trace.len() <= trace.len());
        assert!(shrunk.schedule.len() <= schedule.len());
        let nodes = |t: &FailureTrace| t.events().iter().map(|e| e.nodes.len()).sum::<usize>();
        assert!(nodes(&shrunk.trace) <= nodes(&trace));
        assert_eq!(nodes(&shrunk.trace), 2, "minimal under the predicate");
    }
}
