//! [`ChaosFeed`]: a [`FaultFeed`] composed with a seeded chaos adversary.
//!
//! The feed owns three responsibilities the swarm runner must not
//! improvise per-scenario:
//!
//! 1. **Base failures** — any combination of explicit specs, domain
//!    kills, replayable traces and generative [`FailureProcess`]es,
//!    delegated to the engine's own [`FaultFeed`] resolution.
//! 2. **Mid-recovery re-kills** — extra node deaths drawn a detection
//!    interval or two after a base wave, aimed at catching the engine
//!    while outages are still being worked (the re-arm path PR 5 built).
//! 3. **Buggify schedule** — seeded [`ChaosSpec`] draws (heartbeat
//!    drops/delays/duplicates, restore stalls/voids) over the run's
//!    horizon.
//!
//! Every kill candidate — base and re-kill alike — passes the
//! [`can_kill`] guard before entering the resolved trace: a kill that
//! would take down **both copies of a task's exactly-once state**
//! (its primary and its standby) or push the dead fraction of the
//! cluster past the configured ceiling is suppressed and counted, never
//! silently mutated. The swarm can therefore assert "no lost
//! exactly-once state" as an invariant instead of a hope.

use crate::schedule::ChaosSchedule;
use ppa_engine::{
    ChaosKind, ChaosSpec, EngineError, FailureSpec, FailureTrace, FaultFeed, Placement,
};
use ppa_faults::FailureProcess;
use ppa_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Tuning knobs of the chaos adversary. All draws come from one
/// [`StdRng`] seeded with `seed`, so a config + placement + horizon
/// triple resolves to exactly one `(trace, schedule)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the adversary's RNG stream (independent of the engine's
    /// workload seed).
    pub seed: u64,
    /// Number of buggify events to draw over the horizon.
    pub buggify: usize,
    /// Number of mid-recovery re-kill attempts, each anchored shortly
    /// after a base failure wave.
    pub rekills: usize,
    /// Ceiling on the fraction of cluster nodes the resolved trace may
    /// leave dead ([`can_kill`]'s budget rule).
    pub max_dead_frac: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            buggify: 3,
            rekills: 1,
            max_dead_frac: 0.4,
        }
    }
}

/// The fully resolved chaos scenario: what actually gets injected.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedChaos {
    /// Guarded, normalized node-kill trace (every event kills only
    /// still-alive nodes — replaying it reproduces the run exactly).
    pub trace: FailureTrace,
    /// The buggify schedule.
    pub schedule: ChaosSchedule,
    /// Kill candidates the [`can_kill`] guard suppressed.
    pub suppressed_kills: usize,
}

/// Whether killing `node` on top of `dead` keeps the run recoverable:
/// the dead set stays within `max_dead` nodes, and no task loses both
/// its primary and its standby (the last copy of its exactly-once
/// state). Nodes never revive in the simulation, so a conservative
/// running dead set is exact.
pub fn can_kill(
    node: usize,
    dead: &BTreeSet<usize>,
    placement: &Placement,
    max_dead: usize,
) -> bool {
    if dead.len() + 1 > max_dead {
        return false;
    }
    let paired_dead = |t: usize| -> bool {
        let (p, s) = (placement.primary[t], placement.standby[t]);
        (p == node && dead.contains(&s)) || (s == node && dead.contains(&p))
    };
    !(0..placement.primary.len()).any(paired_dead)
}

/// A [`FaultFeed`] composed with a seeded chaos adversary. Builder
/// methods mirror the inner feed's; [`ChaosFeed::resolve`] adds the
/// re-kill draws, the guard pass and the buggify schedule.
pub struct ChaosFeed {
    faults: FaultFeed,
    config: ChaosConfig,
}

impl ChaosFeed {
    /// A chaos feed with no base failures yet.
    pub fn new(config: ChaosConfig) -> Self {
        ChaosFeed {
            faults: FaultFeed::new(),
            config,
        }
    }

    /// Wraps an already-built base feed.
    pub fn from_faults(faults: FaultFeed, config: ChaosConfig) -> Self {
        ChaosFeed { faults, config }
    }

    /// Adds one explicit kill event to the base feed.
    pub fn with_spec(mut self, spec: FailureSpec) -> Self {
        self.faults = self.faults.with_spec(spec);
        self
    }

    /// Adds a replayable trace to the base feed.
    pub fn with_trace(mut self, trace: FailureTrace) -> Self {
        self.faults = self.faults.with_trace(trace);
        self
    }

    /// Adds a live generative failure process to the base feed.
    pub fn with_process(
        mut self,
        process: Box<dyn FailureProcess>,
        start: SimTime,
        horizon: SimDuration,
        seed: u64,
    ) -> Self {
        self.faults = self.faults.with_process(process, start, horizon, seed);
        self
    }

    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Resolves the composed scenario against a placement and a run
    /// horizon:
    ///
    /// 1. the base feed resolves through [`FaultFeed::resolve`];
    /// 2. base events past the horizon are rejected with
    ///    [`EngineError::EventPastHorizon`] — a kill that can never fire
    ///    is a scenario bug, not dead weight to carry silently;
    /// 3. seeded re-kills are drawn, anchored after base waves;
    /// 4. every kill candidate walks the [`can_kill`] guard in time
    ///    order (suppressions counted, already-dead nodes dropped);
    /// 5. the buggify schedule is drawn over `[1s, horizon)`.
    pub fn resolve(
        &self,
        placement: &Placement,
        horizon: SimTime,
    ) -> Result<ResolvedChaos, EngineError> {
        let base = self.faults.resolve(placement)?;
        for e in base.events() {
            if e.at > horizon {
                return Err(EngineError::EventPastHorizon { at: e.at, horizon });
            }
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let n_nodes = placement.n_nodes();

        // Re-kill candidates: each picks a base wave and a node, landing
        // 6–20 s after the wave — past the default detection interval,
        // so the kill tends to catch a recovery in flight.
        let mut candidates: Vec<(SimTime, Vec<usize>)> = base
            .events()
            .iter()
            .map(|e| (e.at, e.nodes.clone()))
            .collect();
        if !base.is_empty() {
            for _ in 0..self.config.rekills {
                let anchor = base.events()[rng.gen_range(0..base.len())].at;
                let delay = SimDuration::from_micros(rng.gen_range(6_000_000..=20_000_000u64));
                let node = rng.gen_range(0..n_nodes);
                let at = anchor + delay;
                if at <= horizon {
                    candidates.push((at, vec![node]));
                }
            }
        }
        candidates.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));

        // The guard pass: walk candidates in time order with a running
        // dead set. `max_dead` is floored but never below 1 so a
        // minimal scenario can still kill something.
        let max_dead = ((self.config.max_dead_frac * n_nodes as f64).floor() as usize).max(1);
        let mut dead: BTreeSet<usize> = BTreeSet::new();
        let mut suppressed = 0usize;
        let mut trace = FailureTrace::new();
        for (at, nodes) in candidates {
            let mut kept = Vec::new();
            for node in nodes {
                if dead.contains(&node) {
                    continue; // redundant, not suppressed
                }
                if can_kill(node, &dead, placement, max_dead) {
                    dead.insert(node);
                    kept.push(node);
                } else {
                    suppressed += 1;
                }
            }
            trace.push(at, kept);
        }

        // The buggify schedule, over [1 s, horizon). Tasks are drawn
        // from the placement's primary map — the same task universe the
        // engine validates `inject_chaos` against.
        let mut schedule = ChaosSchedule::new();
        let n_tasks = placement.primary.len();
        let horizon_us = horizon.as_micros();
        if horizon_us > 1_000_000 && n_tasks > 0 {
            for _ in 0..self.config.buggify {
                let at = SimTime::from_micros(rng.gen_range(1_000_000..horizon_us));
                let kind = match rng.gen_range(0..5u32) {
                    0 => ChaosKind::HeartbeatDrop {
                        scans: rng.gen_range(1..=3u32),
                    },
                    1 => ChaosKind::HeartbeatDelay {
                        by: SimDuration::from_micros(rng.gen_range(1_000_000..=7_000_000u64)),
                    },
                    2 => ChaosKind::HeartbeatDuplicate,
                    3 => ChaosKind::RestoreStall {
                        task: rng.gen_range(0..n_tasks),
                        by: SimDuration::from_micros(rng.gen_range(1_000_000..=10_000_000u64)),
                    },
                    _ => ChaosKind::RestoreVoid {
                        task: rng.gen_range(0..n_tasks),
                    },
                };
                schedule.push(ChaosSpec { at, kind });
            }
        }

        Ok(ResolvedChaos {
            trace,
            schedule,
            suppressed_kills: suppressed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_core::model::{OperatorSpec, Partitioning, TaskGraph, TopologyBuilder};
    use ppa_faults::{DomainBurstProcess, FaultDomainTree};
    use std::error::Error;

    type TestResult = Result<(), Box<dyn Error>>;

    fn placement() -> Result<Placement, Box<dyn Error>> {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 2, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        b.connect(s, m, Partitioning::OneToOne)?;
        let graph = TaskGraph::new(b.build()?);
        let nodes: Vec<usize> = (0..8).collect();
        Ok(Placement::round_robin(&graph, 4, 4)?
            .with_fault_domains(FaultDomainTree::racks(&nodes, 2))?)
    }

    #[test]
    fn resolution_is_deterministic() -> TestResult {
        let p = placement()?;
        let feed = || {
            ChaosFeed::new(ChaosConfig {
                seed: 11,
                buggify: 4,
                rekills: 2,
                max_dead_frac: 0.5,
            })
            .with_process(
                Box::new(DomainBurstProcess {
                    level: 1,
                    bursts: 1,
                    fraction: 1.0,
                }),
                SimTime::from_secs(20),
                SimDuration::from_secs(20),
                7,
            )
        };
        let horizon = SimTime::from_secs(60);
        let a = feed().resolve(&p, horizon)?;
        let b = feed().resolve(&p, horizon)?;
        assert_eq!(a, b);
        assert!(!a.schedule.is_empty());
        Ok(())
    }

    #[test]
    fn zero_chaos_resolves_like_the_plain_feed() -> TestResult {
        let p = placement()?;
        let spec = FailureSpec {
            at: SimTime::from_secs(30),
            nodes: vec![1],
        };
        let quiet = ChaosConfig {
            seed: 3,
            buggify: 0,
            rekills: 0,
            max_dead_frac: 1.0,
        };
        let chaos = ChaosFeed::new(quiet).with_spec(spec.clone());
        let resolved = chaos.resolve(&p, SimTime::from_secs(60))?;
        let plain = FaultFeed::new().with_spec(spec).resolve(&p)?;
        assert_eq!(resolved.trace, plain, "no adversary ⇒ the base trace");
        assert!(resolved.schedule.is_empty());
        assert_eq!(resolved.suppressed_kills, 0);
        Ok(())
    }

    #[test]
    fn base_events_past_horizon_are_typed_errors() -> TestResult {
        let p = placement()?;
        let feed = ChaosFeed::new(ChaosConfig::default()).with_spec(FailureSpec {
            at: SimTime::from_secs(95),
            nodes: vec![0],
        });
        let horizon = SimTime::from_secs(60);
        assert_eq!(
            feed.resolve(&p, horizon),
            Err(EngineError::EventPastHorizon {
                at: SimTime::from_secs(95),
                horizon
            })
        );
        Ok(())
    }

    #[test]
    fn guard_never_kills_both_copies_of_a_task() -> TestResult {
        let p = placement()?;
        // Ask for every node at once: the guard must keep at least one
        // copy of each task and respect the 50 % dead budget.
        let all: Vec<usize> = (0..p.n_nodes()).collect();
        let feed = ChaosFeed::new(ChaosConfig {
            seed: 5,
            buggify: 0,
            rekills: 0,
            max_dead_frac: 0.5,
        })
        .with_spec(FailureSpec {
            at: SimTime::from_secs(30),
            nodes: all,
        });
        let resolved = feed.resolve(&p, SimTime::from_secs(60))?;
        let dead: BTreeSet<usize> = resolved.trace.killed_nodes().into_iter().collect();
        assert!(resolved.suppressed_kills > 0);
        assert!(dead.len() <= p.n_nodes() / 2, "dead budget respected");
        for t in 0..p.primary.len() {
            assert!(
                !(dead.contains(&p.primary[t]) && dead.contains(&p.standby[t])),
                "task {t} lost both copies"
            );
        }
        Ok(())
    }

    #[test]
    fn rekills_add_guarded_events_after_base_waves() -> TestResult {
        let p = placement()?;
        let base_at = SimTime::from_secs(20);
        let feed = ChaosFeed::new(ChaosConfig {
            seed: 9,
            buggify: 0,
            rekills: 8,
            max_dead_frac: 1.0,
        })
        .with_spec(FailureSpec {
            at: base_at,
            nodes: vec![0],
        });
        let resolved = feed.resolve(&p, SimTime::from_secs(60))?;
        // Some re-kill draws survive (duplicates of already-dead nodes
        // and pair-killing draws are dropped/suppressed).
        assert!(!resolved.trace.is_empty());
        for e in resolved.trace.events() {
            assert!(e.at >= base_at, "re-kills anchor after their wave");
        }
        Ok(())
    }
}
