//! # ppa-sim — deterministic discrete-event simulation kernel
//!
//! The PPA paper evaluates on a 36-node EC2 cluster; this workspace
//! substitutes a deterministic discrete-event simulation (README.md §Design notes).
//! This crate is the kernel: virtual time, a stable event queue, and a
//! scheduler that the stream engine (`ppa-engine`) drives.
//!
//! Determinism rules:
//! * virtual time is integer microseconds ([`SimTime`]);
//! * events firing at the same instant are delivered in scheduling order
//!   (a monotone sequence number breaks ties);
//! * all randomness comes from seeded RNGs owned by the caller.

pub mod event;
pub mod lane;
pub mod time;

pub use event::{EventQueue, Scheduler};
pub use lane::{group_lanes, Lane, ShardId, Span};
pub use time::{SimDuration, SimTime};
