//! The event queue and scheduler driving a simulation.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A stable priority queue of timed events: ordering is (time, sequence),
/// so simultaneous events fire in scheduling order — the keystone of
/// deterministic replay. Payloads live in a slot pool so `E` needs no
/// ordering traits and pops avoid moving large events through the heap.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<EntryKey>>,
    // Events stored aside so `E` needs no ordering traits.
    slots: Vec<Option<(SimTime, E)>>,
    free: Vec<usize>,
    seq: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EntryKey {
    at: SimTime,
    seq: u64,
    slot: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::default()
    }

    /// A queue pre-sized for about `capacity` simultaneously pending
    /// events, so steady-state simulations never grow the heap or the
    /// slot pool mid-run.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Some((at, event));
                s
            }
            None => {
                self.slots.push(Some((at, event)));
                self.slots.len() - 1
            }
        };
        let key = EntryKey {
            at,
            seq: self.seq,
            slot,
        };
        self.seq += 1;
        self.heap.push(Reverse(key));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(key) = self.heap.pop()?;
        let (at, event) = self.slots[key.slot].take().expect("slot must be filled");
        self.free.push(key.slot);
        debug_assert_eq!(at, key.at);
        debug_assert!(
            self.free.len() <= self.slots.len(),
            "free-list ({}) exceeds slot arena ({})",
            self.free.len(),
            self.slots.len()
        );
        Some((at, event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(k)| k.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A scheduler: an event queue plus the current virtual clock.
///
/// The owning simulation loop repeatedly calls [`Scheduler::next`], which
/// advances the clock to the fired event's timestamp. Scheduling into the
/// past is a logic error and panics in debug builds.
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    now: SimTime,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
        }
    }
}

impl<E> Scheduler<E> {
    pub fn new() -> Self {
        Self::default()
    }

    /// A scheduler whose queue is pre-sized for about `capacity`
    /// simultaneously pending events (one per task is the engine's
    /// steady state).
    pub fn with_capacity(capacity: usize) -> Self {
        Scheduler {
            queue: EventQueue::with_capacity(capacity),
            now: SimTime::ZERO,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Time of the earliest pending event, without firing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Schedules an event at an absolute instant (must not be in the past).
    pub fn at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        self.queue.schedule(at.max(self.now), event);
    }

    /// Schedules an event `delay` from now.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.queue.schedule(self.now + delay, event);
    }

    /// Fires the next event, advancing the clock. Returns `None` when the
    /// queue is drained.
    ///
    /// Deliberately named like `Iterator::next`; the scheduler is not an
    /// iterator because callers interleave `schedule` with draining.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let (at, event) = self.queue.pop()?;
        debug_assert!(at >= self.now);
        self.now = at;
        Some((at, event))
    }

    /// Fires the next event only if it is at or before `deadline`.
    pub fn next_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.queue.peek_time() {
            Some(t) if t <= deadline => self.next(),
            _ => None,
        }
    }

    /// Pops a same-instant span of shard-classified events for parallel
    /// lane execution (see [`crate::lane`]).
    ///
    /// Starting from the earliest pending instant `t` (if `t <= deadline`),
    /// events are popped in global `(time, seq)` order while they stay at
    /// `t` and `classify` assigns them a shard. The first same-instant
    /// event `classify` declines (returning `None`) is popped too and
    /// carried in [`crate::lane::Span::carried`]; the caller must run it
    /// sequentially *after* the span, which preserves the global order
    /// because span handlers may only schedule strictly beyond `t`.
    pub fn pop_span(
        &mut self,
        deadline: SimTime,
        mut classify: impl FnMut(&E) -> Option<crate::lane::ShardId>,
    ) -> Option<crate::lane::Span<E>> {
        let at = self.peek_time().filter(|&t| t <= deadline)?;
        let mut span = crate::lane::Span {
            at,
            events: Vec::new(),
            carried: None,
        };
        while self.peek_time() == Some(at) {
            let Some((_, event)) = self.next() else { break };
            match classify(&event) {
                Some(shard) => span.events.push((shard, event)),
                None => {
                    span.carried = Some(event);
                    break;
                }
            }
        }
        Some(span)
    }

    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn slots_are_reused() {
        let mut q = EventQueue::new();
        for round in 0..10 {
            for i in 0..5 {
                q.schedule(SimTime::from_secs(round * 5 + i), i);
            }
            while q.pop().is_some() {}
        }
        assert!(
            q.slots.len() <= 5,
            "slot pool must not grow: {}",
            q.slots.len()
        );
    }

    #[test]
    fn scheduler_advances_clock() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.after(SimDuration::from_secs(5), "later");
        s.at(SimTime::from_secs(2), "sooner");
        let (t1, e1) = s.next().unwrap();
        assert_eq!((t1, e1), (SimTime::from_secs(2), "sooner"));
        assert_eq!(s.now(), SimTime::from_secs(2));
        let (t2, e2) = s.next().unwrap();
        assert_eq!((t2, e2), (SimTime::from_secs(5), "later"));
        assert!(s.next().is_none());
        assert!(s.is_idle());
    }

    #[test]
    fn next_until_respects_deadline() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.at(SimTime::from_secs(10), "x");
        assert!(s.next_until(SimTime::from_secs(5)).is_none());
        assert_eq!(s.now(), SimTime::ZERO, "clock untouched when nothing fires");
        assert!(s.next_until(SimTime::from_secs(10)).is_some());
    }

    #[test]
    fn interleaved_scheduling_keeps_determinism() {
        // Schedule from within the drain loop, mimicking a simulation.
        let mut s: Scheduler<u32> = Scheduler::new();
        s.at(SimTime::from_secs(1), 1);
        let mut fired = Vec::new();
        while let Some((t, e)) = s.next() {
            fired.push(e);
            if e < 5 {
                s.at(t + SimDuration::from_secs(1), e + 1);
                s.at(t + SimDuration::from_secs(1), e + 100);
            }
        }
        assert_eq!(fired, vec![1, 2, 101, 3, 102, 4, 103, 5, 104]);
    }
}
