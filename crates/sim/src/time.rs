//! Virtual time: instants and durations in integer microseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// A sentinel far in the future (used for "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite());
        SimTime((s * 1e6).round() as u64)
    }

    pub const fn as_micros(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant (saturating at zero).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The next multiple of `period` at or after this instant.
    /// `SimTime::from_secs(7).round_up(SimDuration::from_secs(5))` is t=10s.
    pub fn round_up(self, period: SimDuration) -> SimTime {
        assert!(period.0 > 0, "period must be positive");
        SimTime(self.0.div_ceil(period.0) * period.0)
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite());
        SimDuration((s * 1e6).round() as u64)
    }

    pub const fn as_micros(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a non-negative factor.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0 && factor.is_finite());
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert!((SimTime::from_secs_f64(1.25).as_secs_f64() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimDuration::from_secs(20), SimTime::ZERO, "saturating");
        assert_eq!(t.since(SimTime::from_secs(12)), SimDuration::from_secs(3));
        assert_eq!(SimTime::from_secs(12).since(t), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs(4) * 3, SimDuration::from_secs(12));
        assert_eq!(SimDuration::from_secs(12) / 4, SimDuration::from_secs(3));
    }

    #[test]
    fn round_up_to_period() {
        let p = SimDuration::from_secs(5);
        assert_eq!(SimTime::from_secs(7).round_up(p), SimTime::from_secs(10));
        assert_eq!(SimTime::from_secs(10).round_up(p), SimTime::from_secs(10));
        assert_eq!(SimTime::ZERO.round_up(p), SimTime::ZERO);
    }

    #[test]
    fn mul_f64_scales() {
        assert_eq!(
            SimDuration::from_secs(10).mul_f64(0.25),
            SimDuration::from_micros(2_500_000)
        );
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
    }
}
