//! Same-instant spans and per-shard lanes: the deterministic-merge
//! building blocks for intra-run parallelism.
//!
//! A simulation that wants to execute independent same-instant events in
//! parallel pops a [`Span`] via [`crate::Scheduler::pop_span`], groups it
//! into per-shard [`Lane`]s with [`group_lanes`], runs each lane's events
//! in order (lanes may run concurrently because the caller guarantees
//! distinct shards share no mutable state), and then applies every event's
//! side effects back in the span's global order. The canonical sequencing
//! key is `(time, shard, seq)`: events of one shard keep their relative
//! `(time, seq)` order inside the lane, and the cross-shard merge replays
//! effects by ascending global sequence — so the merged execution is
//! byte-identical to a single-threaded drain at any shard count.

use crate::time::SimTime;
use std::collections::BTreeMap;

/// Identifies a lane: the unit of mutable state that must stay
/// single-threaded (the engine uses the worker-node index).
pub type ShardId = usize;

/// A maximal run of same-instant events eligible for lane execution, in
/// global `(time, seq)` pop order, plus at most one trailing ineligible
/// event that must run sequentially after the span.
#[derive(Debug)]
pub struct Span<E> {
    /// The instant every event in the span fires at.
    pub at: SimTime,
    /// `(shard, event)` pairs in global scheduling order.
    pub events: Vec<(ShardId, E)>,
    /// The first same-instant event the classifier declined, already
    /// popped; the caller runs it after the span's effects are applied.
    pub carried: Option<E>,
}

impl<E> Span<E> {
    /// True when nothing was popped into the parallel portion.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// One shard's slice of a span: event payloads tagged with their global
/// span index, in lane-local (= global) order.
#[derive(Debug)]
pub struct Lane<E> {
    pub shard: ShardId,
    /// `(global span index, event)` in ascending index order.
    pub events: Vec<(usize, E)>,
}

/// Groups a span's events into per-shard lanes, preserving each event's
/// global index so per-event results can be merged back in span order.
/// Lanes appear in shard first-appearance order, which only affects work
/// distribution — never results, which are merged by global index.
pub fn group_lanes<E>(events: Vec<(ShardId, E)>) -> Vec<Lane<E>> {
    let mut lanes: Vec<Lane<E>> = Vec::new();
    let mut index: BTreeMap<ShardId, usize> = BTreeMap::new();
    for (global, (shard, event)) in events.into_iter().enumerate() {
        let lane = *index.entry(shard).or_insert_with(|| {
            lanes.push(Lane {
                shard,
                events: Vec::new(),
            });
            lanes.len() - 1
        });
        lanes[lane].events.push((global, event));
    }
    lanes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDuration, SimTime};
    use crate::Scheduler;

    /// Deterministic splitmix64 — the tests' only randomness source.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Ev {
        shard: ShardId,
        id: u64,
        eligible: bool,
    }

    fn random_schedule(seed: u64, n: usize) -> Vec<(SimTime, Ev)> {
        let mut s = seed;
        (0..n as u64)
            .map(|id| {
                let at = SimTime::ZERO + SimDuration::from_micros(mix(&mut s) % 7);
                let ev = Ev {
                    shard: (mix(&mut s) % 5) as ShardId,
                    id,
                    eligible: !mix(&mut s).is_multiple_of(4),
                };
                (at, ev)
            })
            .collect()
    }

    fn drain_spans(events: &[(SimTime, Ev)]) -> (Vec<Ev>, Vec<Span<Ev>>) {
        let mut sched: Scheduler<Ev> = Scheduler::new();
        for (at, ev) in events {
            sched.at(*at, ev.clone());
        }
        let mut merged = Vec::new();
        let mut spans = Vec::new();
        while let Some(span) =
            sched.pop_span(SimTime::from_secs(1), |e| e.eligible.then_some(e.shard))
        {
            merged.extend(span.events.iter().map(|(_, e)| e.clone()));
            merged.extend(span.carried.clone());
            spans.push(span);
        }
        (merged, spans)
    }

    #[test]
    fn span_drain_equals_sequential_drain_over_random_interleavings() {
        for seed in 0..50 {
            let events = random_schedule(seed, 64);
            // Sequential reference order.
            let mut sched: Scheduler<Ev> = Scheduler::new();
            for (at, ev) in &events {
                sched.at(*at, ev.clone());
            }
            let sequential: Vec<Ev> = std::iter::from_fn(|| sched.next().map(|(_, e)| e)).collect();
            let (merged, spans) = drain_spans(&events);
            assert_eq!(merged, sequential, "seed {seed}");
            // Spans are time-ordered and internally same-instant.
            let mut last = SimTime::ZERO;
            for span in &spans {
                assert!(span.at >= last, "seed {seed}: spans out of order");
                last = span.at;
                assert!(
                    span.events.iter().all(|(_, e)| e.eligible),
                    "seed {seed}: ineligible event inside a span"
                );
                assert!(
                    span.carried.iter().all(|e| !e.eligible),
                    "seed {seed}: eligible event carried"
                );
            }
        }
    }

    #[test]
    fn lane_merge_preserves_global_order() {
        for seed in 50..100 {
            let events = random_schedule(seed, 64);
            let (_, spans) = drain_spans(&events);
            for span in spans {
                let expected: Vec<Ev> = span.events.iter().map(|(_, e)| e.clone()).collect();
                let lanes = group_lanes(span.events);
                // Within a lane: single shard, ascending global index.
                for lane in &lanes {
                    assert!(lane.events.iter().all(|(_, e)| e.shard == lane.shard));
                    assert!(lane.events.windows(2).all(|w| w[0].0 < w[1].0));
                }
                // Merging lanes by global index reproduces the span order.
                let mut merged: Vec<(usize, Ev)> =
                    lanes.into_iter().flat_map(|l| l.events).collect();
                merged.sort_by_key(|&(i, _)| i);
                let merged: Vec<Ev> = merged.into_iter().map(|(_, e)| e).collect();
                assert_eq!(merged, expected, "seed {seed}");
            }
        }
    }

    #[test]
    fn pop_span_respects_deadline_and_carries_first_ineligible(
    ) -> Result<(), Box<dyn std::error::Error>> {
        let mut sched: Scheduler<Ev> = Scheduler::new();
        let t = SimTime::from_secs(2);
        let ev = |shard, id, eligible| Ev {
            shard,
            id,
            eligible,
        };
        sched.at(t, ev(0, 0, true));
        sched.at(t, ev(1, 1, false));
        sched.at(t, ev(2, 2, true));
        assert!(
            sched
                .pop_span(SimTime::from_secs(1), |e| e.eligible.then_some(e.shard))
                .is_none(),
            "nothing fires before the deadline"
        );
        let span = sched
            .pop_span(SimTime::from_secs(5), |e| e.eligible.then_some(e.shard))
            .ok_or("span at t=2")?;
        assert_eq!(span.at, t);
        assert_eq!(span.events.len(), 1, "span stops at the ineligible event");
        assert_eq!(span.carried.as_ref().map(|e| e.id), Some(1));
        // The remainder of the instant forms the next span.
        let rest = sched
            .pop_span(SimTime::from_secs(5), |e| e.eligible.then_some(e.shard))
            .ok_or("rest of the instant")?;
        assert_eq!(rest.events.len(), 1);
        assert_eq!(rest.events[0].1.id, 2);
        assert!(rest.carried.is_none());
        assert!(sched.is_idle());
        Ok(())
    }

    #[test]
    fn queue_pre_sizing_does_not_change_order() {
        let mut a: Scheduler<u64> = Scheduler::new();
        let mut b: Scheduler<u64> = Scheduler::with_capacity(128);
        let mut s = 7;
        for id in 0..64 {
            let at = SimTime::ZERO + SimDuration::from_micros(mix(&mut s) % 9);
            a.at(at, id);
            b.at(at, id);
        }
        let da: Vec<u64> = std::iter::from_fn(|| a.next().map(|(_, e)| e)).collect();
        let db: Vec<u64> = std::iter::from_fn(|| b.next().map(|(_, e)| e)).collect();
        assert_eq!(da, db);
    }
}
