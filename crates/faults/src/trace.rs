//! Failure traces: an ordered, normalized sequence of failure events with a
//! round-trip text serialization.
//!
//! A [`FailureTrace`] is the common currency between the generative
//! processes ([`crate::process`]), the engine runtime
//! (`Simulation::inject_trace`) and the repro harness: scenarios can be
//! generated, saved to disk, diffed, and replayed byte-identically. The
//! text format is line-oriented so `diff` on two traces is meaningful.

use crate::domain::NodeId;
use ppa_sim::SimTime;
use std::fmt;

/// One failure event: the listed nodes die at `at`. The engine-level
/// mirror of `ppa_engine::FailureSpec` (this crate sits below the engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureEvent {
    pub at: SimTime,
    /// Sorted, deduplicated.
    pub nodes: Vec<NodeId>,
}

/// An ordered failure scenario: events sorted by time (ties by node list),
/// each event's nodes sorted and deduplicated, empty events dropped.
///
/// Normalization makes equality, serialization and diffing canonical: two
/// traces describing the same failures are byte-identical in
/// [`FailureTrace::to_text`] no matter how they were built.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FailureTrace {
    events: Vec<FailureEvent>,
}

/// Error from [`FailureTrace::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// The first non-comment line was not the `ppa-faults/1` header.
    MissingHeader,
    /// A malformed event line, with its 1-based line number.
    BadLine { line: usize, reason: String },
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::MissingHeader => {
                write!(f, "missing `{}` header", FailureTrace::FORMAT)
            }
            TraceParseError::BadLine { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

impl FailureTrace {
    /// Format tag written as the first line of every serialized trace.
    pub const FORMAT: &'static str = "ppa-faults/1";

    /// An empty trace (no failures).
    pub fn new() -> Self {
        FailureTrace::default()
    }

    /// A degenerate single-event trace — the shape every hand-picked kill
    /// set of the §VI-A experiments reduces to.
    pub fn once(at: SimTime, nodes: Vec<NodeId>) -> Self {
        let mut trace = FailureTrace::new();
        trace.push(at, nodes);
        trace
    }

    /// Builds a normalized trace from arbitrary events.
    pub fn from_events(events: impl IntoIterator<Item = FailureEvent>) -> Self {
        let mut trace = FailureTrace::new();
        for e in events {
            trace.push(e.at, e.nodes);
        }
        trace
    }

    /// Adds an event, keeping the trace normalized. Empty node lists are
    /// dropped; a duplicate (at, nodes) event is kept (the engine ignores
    /// re-kills of dead nodes, and keeping it preserves the generative
    /// process's output faithfully).
    pub fn push(&mut self, at: SimTime, mut nodes: Vec<NodeId>) {
        nodes.sort_unstable();
        nodes.dedup();
        if nodes.is_empty() {
            return;
        }
        let ev = FailureEvent { at, nodes };
        let pos = self
            .events
            .partition_point(|e| (e.at, &e.nodes) <= (ev.at, &ev.nodes));
        self.events.insert(pos, ev);
    }

    /// The normalized events, in time order.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The time of the first failure, if any.
    pub fn first_at(&self) -> Option<SimTime> {
        self.events.first().map(|e| e.at)
    }

    /// Union of every event's nodes, sorted and deduplicated.
    pub fn killed_nodes(&self) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = self
            .events
            .iter()
            .flat_map(|e| e.nodes.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Serializes the trace: a header line, then one `<at_µs> <n,n,n>` line
    /// per event. Canonical — equal traces serialize byte-identically.
    pub fn to_text(&self) -> String {
        let mut out = String::from(Self::FORMAT);
        out.push('\n');
        for e in &self.events {
            out.push_str(&e.at.as_micros().to_string());
            out.push(' ');
            let nodes: Vec<String> = e.nodes.iter().map(|n| n.to_string()).collect();
            out.push_str(&nodes.join(","));
            out.push('\n');
        }
        out
    }

    /// Parses a trace serialized by [`FailureTrace::to_text`]. Blank lines
    /// and `#` comments are ignored; events need not be pre-sorted.
    pub fn from_text(text: &str) -> Result<Self, TraceParseError> {
        let mut trace = FailureTrace::new();
        let mut saw_header = false;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if !saw_header {
                if line != Self::FORMAT {
                    return Err(TraceParseError::MissingHeader);
                }
                saw_header = true;
                continue;
            }
            let (at_s, nodes_s) = line
                .split_once(' ')
                .ok_or_else(|| TraceParseError::BadLine {
                    line: i + 1,
                    reason: "expected `<at_µs> <node,node,...>`".into(),
                })?;
            let at = at_s.parse::<u64>().map_err(|_| TraceParseError::BadLine {
                line: i + 1,
                reason: format!("bad timestamp {at_s:?}"),
            })?;
            let mut nodes = Vec::new();
            for piece in nodes_s.split(',') {
                let piece = piece.trim();
                if piece.is_empty() {
                    continue;
                }
                nodes.push(
                    piece
                        .parse::<NodeId>()
                        .map_err(|_| TraceParseError::BadLine {
                            line: i + 1,
                            reason: format!("bad node id {piece:?}"),
                        })?,
                );
            }
            trace.push(SimTime::from_micros(at), nodes);
        }
        if !saw_header {
            // Covers the entirely blank document too: without the header a
            // trace is indistinguishable from a truncated file.
            return Err(TraceParseError::MissingHeader);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    type TestResult = Result<(), Box<dyn Error>>;

    #[test]
    fn push_normalizes() {
        let mut t = FailureTrace::new();
        t.push(SimTime::from_secs(40), vec![7, 4, 7, 5]);
        t.push(SimTime::from_secs(10), vec![2]);
        t.push(SimTime::from_secs(40), vec![]); // dropped
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].at, SimTime::from_secs(10));
        assert_eq!(t.events()[1].nodes, vec![4, 5, 7]);
        assert_eq!(t.killed_nodes(), vec![2, 4, 5, 7]);
        assert_eq!(t.first_at(), Some(SimTime::from_secs(10)));
    }

    #[test]
    fn construction_order_does_not_matter() {
        let mut a = FailureTrace::new();
        a.push(SimTime::from_secs(1), vec![1]);
        a.push(SimTime::from_secs(2), vec![2]);
        let mut b = FailureTrace::new();
        b.push(SimTime::from_secs(2), vec![2]);
        b.push(SimTime::from_secs(1), vec![1]);
        assert_eq!(a, b);
        assert_eq!(a.to_text(), b.to_text());
    }

    #[test]
    fn text_round_trips() -> TestResult {
        let mut t = FailureTrace::new();
        t.push(SimTime::from_secs(40), vec![4, 5, 6]);
        t.push(SimTime::from_micros(40_000_001), vec![9]);
        t.push(SimTime::from_secs(40), vec![4, 5, 6]); // duplicate kept
        let text = t.to_text();
        assert!(text.starts_with("ppa-faults/1\n"));
        let back = FailureTrace::from_text(&text)?;
        assert_eq!(back, t);
        assert_eq!(back.to_text(), text, "serialization is canonical");
        Ok(())
    }

    #[test]
    fn from_text_tolerates_comments_and_order() -> TestResult {
        let text = "# a scenario\nppa-faults/1\n\n50000000 9\n# mid comment\n40000000 4,5\n";
        let t = FailureTrace::from_text(text)?;
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].nodes, vec![4, 5]);
        Ok(())
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert_eq!(
            FailureTrace::from_text(""),
            Err(TraceParseError::MissingHeader)
        );
        assert_eq!(
            FailureTrace::from_text("40000000 4,5\n"),
            Err(TraceParseError::MissingHeader)
        );
        let bad_time = FailureTrace::from_text("ppa-faults/1\nxx 4\n");
        assert!(matches!(
            bad_time,
            Err(TraceParseError::BadLine { line: 2, .. })
        ));
        let bad_node = FailureTrace::from_text("ppa-faults/1\n1 4,q\n");
        assert!(matches!(bad_node, Err(TraceParseError::BadLine { .. })));
        assert!(format!("{}", bad_node.unwrap_err()).contains("line 2"));
    }

    #[test]
    fn once_matches_manual_single_event() {
        let t = FailureTrace::once(SimTime::from_secs(40), vec![6, 4, 5]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0].nodes, vec![4, 5, 6]);
    }
}
