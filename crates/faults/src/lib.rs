//! # ppa-faults — the correlated failure-model subsystem
//!
//! The paper's core premise is that failures in massively parallel stream
//! processing engines are *correlated*: nodes sharing a rack, a switch or a
//! power domain die together. This crate makes that premise a first-class,
//! reusable model instead of a hand-picked kill list per experiment:
//!
//! * [`FaultDomainTree`] ([`domain`]) — the cluster's physical containment
//!   hierarchy (node → rack → switch → power zone, arbitrary depth), with
//!   deterministic assignment of engine nodes to domains;
//! * [`FailureProcess`] ([`process`]) — generative failure processes over
//!   the hierarchy: independent Poisson-style baseline
//!   ([`IndependentProcess`]), domain bursts ([`DomainBurstProcess`]) and
//!   decaying cascades ([`CascadeProcess`]), all driven by the in-tree
//!   seeded RNG so a `(process, cluster, seed)` triple always yields the
//!   same scenario (a Weibull/bathtub per-node hazard, [`WeibullProcess`],
//!   covers the non-memoryless regimes cluster traces show);
//! * [`FailureTrace`] ([`trace`]) — the normalized, ordered event sequence
//!   those processes emit, with a canonical line-oriented text format
//!   (save, diff, replay), consumed by the engine runtime's
//!   `Simulation::inject_trace` and by the repro harness.
//!
//! This crate sits *below* `ppa-core` and `ppa-engine` in the dependency
//! order (it only needs virtual time and the RNG shim), which lets the
//! planners derive their correlated-failure-set input from a
//! [`FaultDomainTree`] and lets the engine replay [`FailureTrace`]s
//! without a dependency cycle.

pub mod domain;
pub mod process;
pub mod trace;

pub use domain::{DomainId, FaultDomainTree, NodeId};
pub use process::{
    CascadeProcess, DomainBurstProcess, FailureProcess, IndependentProcess, WeibullProcess,
};
pub use trace::{FailureEvent, FailureTrace, TraceParseError};
