//! Cluster fault domains: the physical containment hierarchy along which
//! failures correlate.
//!
//! A [`FaultDomainTree`] models a cluster as a rooted tree of *domains* —
//! power zone → switch → rack → node, or any other stack of levels, at
//! arbitrary depth. Engine nodes are assigned to leaf domains
//! deterministically, so the same cluster description always yields the
//! same node → domain mapping (the reproduction harness depends on this).
//!
//! Domains are what the generative failure processes in
//! [`crate::process`] draw from: a *burst* kills (a fraction of) the nodes
//! hosted under one domain, a *cascade* spreads from a domain to its
//! siblings. The paper's §VI-A correlated failure — "all worker nodes die
//! simultaneously" — is the degenerate tree whose root is the only domain.

/// Identifier of a simulated cluster node. Mirrors `ppa_engine::NodeId`
/// (this crate sits below the engine in the dependency order, so it
/// re-declares the alias instead of importing it).
pub type NodeId = usize;

/// Index of a domain inside its [`FaultDomainTree`] (root = 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub usize);

/// One domain of the hierarchy.
#[derive(Debug, Clone)]
struct Domain {
    /// Depth in the tree: root = 0.
    level: usize,
    parent: Option<DomainId>,
    children: Vec<DomainId>,
    /// Nodes assigned *directly* to this domain (leaves only).
    nodes: Vec<NodeId>,
}

/// A rooted containment hierarchy of fault domains with engine nodes
/// assigned to its leaves.
///
/// Construct with [`FaultDomainTree::regular`] (uniform fan-out per level)
/// or [`FaultDomainTree::racks`] (the common single-level case), or grow an
/// arbitrary shape with [`FaultDomainTree::new`] + [`FaultDomainTree::add_domain`]
/// + [`FaultDomainTree::assign`].
#[derive(Debug, Clone)]
pub struct FaultDomainTree {
    /// Human-readable name of each level, `level_names[0]` naming the root
    /// (conventionally `"cluster"`). Levels deeper than the named ones
    /// render as `"level<k>"`.
    level_names: Vec<String>,
    domains: Vec<Domain>,
}

impl FaultDomainTree {
    /// An empty tree holding only the root domain.
    pub fn new(level_names: &[&str]) -> Self {
        let names = if level_names.is_empty() {
            &["cluster"][..]
        } else {
            level_names
        };
        FaultDomainTree {
            level_names: names.iter().map(|s| s.to_string()).collect(),
            domains: vec![Domain {
                level: 0,
                parent: None,
                children: Vec::new(),
                nodes: Vec::new(),
            }],
        }
    }

    /// The root domain (the whole cluster).
    pub fn root(&self) -> DomainId {
        DomainId(0)
    }

    /// Adds a child domain under `parent` and returns its id.
    pub fn add_domain(&mut self, parent: DomainId) -> DomainId {
        assert!(parent.0 < self.domains.len(), "unknown parent domain");
        let id = DomainId(self.domains.len());
        let level = self.domains[parent.0].level + 1;
        self.domains.push(Domain {
            level,
            parent: Some(parent),
            children: Vec::new(),
            nodes: Vec::new(),
        });
        self.domains[parent.0].children.push(id);
        id
    }

    /// Assigns a node to a domain (typically a leaf). A node may be
    /// assigned at most once; assignment order is part of the cluster
    /// description and therefore deterministic.
    pub fn assign(&mut self, domain: DomainId, node: NodeId) {
        assert!(domain.0 < self.domains.len(), "unknown domain");
        assert!(
            !self.domains.iter().any(|d| d.nodes.contains(&node)),
            "node {node} assigned twice"
        );
        self.domains[domain.0].nodes.push(node);
    }

    /// A regular tree: `fanouts[k]` children under every level-`k` domain,
    /// with `nodes` dealt round-robin across the resulting leaves. Level
    /// `k + 1` is named `level_names[k + 1]` when provided.
    ///
    /// `regular(&["cluster", "rack"], &[4], nodes)` is 4 racks sharing the
    /// nodes; `regular(&["cluster", "zone", "rack"], &[2, 3], nodes)` is
    /// 2 power zones × 3 racks.
    pub fn regular(level_names: &[&str], fanouts: &[usize], nodes: &[NodeId]) -> Self {
        assert!(fanouts.iter().all(|&f| f > 0), "fanouts must be positive");
        let mut tree = FaultDomainTree::new(level_names);
        let mut frontier = vec![tree.root()];
        for &fanout in fanouts {
            let mut next = Vec::with_capacity(frontier.len() * fanout);
            for &parent in &frontier {
                for _ in 0..fanout {
                    next.push(tree.add_domain(parent));
                }
            }
            frontier = next;
        }
        for (i, &node) in nodes.iter().enumerate() {
            let leaf = frontier[i % frontier.len()];
            tree.assign(leaf, node);
        }
        tree
    }

    /// The common single-level case: `nodes` split into consecutive racks
    /// of `rack_size` (the last rack may be smaller). Consecutive grouping
    /// — not round-robin — so a rack burst kills a *contiguous* slice of
    /// the node range, matching how real placements co-locate neighbours.
    pub fn racks(nodes: &[NodeId], rack_size: usize) -> Self {
        assert!(rack_size > 0, "rack size must be positive");
        let mut tree = FaultDomainTree::new(&["cluster", "rack"]);
        for chunk in nodes.chunks(rack_size) {
            let rack = tree.add_domain(tree.root());
            for &node in chunk {
                tree.assign(rack, node);
            }
        }
        tree
    }

    /// Number of domains, including the root.
    pub fn n_domains(&self) -> usize {
        self.domains.len()
    }

    /// Depth of the deepest domain (root alone = 0).
    pub fn depth(&self) -> usize {
        self.domains.iter().map(|d| d.level).max().unwrap_or(0)
    }

    /// The name of a level (`"level<k>"` beyond the named prefix).
    pub fn level_name(&self, level: usize) -> String {
        self.level_names
            .get(level)
            .cloned()
            .unwrap_or_else(|| format!("level{level}"))
    }

    /// The level of a domain.
    pub fn level_of(&self, domain: DomainId) -> usize {
        self.domains[domain.0].level
    }

    /// The parent of a domain (`None` for the root).
    pub fn parent_of(&self, domain: DomainId) -> Option<DomainId> {
        self.domains[domain.0].parent
    }

    /// All domains at `level`, in creation order.
    pub fn domains_at_level(&self, level: usize) -> Vec<DomainId> {
        (0..self.domains.len())
            .filter(|&i| self.domains[i].level == level)
            .map(DomainId)
            .collect()
    }

    /// Every domain except the root, in creation order — the candidate
    /// correlated-failure units.
    pub fn proper_domains(&self) -> Vec<DomainId> {
        (1..self.domains.len()).map(DomainId).collect()
    }

    /// The children of a domain, in creation order.
    pub fn children_of(&self, domain: DomainId) -> Vec<DomainId> {
        self.domains[domain.0].children.clone()
    }

    /// The siblings of a domain (same parent, excluding itself), in
    /// creation order.
    pub fn siblings_of(&self, domain: DomainId) -> Vec<DomainId> {
        match self.domains[domain.0].parent {
            None => Vec::new(),
            Some(p) => self.domains[p.0]
                .children
                .iter()
                .copied()
                .filter(|&c| c != domain)
                .collect(),
        }
    }

    /// All nodes hosted under a domain (its whole subtree), sorted.
    pub fn nodes_under(&self, domain: DomainId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![domain];
        while let Some(d) = stack.pop() {
            out.extend_from_slice(&self.domains[d.0].nodes);
            stack.extend_from_slice(&self.domains[d.0].children);
        }
        out.sort_unstable();
        out
    }

    /// Every node assigned anywhere in the tree, sorted.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        self.nodes_under(self.root())
    }

    /// The deepest domain a node is assigned to, if any.
    pub fn domain_of(&self, node: NodeId) -> Option<DomainId> {
        (0..self.domains.len())
            .find(|&i| self.domains[i].nodes.contains(&node))
            .map(DomainId)
    }

    /// The ancestor of `node`'s domain at `level` (or the domain itself).
    pub fn domain_of_at_level(&self, node: NodeId, level: usize) -> Option<DomainId> {
        let mut d = self.domain_of(node)?;
        while self.domains[d.0].level > level {
            d = self.domains[d.0].parent?;
        }
        (self.domains[d.0].level == level).then_some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    type TestResult = Result<(), Box<dyn Error>>;

    #[test]
    fn regular_tree_shape_and_assignment() {
        let nodes: Vec<NodeId> = (0..12).collect();
        let t = FaultDomainTree::regular(&["cluster", "zone", "rack"], &[2, 3], &nodes);
        assert_eq!(t.n_domains(), 1 + 2 + 6);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.domains_at_level(1).len(), 2);
        assert_eq!(t.domains_at_level(2).len(), 6);
        assert_eq!(t.all_nodes(), nodes);
        // Round-robin: leaf k hosts nodes k, k+6.
        let racks = t.domains_at_level(2);
        assert_eq!(t.nodes_under(racks[0]), vec![0, 6]);
        assert_eq!(t.nodes_under(racks[5]), vec![5, 11]);
        // A zone hosts its three racks' nodes.
        let zones = t.domains_at_level(1);
        assert_eq!(t.nodes_under(zones[0]), vec![0, 1, 2, 6, 7, 8]);
    }

    #[test]
    fn racks_group_consecutively() {
        let nodes: Vec<NodeId> = (4..19).collect();
        let t = FaultDomainTree::racks(&nodes, 4);
        let racks = t.domains_at_level(1);
        assert_eq!(racks.len(), 4, "15 nodes in racks of 4 = 4 racks");
        assert_eq!(t.nodes_under(racks[0]), vec![4, 5, 6, 7]);
        assert_eq!(
            t.nodes_under(racks[3]),
            vec![16, 17, 18],
            "last rack is smaller"
        );
    }

    #[test]
    fn domain_lookup_and_siblings() -> TestResult {
        let nodes: Vec<NodeId> = (0..8).collect();
        let t = FaultDomainTree::regular(&["cluster", "zone", "rack"], &[2, 2], &nodes);
        let rack = t.domain_of(0).ok_or("node 0 lives in a rack")?;
        assert_eq!(t.level_of(rack), 2);
        assert_eq!(t.siblings_of(rack).len(), 1, "one sibling rack in the zone");
        let zone = t.domain_of_at_level(0, 1).ok_or("node 0 lives in a zone")?;
        assert_eq!(t.level_of(zone), 1);
        assert!(t.nodes_under(zone).contains(&0));
        assert!(t.siblings_of(t.root()).is_empty());
        assert_eq!(t.domain_of(99), None);
        Ok(())
    }

    #[test]
    fn level_names_fall_back() {
        let t = FaultDomainTree::racks(&[0, 1], 1);
        assert_eq!(t.level_name(0), "cluster");
        assert_eq!(t.level_name(1), "rack");
        assert_eq!(t.level_name(7), "level7");
    }

    #[test]
    #[should_panic]
    fn double_assignment_panics() {
        let mut t = FaultDomainTree::new(&["cluster"]);
        let d = t.add_domain(t.root());
        t.assign(d, 3);
        t.assign(d, 3);
    }
}
