//! Generative failure processes: turn a fault-domain hierarchy plus a seed
//! into a reproducible [`FailureTrace`].
//!
//! Three generators cover the correlation spectrum the paper motivates:
//!
//! * [`IndependentProcess`] — the classical baseline: every node fails on
//!   its own Poisson clock, no correlation at all;
//! * [`DomainBurstProcess`] — a whole domain (rack, switch, power zone)
//!   fails and takes all or a fraction of its hosted nodes with it;
//! * [`CascadeProcess`] — a domain burst that propagates to sibling
//!   domains with decaying probability and a per-hop delay, modelling
//!   failures that spread along shared infrastructure.
//!
//! All randomness flows through the in-tree seeded RNG, so a `(process,
//! cluster, seed)` triple always yields the same trace — the repro
//! harness's `--jobs N` determinism extends to generated scenarios.

use crate::domain::{DomainId, FaultDomainTree, NodeId};
use crate::trace::FailureTrace;
use ppa_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generative failure process over a fault-domain hierarchy.
pub trait FailureProcess {
    /// Short name used in labels and reports.
    fn name(&self) -> &'static str;

    /// Generates the failures occurring in `[start, start + horizon)`.
    fn generate(
        &self,
        cluster: &FaultDomainTree,
        start: SimTime,
        horizon: SimDuration,
        rng: &mut StdRng,
    ) -> FailureTrace;

    /// Convenience: generate from a bare seed.
    fn generate_seeded(
        &self,
        cluster: &FaultDomainTree,
        start: SimTime,
        horizon: SimDuration,
        seed: u64,
    ) -> FailureTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        self.generate(cluster, start, horizon, &mut rng)
    }
}

/// Chooses `ceil(fraction × n)` of a domain's nodes, deterministically for
/// a given RNG state: a seeded partial Fisher–Yates over the sorted node
/// list. `fraction >= 1` short-circuits to every node.
fn sample_nodes(
    cluster: &FaultDomainTree,
    domain: DomainId,
    fraction: f64,
    rng: &mut StdRng,
) -> Vec<NodeId> {
    let mut nodes = cluster.nodes_under(domain);
    if fraction >= 1.0 || nodes.is_empty() {
        return nodes;
    }
    let keep = ((fraction.max(0.0) * nodes.len() as f64).ceil() as usize).min(nodes.len());
    for i in 0..keep {
        let j = rng.gen_range(i..nodes.len());
        nodes.swap(i, j);
    }
    nodes.truncate(keep);
    nodes.sort_unstable();
    nodes
}

/// Independent per-node failures: each node fails according to a Poisson
/// process with the given mean time between failures. The uncorrelated
/// baseline every correlated model is compared against.
#[derive(Debug, Clone)]
pub struct IndependentProcess {
    /// Mean time between failures of one node.
    pub mtbf: SimDuration,
}

impl FailureProcess for IndependentProcess {
    fn name(&self) -> &'static str {
        "independent"
    }

    fn generate(
        &self,
        cluster: &FaultDomainTree,
        start: SimTime,
        horizon: SimDuration,
        rng: &mut StdRng,
    ) -> FailureTrace {
        assert!(self.mtbf.as_micros() > 0, "mtbf must be positive");
        let mut trace = FailureTrace::new();
        let end = start + horizon;
        // Sorted node order makes the draw sequence — and the trace —
        // independent of tree construction details.
        for node in cluster.all_nodes() {
            let mut t = start;
            loop {
                // Exponential inter-arrival: -ln(1 - u) × mtbf.
                let u: f64 = rng.gen();
                let gap = self.mtbf.mul_f64(-(1.0 - u).ln());
                if gap.is_zero() {
                    continue; // u ≈ 0 rounds to zero; redraw to guarantee progress
                }
                t += gap;
                if t >= end {
                    break;
                }
                trace.push(t, vec![node]);
            }
        }
        trace
    }
}

/// Weibull-renewal per-node failures: each node fails on its own clock
/// with Weibull-distributed inter-arrival times — the classic non-
/// memoryless hazard model cluster-trace studies fit (and the bathtub
/// curve's two working regimes):
///
/// * `shape < 1` — infant mortality: the hazard rate *decreases* with
///   uptime, so failures front-load right after (re)start;
/// * `shape = 1` — the memoryless exponential; with `scale` equal to the
///   MTBF this draws the identical trace to [`IndependentProcess`]
///   (asserted in tests);
/// * `shape > 1` — wear-out: the hazard rate grows with uptime, so
///   failures cluster late in the window.
///
/// Inter-arrival gaps are drawn by inversion: `scale × (-ln(1-u))^(1/k)`.
#[derive(Debug, Clone)]
pub struct WeibullProcess {
    /// Weibull shape parameter `k` (must be positive).
    pub shape: f64,
    /// Characteristic life λ: the 63.2th-percentile inter-failure gap.
    pub scale: SimDuration,
}

impl FailureProcess for WeibullProcess {
    fn name(&self) -> &'static str {
        "weibull"
    }

    fn generate(
        &self,
        cluster: &FaultDomainTree,
        start: SimTime,
        horizon: SimDuration,
        rng: &mut StdRng,
    ) -> FailureTrace {
        assert!(
            self.shape.is_finite() && self.shape > 0.0,
            "shape must be positive"
        );
        assert!(self.scale.as_micros() > 0, "scale must be positive");
        let mut trace = FailureTrace::new();
        let end = start + horizon;
        // Sorted node order, same as IndependentProcess: the draw
        // sequence is independent of tree construction details.
        for node in cluster.all_nodes() {
            let mut t = start;
            loop {
                // Inverse-CDF draw: scale × (-ln(1-u))^(1/k).
                let u: f64 = rng.gen();
                let gap = self.scale.mul_f64((-(1.0 - u).ln()).powf(1.0 / self.shape));
                if gap.is_zero() {
                    continue; // u ≈ 0 rounds to zero; redraw to guarantee progress
                }
                t += gap;
                if t >= end {
                    break;
                }
                trace.push(t, vec![node]);
            }
        }
        trace
    }
}

/// Domain bursts: `bursts` domains at `level` fail at uniformly random
/// instants in the window, each killing `fraction` of its hosted nodes.
#[derive(Debug, Clone)]
pub struct DomainBurstProcess {
    /// Tree level the bursts strike (1 = directly under the root).
    pub level: usize,
    /// How many distinct domains burst (clamped to the level's size).
    pub bursts: usize,
    /// Fraction of each burst domain's nodes that die (`1.0` = all).
    pub fraction: f64,
}

impl FailureProcess for DomainBurstProcess {
    fn name(&self) -> &'static str {
        "domain-burst"
    }

    fn generate(
        &self,
        cluster: &FaultDomainTree,
        start: SimTime,
        horizon: SimDuration,
        rng: &mut StdRng,
    ) -> FailureTrace {
        let mut domains = cluster.domains_at_level(self.level);
        let mut trace = FailureTrace::new();
        if domains.is_empty() || horizon.is_zero() {
            return trace; // an empty window holds no failures
        }
        // Partial Fisher–Yates: the first `bursts` entries are the victims.
        let bursts = self.bursts.min(domains.len());
        for i in 0..bursts {
            let j = rng.gen_range(i..domains.len());
            domains.swap(i, j);
        }
        for &domain in domains.iter().take(bursts) {
            let at = start + horizon.mul_f64(rng.gen::<f64>());
            let nodes = sample_nodes(cluster, domain, self.fraction, rng);
            trace.push(at, nodes);
        }
        trace
    }
}

/// A cascading burst: one origin domain at `level` fails at the start of
/// the window, then the failure spreads outward to its *sibling* domains
/// (same parent — a cascade never crosses the enclosing fault domain's
/// boundary): the sibling at ring distance `d` (creation-order index
/// distance) fails with probability `spread × decay^(d-1)`, `hop_delay`
/// later per ring. Rings that would land at or past `start + horizon` are
/// not generated, so the trace honors the [`FailureProcess`] window.
///
/// `spread = 0` is a single-domain burst; on a single-level tree,
/// `spread = 1, decay = 1` reproduces the paper's §VI-A "everything dies
/// at once" (delayed per ring) correlated failure.
#[derive(Debug, Clone)]
pub struct CascadeProcess {
    /// Tree level the cascade runs along.
    pub level: usize,
    /// Probability that the failure jumps to an adjacent sibling.
    pub spread: f64,
    /// Multiplicative decay of the jump probability per ring of distance.
    pub decay: f64,
    /// Delay between successive rings of the cascade.
    pub hop_delay: SimDuration,
    /// Fraction of each failing domain's nodes that die.
    pub fraction: f64,
    /// Where the cascade starts: `None` draws the origin domain from the
    /// RNG (the default); `Some(i)` pins it to the `i`-th domain of the
    /// level (creation order; out of range is a caller bug and panics) —
    /// used by sweeps that must strike comparable infrastructure in every
    /// cell.
    pub origin: Option<usize>,
}

impl FailureProcess for CascadeProcess {
    fn name(&self) -> &'static str {
        "cascade"
    }

    fn generate(
        &self,
        cluster: &FaultDomainTree,
        start: SimTime,
        horizon: SimDuration,
        rng: &mut StdRng,
    ) -> FailureTrace {
        assert!(
            (0.0..=1.0).contains(&self.spread),
            "spread must be a probability"
        );
        assert!((0.0..=1.0).contains(&self.decay), "decay must be in [0, 1]");
        let domains = cluster.domains_at_level(self.level);
        let mut trace = FailureTrace::new();
        if domains.is_empty() || horizon.is_zero() {
            return trace; // an empty window holds no failures
        }
        let origin_domain = match self.origin {
            // Pinned origins must not consume RNG: `None` keeps the draw
            // sequence (and therefore every pre-existing seeded trace)
            // byte-identical.
            Some(i) => {
                assert!(
                    i < domains.len(),
                    "cascade origin {i} out of range: level {} has {} domain(s)",
                    self.level,
                    domains.len()
                );
                domains[i]
            }
            None => domains[rng.gen_range(0..domains.len())],
        };
        trace.push(
            start,
            sample_nodes(cluster, origin_domain, self.fraction, rng),
        );
        // The cascade is confined to the origin's enclosing domain: rings
        // run over the parent's children only, so a rack failure spreads
        // to racks of the same zone but never jumps the zone boundary.
        let family: Vec<_> = match cluster.parent_of(origin_domain) {
            None => return trace, // origin is the root: nothing to spread to
            Some(p) => cluster.children_of(p),
        };
        let Some(origin) = family.iter().position(|&d| d == origin_domain) else {
            // Unreachable — the origin is one of its parent's children by
            // construction — but an empty trace beats a panic here.
            return trace;
        };
        let end = start + horizon;
        // Spread outward ring by ring, in deterministic (distance, index)
        // order so the RNG consumption is reproducible.
        let max_d = family.len().saturating_sub(1);
        for d in 1..=max_d {
            let p = self.spread * self.decay.powi(d as i32 - 1);
            let at = start + SimDuration::from_micros(self.hop_delay.as_micros() * d as u64);
            if at >= end {
                break; // later rings are later still: the window is closed
            }
            for idx in [origin.checked_sub(d), origin.checked_add(d)] {
                let Some(idx) = idx else { continue };
                if idx >= family.len() || idx == origin {
                    continue;
                }
                if p > 0.0 && rng.gen_bool(p.min(1.0)) {
                    trace.push(at, sample_nodes(cluster, family[idx], self.fraction, rng));
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    type TestResult = Result<(), Box<dyn Error>>;

    fn cluster() -> FaultDomainTree {
        // 16 nodes, 4 racks of 4.
        FaultDomainTree::racks(&(0..16).collect::<Vec<_>>(), 4)
    }

    const HOUR: SimDuration = SimDuration::from_secs(3600);

    #[test]
    fn independent_same_seed_identical_trace() {
        let p = IndependentProcess {
            mtbf: SimDuration::from_secs(600),
        };
        let a = p.generate_seeded(&cluster(), SimTime::ZERO, HOUR, 7);
        let b = p.generate_seeded(&cluster(), SimTime::ZERO, HOUR, 7);
        assert_eq!(a.to_text(), b.to_text(), "same seed → byte-identical");
        let c = p.generate_seeded(&cluster(), SimTime::ZERO, HOUR, 8);
        assert_ne!(a.to_text(), c.to_text(), "different seed → different trace");
        assert!(
            !a.is_empty(),
            "an hour at 10-minute MTBF over 16 nodes fails someone"
        );
        for e in a.events() {
            assert_eq!(e.nodes.len(), 1, "independent failures are single-node");
        }
    }

    #[test]
    fn weibull_same_seed_identical_trace() {
        let p = WeibullProcess {
            shape: 0.7,
            scale: SimDuration::from_secs(600),
        };
        let a = p.generate_seeded(&cluster(), SimTime::from_secs(40), HOUR, 7);
        let b = p.generate_seeded(&cluster(), SimTime::from_secs(40), HOUR, 7);
        assert_eq!(a.to_text(), b.to_text(), "same seed → byte-identical");
        let c = p.generate_seeded(&cluster(), SimTime::from_secs(40), HOUR, 8);
        assert_ne!(a.to_text(), c.to_text(), "different seed → different trace");
        assert!(!a.is_empty(), "an hour over 16 nodes fails someone");
        let end = SimTime::from_secs(40) + HOUR;
        for e in a.events() {
            assert_eq!(e.nodes.len(), 1, "per-node failures are single-node");
            assert!(e.at >= SimTime::from_secs(40) && e.at < end);
        }
    }

    #[test]
    fn weibull_shape_one_is_the_exponential_baseline() {
        // k = 1 collapses the Weibull draw to the exponential one, gap
        // for gap — the trace is byte-identical to IndependentProcess
        // with mtbf = scale under the same seed.
        let mtbf = SimDuration::from_secs(600);
        let w = WeibullProcess {
            shape: 1.0,
            scale: mtbf,
        };
        let e = IndependentProcess { mtbf };
        for seed in [1, 7, 42] {
            let a = w.generate_seeded(&cluster(), SimTime::ZERO, HOUR, seed);
            let b = e.generate_seeded(&cluster(), SimTime::ZERO, HOUR, seed);
            assert_eq!(a.to_text(), b.to_text(), "seed {seed}");
        }
    }

    #[test]
    fn weibull_shape_skews_the_failure_mass() {
        // Same scale, many seeds: infant mortality (k < 1) puts more of
        // its failures in the first tenth of the window than wear-out
        // (k > 1) does — the bathtub curve's two working regimes.
        let early_mass = |shape: f64| {
            let p = WeibullProcess {
                shape,
                scale: SimDuration::from_secs(1800),
            };
            let mut early = 0usize;
            let mut total = 0usize;
            for seed in 0..30 {
                let t = p.generate_seeded(&cluster(), SimTime::ZERO, HOUR, seed);
                for e in t.events() {
                    total += 1;
                    if e.at < SimTime::from_secs(360) {
                        early += 1;
                    }
                }
            }
            assert!(total > 0, "shape {shape} generated nothing");
            early as f64 / total as f64
        };
        let infant = early_mass(0.5);
        let wearout = early_mass(2.0);
        assert!(
            infant > wearout,
            "k=0.5 early mass {infant} must exceed k=2.0's {wearout}"
        );
    }

    #[test]
    fn burst_kills_within_one_domain() -> TestResult {
        let p = DomainBurstProcess {
            level: 1,
            bursts: 1,
            fraction: 1.0,
        };
        let t = p.generate_seeded(&cluster(), SimTime::from_secs(40), HOUR, 3);
        assert_eq!(t.len(), 1);
        let killed = t.killed_nodes();
        assert_eq!(killed.len(), 4, "a full rack of 4");
        // All four live in the same rack: consecutive ids under racks(,4).
        assert_eq!(killed[3] - killed[0], 3);
        let first = t.first_at().ok_or("the burst trace has a first event")?;
        assert!(first >= SimTime::from_secs(40));
        Ok(())
    }

    #[test]
    fn distinct_domains_burst_disjoint_kill_sets() {
        let c = cluster();
        let p = DomainBurstProcess {
            level: 1,
            bursts: 4,
            fraction: 1.0,
        };
        let t = p.generate_seeded(&c, SimTime::ZERO, HOUR, 11);
        assert_eq!(t.len(), 4, "every rack bursts once");
        let mut seen = std::collections::BTreeSet::new();
        for e in t.events() {
            for &n in &e.nodes {
                assert!(seen.insert(n), "node {n} killed by two domain bursts");
            }
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn burst_fraction_partial() {
        let p = DomainBurstProcess {
            level: 1,
            bursts: 1,
            fraction: 0.5,
        };
        let t = p.generate_seeded(&cluster(), SimTime::ZERO, HOUR, 5);
        assert_eq!(t.killed_nodes().len(), 2, "half of a 4-node rack");
    }

    #[test]
    fn cascade_spread_zero_is_single_burst() {
        let p = CascadeProcess {
            level: 1,
            spread: 0.0,
            decay: 0.5,
            hop_delay: SimDuration::from_secs(2),
            fraction: 1.0,
            origin: None,
        };
        let t = p.generate_seeded(&cluster(), SimTime::from_secs(40), HOUR, 9);
        assert_eq!(t.len(), 1);
        assert_eq!(t.first_at(), Some(SimTime::from_secs(40)));
    }

    #[test]
    fn cascade_full_spread_takes_every_domain() -> TestResult {
        let p = CascadeProcess {
            level: 1,
            spread: 1.0,
            decay: 1.0,
            hop_delay: SimDuration::from_secs(2),
            fraction: 1.0,
            origin: None,
        };
        let t = p.generate_seeded(&cluster(), SimTime::from_secs(40), HOUR, 9);
        assert_eq!(t.killed_nodes().len(), 16, "everything dies");
        // Rings are delayed: at least two distinct event times.
        let last = t.events().last().ok_or("the cascade trace is non-empty")?;
        assert!(last.at > t.events()[0].at);
        Ok(())
    }

    #[test]
    fn cascade_never_crosses_the_zone_boundary() {
        // 2 zones × 4 racks, 16 nodes round-robin across the 8 racks.
        let c = FaultDomainTree::regular(
            &["cluster", "zone", "rack"],
            &[2, 4],
            &(0..16).collect::<Vec<_>>(),
        );
        let p = CascadeProcess {
            level: 2,
            spread: 1.0,
            decay: 1.0,
            hop_delay: SimDuration::from_secs(2),
            fraction: 1.0,
            origin: None,
        };
        for seed in 0..20 {
            let t = p.generate_seeded(&c, SimTime::ZERO, HOUR, seed);
            let killed = t.killed_nodes();
            let zones = c.domains_at_level(1);
            let hit: Vec<_> = zones
                .iter()
                .filter(|&&z| c.nodes_under(z).iter().any(|n| killed.contains(n)))
                .collect();
            assert_eq!(hit.len(), 1, "seed {seed}: cascade crossed a zone boundary");
            // Full spread within the zone takes all 4 of its racks.
            assert_eq!(killed.len(), 8, "seed {seed}: the whole zone dies");
        }
    }

    #[test]
    fn cascade_pinned_origin_strikes_the_named_domain_without_rng() {
        let c = cluster();
        let p = |origin| CascadeProcess {
            level: 1,
            spread: 0.0,
            decay: 0.5,
            hop_delay: SimDuration::from_secs(2),
            fraction: 1.0,
            origin,
        };
        // Origin 2 = the third rack (nodes 8-11), whatever the seed.
        for seed in 0..5 {
            let t = p(Some(2)).generate_seeded(&c, SimTime::ZERO, HOUR, seed);
            assert_eq!(t.killed_nodes(), vec![8, 9, 10, 11], "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "cascade origin 4 out of range")]
    fn cascade_pinned_origin_out_of_range_panics() {
        let p = CascadeProcess {
            level: 1,
            spread: 0.0,
            decay: 0.5,
            hop_delay: SimDuration::from_secs(2),
            fraction: 1.0,
            origin: Some(4), // the cluster has racks 0..4
        };
        let _ = p.generate_seeded(&cluster(), SimTime::ZERO, HOUR, 1);
    }

    #[test]
    fn cascade_respects_the_horizon() {
        let p = CascadeProcess {
            level: 1,
            spread: 1.0,
            decay: 1.0,
            hop_delay: SimDuration::from_secs(2),
            fraction: 1.0,
            origin: None,
        };
        // Horizon of 3s admits only the origin (0s) and ring 1 (2s).
        let t = p.generate_seeded(
            &cluster(),
            SimTime::from_secs(40),
            SimDuration::from_secs(3),
            9,
        );
        let end = SimTime::from_secs(43);
        assert!(
            t.events().iter().all(|e| e.at < end),
            "events past the horizon"
        );
        assert!(
            t.killed_nodes().len() <= 12,
            "rings past the window were generated"
        );
    }

    #[test]
    fn cascade_is_deterministic_per_seed() {
        let p = CascadeProcess {
            level: 1,
            spread: 0.6,
            decay: 0.5,
            hop_delay: SimDuration::from_secs(2),
            fraction: 0.75,
            origin: None,
        };
        let a = p.generate_seeded(&cluster(), SimTime::ZERO, HOUR, 21);
        let b = p.generate_seeded(&cluster(), SimTime::ZERO, HOUR, 21);
        assert_eq!(a.to_text(), b.to_text());
    }

    #[test]
    fn zero_horizon_generates_nothing() {
        let c = cluster();
        let procs: Vec<Box<dyn FailureProcess>> = vec![
            Box::new(IndependentProcess {
                mtbf: SimDuration::from_secs(1),
            }),
            Box::new(DomainBurstProcess {
                level: 1,
                bursts: 4,
                fraction: 1.0,
            }),
            Box::new(CascadeProcess {
                level: 1,
                spread: 1.0,
                decay: 1.0,
                hop_delay: SimDuration::from_secs(2),
                fraction: 1.0,
                origin: None,
            }),
        ];
        for p in &procs {
            let t = p.generate_seeded(&c, SimTime::from_secs(40), SimDuration::ZERO, 5);
            assert!(
                t.is_empty(),
                "{}: an empty window holds no failures",
                p.name()
            );
        }
    }

    #[test]
    fn generated_traces_round_trip_serialization() -> TestResult {
        let procs: Vec<Box<dyn FailureProcess>> = vec![
            Box::new(IndependentProcess {
                mtbf: SimDuration::from_secs(900),
            }),
            Box::new(DomainBurstProcess {
                level: 1,
                bursts: 2,
                fraction: 0.5,
            }),
            Box::new(CascadeProcess {
                level: 1,
                spread: 0.8,
                decay: 0.6,
                hop_delay: SimDuration::from_secs(1),
                fraction: 1.0,
                origin: None,
            }),
        ];
        for p in &procs {
            let t = p.generate_seeded(&cluster(), SimTime::from_secs(40), HOUR, 13);
            let back = FailureTrace::from_text(&t.to_text())?;
            assert_eq!(back, t, "{} trace must round-trip", p.name());
        }
        Ok(())
    }
}
