//! # ppa-core — PPA replication planning
//!
//! This crate implements the *planning* half of the paper **“Tolerating
//! Correlated Failures in Massively Parallel Stream Processing Engines”**
//! (Su & Zhou, ICDE 2016): the query/topology model (§II), the *Output
//! Fidelity* metric and its operator output-loss model (§III), minimal
//! complete trees (Definition 1), and the three replication planners of §IV —
//! the exact dynamic program (Algorithm 1), the task-level greedy
//! (Algorithm 2) and the structure-aware planner (Algorithms 3–5).
//!
//! The companion crate `ppa-engine` executes topologies produced here on a
//! simulated cluster with PPA fault tolerance.
//!
//! ## Quick tour
//!
//! ```
//! use ppa_core::model::{OperatorSpec, Partitioning, TopologyBuilder};
//! use ppa_core::planner::{PlanContext, Planner, StructureAwarePlanner};
//!
//! // A 3-operator aggregation pipeline: 4 sources -> 2 aggregators -> 1 sink.
//! let mut b = TopologyBuilder::new();
//! let src = b.add_operator(OperatorSpec::source("src", 4, 1_000.0));
//! let agg = b.add_operator(OperatorSpec::map("agg", 2, 0.5));
//! let sink = b.add_operator(OperatorSpec::map("sink", 1, 0.1));
//! b.connect(src, agg, Partitioning::Merge).unwrap();
//! b.connect(agg, sink, Partitioning::Merge).unwrap();
//! let topology = b.build().unwrap();
//!
//! let cx = PlanContext::new(&topology).unwrap();
//! // Budget: actively replicate 4 of the 7 tasks.
//! let plan = StructureAwarePlanner::default().plan(&cx, 4).unwrap();
//! assert!(plan.tasks.len() <= 4);
//! // Output fidelity of the tentative output under a worst-case correlated
//! // failure (every non-replicated task down):
//! let of = cx.of_plan(&plan.tasks);
//! assert!((0.0..=1.0).contains(&of));
//! ```

pub mod backup;
pub mod error;
pub mod fidelity;
pub mod mctree;
pub mod model;
pub mod planner;
pub mod random;
pub mod rates;

pub use backup::BackupCadence;
pub use error::{CoreError, Result};
pub use fidelity::FidelityModel;
pub use mctree::{enumerate_mc_trees, enumerate_mc_trees_with, McTreeLimits};
pub use model::{
    InputSemantics, OperatorId, OperatorSpec, Partitioning, TaskIndex, TaskSet, TaskWeights,
    Topology, TopologyBuilder,
};
pub use planner::{
    adapt_plan, AdaptivePlanner, BruteForcePlanner, DpPlanner, GreedyPlanner, Plan, PlanAdaptation,
    PlanContext, Planner, StructureAwarePlanner,
};
pub use random::{RandomTopologySpec, Skew, TopologyStyle};
pub use rates::RateModel;
