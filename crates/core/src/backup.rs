//! Backup cadence models for the planner's cost side.
//!
//! The exact families ship state on a *timer* (the checkpoint interval);
//! the approximate family ships on *divergence* — a backup goes out when
//! the state has drifted `error_bound` tuples away from the last shipped
//! snapshot. The planner's CPU charge for passive protection is
//! `backups/s × cost-per-backup`, so the two cadences need one common
//! model: under divergence-driven shipping the backup rate scales with
//! the task's drift rate (≈ its input rate) instead of being a constant
//! of the configuration, which is what makes the approximate family
//! cheap on cold tasks and exactly as expensive as checkpointing on
//! tasks hot enough to cross the bound every interval.
//!
//! Plain `f64` seconds / `u64` tuples throughout: this crate is
//! simulator-agnostic and must not depend on `ppa-sim`'s clock types.

/// When a stateful task ships state backups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackupCadence {
    /// Fixed-interval checkpoints every `interval_secs`.
    Interval { interval_secs: f64 },
    /// Divergence-driven ships: one backup each time the accumulated
    /// drift (input tuples absorbed since the last ship, drifting at
    /// `drift_rate_per_sec`) reaches `error_bound`.
    Divergence {
        error_bound: u64,
        drift_rate_per_sec: f64,
    },
}

impl BackupCadence {
    /// Steady-state backups per second. Zero for a divergence cadence on
    /// a task with no drift (it never ships — and never needs to).
    pub fn backups_per_sec(&self) -> f64 {
        match *self {
            BackupCadence::Interval { interval_secs } => {
                if interval_secs > 0.0 {
                    1.0 / interval_secs
                } else {
                    0.0
                }
            }
            BackupCadence::Divergence {
                error_bound,
                drift_rate_per_sec,
            } => {
                if drift_rate_per_sec > 0.0 {
                    drift_rate_per_sec / error_bound.max(1) as f64
                } else {
                    0.0
                }
            }
        }
    }

    /// Worst-case age of the last shipped backup at an arbitrary failure
    /// instant: a full inter-backup gap. Infinite when the cadence never
    /// ships (zero-drift divergence, non-positive interval) — such a
    /// failure forfeits everything since the start of the run.
    pub fn worst_case_staleness_secs(&self) -> f64 {
        let rate = self.backups_per_sec();
        if rate > 0.0 {
            1.0 / rate
        } else {
            f64::INFINITY
        }
    }

    /// Worst-case state drift forfeited by a lossy recovery, in tuples:
    /// the bound itself for divergence shipping (the accumulator ships
    /// *at* the crossing), `staleness × drift` for a timer.
    pub fn worst_case_drift_loss(&self, drift_rate_per_sec: f64) -> f64 {
        match *self {
            BackupCadence::Divergence { error_bound, .. } => error_bound.max(1) as f64,
            BackupCadence::Interval { .. } => {
                let s = self.worst_case_staleness_secs();
                if s.is_finite() {
                    s * drift_rate_per_sec
                } else {
                    f64::INFINITY
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_cadence_is_rate_independent() {
        let c = BackupCadence::Interval { interval_secs: 5.0 };
        assert!((c.backups_per_sec() - 0.2).abs() < 1e-12);
        assert!((c.worst_case_staleness_secs() - 5.0).abs() < 1e-12);
        // The forfeit scales with how hot the task is.
        assert!((c.worst_case_drift_loss(100.0) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn divergence_cadence_scales_with_drift_rate() {
        let c = |rate: f64| BackupCadence::Divergence {
            error_bound: 500,
            drift_rate_per_sec: rate,
        };
        // A hot task ships often; a cold one rarely; an idle one never.
        assert!((c(1_000.0).backups_per_sec() - 2.0).abs() < 1e-12);
        assert!((c(100.0).backups_per_sec() - 0.2).abs() < 1e-12);
        assert_eq!(c(0.0).backups_per_sec(), 0.0);
        assert!(c(0.0).worst_case_staleness_secs().is_infinite());
        // The forfeit is the bound, independent of rate: that is the point
        // of divergence-driven shipping.
        assert_eq!(c(1_000.0).worst_case_drift_loss(1_000.0), 500.0);
        assert_eq!(c(100.0).worst_case_drift_loss(100.0), 500.0);
    }

    #[test]
    fn equal_rates_make_the_families_equally_expensive() {
        // A task drifting exactly one bound per interval ships at the
        // checkpoint rate — approximate never costs *more* CPU than the
        // timer it replaces at the matched operating point.
        let interval = BackupCadence::Interval { interval_secs: 5.0 };
        let diverg = BackupCadence::Divergence {
            error_bound: 2_000,
            drift_rate_per_sec: 400.0,
        };
        assert!((interval.backups_per_sec() - diverg.backups_per_sec()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_bounds_never_divide_by_zero() {
        let c = BackupCadence::Divergence {
            error_bound: 0,
            drift_rate_per_sec: 100.0,
        };
        assert!((c.backups_per_sec() - 100.0).abs() < 1e-9);
        assert_eq!(c.worst_case_drift_loss(100.0), 1.0);
        let z = BackupCadence::Interval { interval_secs: 0.0 };
        assert_eq!(z.backups_per_sec(), 0.0);
    }
}
