//! The four partitioning situations between neighbouring operators (§II-A).

use std::fmt;

/// How the output stream of an upstream operator with `N1` tasks is divided
/// among the `N2` tasks of a downstream operator.
///
/// * `OneToOne` — `N1 == N2`; task `i` feeds task `i`.
/// * `Split` — `N2 = k·N1` for some `k ≥ 2`; upstream task `i` feeds the
///   block of `k` downstream tasks `i·k .. (i+1)·k`.
/// * `Merge` — `N1 = k·N2` for some `k ≥ 2`; downstream task `j` is fed by
///   the block of `k` upstream tasks `j·k .. (j+1)·k`.
/// * `Full` — complete bipartite: every upstream task feeds every downstream
///   task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Partitioning {
    OneToOne,
    Split,
    Merge,
    Full,
}

impl Partitioning {
    /// Human-readable name (used in errors and reports).
    pub fn name(self) -> &'static str {
        match self {
            Partitioning::OneToOne => "one-to-one",
            Partitioning::Split => "split",
            Partitioning::Merge => "merge",
            Partitioning::Full => "full",
        }
    }

    /// Whether this scheme is legal between operators of the given
    /// parallelism, per the arity constraints of §II-A.
    pub fn is_compatible(self, upstream: usize, downstream: usize) -> bool {
        if upstream == 0 || downstream == 0 {
            return false;
        }
        match self {
            Partitioning::OneToOne => upstream == downstream,
            Partitioning::Split => downstream > upstream && downstream.is_multiple_of(upstream),
            Partitioning::Merge => upstream > downstream && upstream.is_multiple_of(downstream),
            Partitioning::Full => true,
        }
    }

    /// The downstream task indices (local to the downstream operator) that
    /// upstream task `u` (local index) sends substreams to.
    pub fn targets_of(self, u: usize, upstream: usize, downstream: usize) -> Vec<usize> {
        debug_assert!(self.is_compatible(upstream, downstream));
        debug_assert!(u < upstream);
        match self {
            Partitioning::OneToOne => vec![u],
            Partitioning::Split => {
                let fanout = downstream / upstream;
                (u * fanout..(u + 1) * fanout).collect()
            }
            Partitioning::Merge => {
                let fanin = upstream / downstream;
                vec![u / fanin]
            }
            Partitioning::Full => (0..downstream).collect(),
        }
    }

    /// The upstream task indices (local to the upstream operator) whose
    /// substreams reach downstream task `d` (local index).
    pub fn sources_of(self, d: usize, upstream: usize, downstream: usize) -> Vec<usize> {
        debug_assert!(self.is_compatible(upstream, downstream));
        debug_assert!(d < downstream);
        match self {
            Partitioning::OneToOne => vec![d],
            Partitioning::Split => {
                let fanout = downstream / upstream;
                vec![d / fanout]
            }
            Partitioning::Merge => {
                let fanin = upstream / downstream;
                (d * fanin..(d + 1) * fanin).collect()
            }
            Partitioning::Full => (0..upstream).collect(),
        }
    }

    /// Number of downstream tasks each upstream task feeds.
    pub fn fanout(self, upstream: usize, downstream: usize) -> usize {
        match self {
            Partitioning::OneToOne | Partitioning::Merge => 1,
            Partitioning::Split => downstream / upstream,
            Partitioning::Full => downstream,
        }
    }
}

impl fmt::Display for Partitioning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::Partitioning::*;

    #[test]
    fn compatibility_rules() {
        assert!(OneToOne.is_compatible(4, 4));
        assert!(!OneToOne.is_compatible(4, 2));
        assert!(Split.is_compatible(2, 6));
        assert!(!Split.is_compatible(2, 5));
        assert!(!Split.is_compatible(4, 4));
        assert!(Merge.is_compatible(8, 4));
        assert!(!Merge.is_compatible(8, 3));
        assert!(!Merge.is_compatible(4, 4));
        assert!(Full.is_compatible(3, 7));
        assert!(!Full.is_compatible(0, 7));
    }

    #[test]
    fn split_targets_form_blocks() {
        assert_eq!(Split.targets_of(0, 2, 6), vec![0, 1, 2]);
        assert_eq!(Split.targets_of(1, 2, 6), vec![3, 4, 5]);
        assert_eq!(Split.sources_of(4, 2, 6), vec![1]);
    }

    #[test]
    fn merge_sources_form_blocks() {
        assert_eq!(Merge.targets_of(5, 8, 4), vec![2]);
        assert_eq!(Merge.sources_of(2, 8, 4), vec![4, 5]);
    }

    #[test]
    fn one_to_one_is_identity() {
        assert_eq!(OneToOne.targets_of(3, 4, 4), vec![3]);
        assert_eq!(OneToOne.sources_of(3, 4, 4), vec![3]);
    }

    #[test]
    fn full_is_complete_bipartite() {
        assert_eq!(Full.targets_of(0, 2, 3), vec![0, 1, 2]);
        assert_eq!(Full.sources_of(1, 2, 3), vec![0, 1]);
        assert_eq!(Full.fanout(2, 3), 3);
    }

    #[test]
    fn targets_and_sources_are_inverse() {
        for scheme in [OneToOne, Split, Merge, Full] {
            let (n1, n2) = match scheme {
                OneToOne => (4, 4),
                Split => (3, 9),
                Merge => (9, 3),
                Full => (4, 5),
            };
            for u in 0..n1 {
                for d in scheme.targets_of(u, n1, n2) {
                    assert!(
                        scheme.sources_of(d, n1, n2).contains(&u),
                        "{scheme:?} {u}->{d} not inverted"
                    );
                }
            }
            for d in 0..n2 {
                for u in scheme.sources_of(d, n1, n2) {
                    assert!(scheme.targets_of(u, n1, n2).contains(&d));
                }
            }
        }
    }
}
