//! A compact bitset over the tasks of a topology, used to represent failed
//! task sets, replication plans and MC-trees.

use super::TaskIndex;
use std::fmt;

/// Fixed-capacity bitset keyed by [`TaskIndex`].
///
/// All set operations require both operands to share the same capacity
/// (the task count of one topology); this is asserted in debug builds.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskSet {
    words: Vec<u64>,
    capacity: usize,
}

impl TaskSet {
    /// Empty set over `capacity` tasks.
    pub fn empty(capacity: usize) -> Self {
        TaskSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Set containing every task.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::empty(capacity);
        for t in 0..capacity {
            s.insert(TaskIndex(t));
        }
        s
    }

    /// Builds a set from an iterator of task indices.
    pub fn from_tasks(capacity: usize, tasks: impl IntoIterator<Item = TaskIndex>) -> Self {
        let mut s = Self::empty(capacity);
        for t in tasks {
            s.insert(t);
        }
        s
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn insert(&mut self, t: TaskIndex) {
        debug_assert!(
            t.0 < self.capacity,
            "task {t} out of capacity {}",
            self.capacity
        );
        self.words[t.0 / 64] |= 1u64 << (t.0 % 64);
    }

    pub fn remove(&mut self, t: TaskIndex) {
        debug_assert!(t.0 < self.capacity);
        self.words[t.0 / 64] &= !(1u64 << (t.0 % 64));
    }

    pub fn contains(&self, t: TaskIndex) -> bool {
        t.0 < self.capacity && self.words[t.0 / 64] & (1u64 << (t.0 % 64)) != 0
    }

    /// Number of tasks in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ∪ other`, in place.
    pub fn union_with(&mut self, other: &TaskSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self ∪ other`, new set.
    pub fn union(&self, other: &TaskSet) -> TaskSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// `self ∩ other`, new set.
    pub fn intersection(&self, other: &TaskSet) -> TaskSet {
        debug_assert_eq!(self.capacity, other.capacity);
        TaskSet {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            capacity: self.capacity,
        }
    }

    /// `self \ other`, new set.
    pub fn difference(&self, other: &TaskSet) -> TaskSet {
        debug_assert_eq!(self.capacity, other.capacity);
        TaskSet {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
            capacity: self.capacity,
        }
    }

    /// Complement within the capacity (tasks *not* in the set).
    pub fn complement(&self) -> TaskSet {
        let mut words: Vec<u64> = self.words.iter().map(|w| !w).collect();
        // Mask out bits beyond capacity.
        let excess = self.words.len() * 64 - self.capacity;
        if excess > 0 {
            if let Some(last) = words.last_mut() {
                *last &= u64::MAX >> excess;
            }
        }
        TaskSet {
            words,
            capacity: self.capacity,
        }
    }

    /// Whether every task of `self` is in `other`.
    pub fn is_subset_of(&self, other: &TaskSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Number of tasks in `self` that are *not* in `other` (`|self \ other|`).
    /// This is `nonrep_tasks` of Algorithm 1 when `self` is an MC-tree and
    /// `other` a candidate plan.
    pub fn count_difference(&self, other: &TaskSet) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Whether the two sets share at least one task.
    pub fn intersects(&self, other: &TaskSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterator over the member task indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = TaskIndex> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(TaskIndex(wi * 64 + b))
                }
            })
        })
    }
}

impl fmt::Debug for TaskSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(cap: usize, tasks: &[usize]) -> TaskSet {
        TaskSet::from_tasks(cap, tasks.iter().map(|&t| TaskIndex(t)))
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = TaskSet::empty(100);
        assert!(s.is_empty());
        s.insert(TaskIndex(0));
        s.insert(TaskIndex(63));
        s.insert(TaskIndex(64));
        s.insert(TaskIndex(99));
        assert_eq!(s.len(), 4);
        assert!(s.contains(TaskIndex(63)));
        assert!(s.contains(TaskIndex(64)));
        assert!(!s.contains(TaskIndex(65)));
        s.remove(TaskIndex(63));
        assert!(!s.contains(TaskIndex(63)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn union_intersection_difference() {
        let a = set(10, &[1, 2, 3]);
        let b = set(10, &[3, 4]);
        assert_eq!(a.union(&b), set(10, &[1, 2, 3, 4]));
        assert_eq!(a.intersection(&b), set(10, &[3]));
        assert_eq!(a.difference(&b), set(10, &[1, 2]));
        assert_eq!(a.count_difference(&b), 2);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&set(10, &[5])));
    }

    #[test]
    fn complement_respects_capacity() {
        let s = set(70, &[0, 69]);
        let c = s.complement();
        assert_eq!(c.len(), 68);
        assert!(!c.contains(TaskIndex(0)));
        assert!(!c.contains(TaskIndex(69)));
        assert!(c.contains(TaskIndex(68)));
        // Double complement is identity.
        assert_eq!(c.complement(), s);
    }

    #[test]
    fn subset_relation() {
        let a = set(10, &[1, 2]);
        let b = set(10, &[1, 2, 3]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(TaskSet::empty(10).is_subset_of(&a));
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let s = set(130, &[128, 5, 64, 0]);
        let got: Vec<usize> = s.iter().map(|t| t.0).collect();
        assert_eq!(got, vec![0, 5, 64, 128]);
    }

    #[test]
    fn full_has_all() {
        let s = TaskSet::full(65);
        assert_eq!(s.len(), 65);
        assert!(s.complement().is_empty());
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", set(8, &[1, 3])), "{t1, t3}");
    }
}
