//! Operator-level topology DAG and its validating builder.

use super::{EdgeId, OperatorId, OperatorSpec, Partitioning};
use crate::error::{CoreError, Result};

/// A directed operator-level edge carrying a partitioned stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub from: OperatorId,
    pub to: OperatorId,
    pub partitioning: Partitioning,
}

/// A validated operator-level query topology (a DAG, §II-A).
///
/// Construct via [`TopologyBuilder`]; a constructed `Topology` is guaranteed
/// acyclic, with at least one source and one sink, and with every edge's
/// partitioning compatible with the parallelism of its endpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    operators: Vec<OperatorSpec>,
    edges: Vec<Edge>,
    /// Incoming edge ids per operator, ordered by insertion.
    inputs: Vec<Vec<EdgeId>>,
    /// Outgoing edge ids per operator, ordered by insertion.
    outputs: Vec<Vec<EdgeId>>,
    /// Operators in a topological order (sources first).
    topo_order: Vec<OperatorId>,
}

impl Topology {
    pub fn operators(&self) -> &[OperatorSpec] {
        &self.operators
    }

    pub fn operator(&self, id: OperatorId) -> &OperatorSpec {
        &self.operators[id.0]
    }

    pub fn n_operators(&self) -> usize {
        self.operators.len()
    }

    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.0]
    }

    /// Ids of the edges feeding `op`, in insertion order. Each incoming edge
    /// corresponds to one *input stream* of the operator's tasks.
    pub fn input_edges(&self, op: OperatorId) -> &[EdgeId] {
        &self.inputs[op.0]
    }

    /// Ids of the edges leaving `op`, in insertion order.
    pub fn output_edges(&self, op: OperatorId) -> &[EdgeId] {
        &self.outputs[op.0]
    }

    pub fn is_source(&self, op: OperatorId) -> bool {
        self.inputs[op.0].is_empty()
    }

    pub fn is_sink(&self, op: OperatorId) -> bool {
        self.outputs[op.0].is_empty()
    }

    /// Source operators (no input edges).
    pub fn sources(&self) -> Vec<OperatorId> {
        (0..self.operators.len())
            .map(OperatorId)
            .filter(|&o| self.is_source(o))
            .collect()
    }

    /// Sink operators (no output edges); these produce the final outputs.
    pub fn sinks(&self) -> Vec<OperatorId> {
        (0..self.operators.len())
            .map(OperatorId)
            .filter(|&o| self.is_sink(o))
            .collect()
    }

    /// Operators in topological order, sources first.
    pub fn topo_order(&self) -> &[OperatorId] {
        &self.topo_order
    }

    /// Total number of tasks across all operators.
    pub fn n_tasks(&self) -> usize {
        self.operators.iter().map(|o| o.parallelism).sum()
    }

    /// Upstream neighbour operators of `op`.
    pub fn upstream(&self, op: OperatorId) -> Vec<OperatorId> {
        self.inputs[op.0]
            .iter()
            .map(|&e| self.edges[e.0].from)
            .collect()
    }

    /// Downstream neighbour operators of `op`.
    pub fn downstream(&self, op: OperatorId) -> Vec<OperatorId> {
        self.outputs[op.0]
            .iter()
            .map(|&e| self.edges[e.0].to)
            .collect()
    }
}

/// Fluent builder for [`Topology`]; validation happens in [`Self::build`]
/// and (for arity) eagerly in [`Self::connect`].
#[derive(Debug, Default, Clone)]
pub struct TopologyBuilder {
    operators: Vec<OperatorSpec>,
    edges: Vec<Edge>,
}

impl TopologyBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an operator and returns its id.
    pub fn add_operator(&mut self, spec: OperatorSpec) -> OperatorId {
        self.operators.push(spec);
        OperatorId(self.operators.len() - 1)
    }

    /// Connects `from` to `to` with the given partitioning, validating the
    /// arity constraint immediately.
    pub fn connect(
        &mut self,
        from: OperatorId,
        to: OperatorId,
        partitioning: Partitioning,
    ) -> Result<EdgeId> {
        if from.0 >= self.operators.len() {
            return Err(CoreError::UnknownOperator(from.0));
        }
        if to.0 >= self.operators.len() {
            return Err(CoreError::UnknownOperator(to.0));
        }
        if from == to {
            return Err(CoreError::SelfEdge(from.0));
        }
        if self.edges.iter().any(|e| e.from == from && e.to == to) {
            return Err(CoreError::DuplicateEdge {
                from: from.0,
                to: to.0,
            });
        }
        let n1 = self.operators[from.0].parallelism;
        let n2 = self.operators[to.0].parallelism;
        if !partitioning.is_compatible(n1, n2) {
            return Err(CoreError::PartitioningArity {
                from: from.0,
                to: to.0,
                scheme: partitioning.name(),
                upstream: n1,
                downstream: n2,
            });
        }
        self.edges.push(Edge {
            from,
            to,
            partitioning,
        });
        Ok(EdgeId(self.edges.len() - 1))
    }

    /// Validates the whole graph and freezes it into a [`Topology`].
    pub fn build(self) -> Result<Topology> {
        let n = self.operators.len();
        if n == 0 {
            return Err(CoreError::NoSource);
        }
        for (i, op) in self.operators.iter().enumerate() {
            if op.parallelism == 0 {
                return Err(CoreError::ZeroParallelism(i));
            }
            if !op.selectivity.is_finite() || op.selectivity <= 0.0 {
                return Err(CoreError::InvalidRate {
                    operator: i,
                    value: op.selectivity,
                });
            }
            if let Some(rate) = op.source_rate {
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(CoreError::InvalidRate {
                        operator: i,
                        value: rate,
                    });
                }
            }
            if !op.weights.validate(op.parallelism) {
                return Err(CoreError::InvalidWeights(i));
            }
        }

        let mut inputs = vec![Vec::new(); n];
        let mut outputs = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            inputs[e.to.0].push(EdgeId(i));
            outputs[e.from.0].push(EdgeId(i));
        }

        // Sources must carry a rate; non-sources must not.
        for (i, op) in self.operators.iter().enumerate() {
            let is_source = inputs[i].is_empty();
            if is_source != op.is_source() {
                return Err(CoreError::SourceRate {
                    operator: i,
                    is_source,
                });
            }
        }
        if !inputs.iter().any(|v| v.is_empty()) {
            return Err(CoreError::NoSource);
        }
        if !outputs.iter().any(|v| v.is_empty()) {
            return Err(CoreError::NoSink);
        }

        // Kahn's algorithm: topological order + cycle detection.
        let mut indegree: Vec<usize> = inputs.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut topo_order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            topo_order.push(OperatorId(u));
            for &e in &outputs[u] {
                let v = self.edges[e.0].to.0;
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if topo_order.len() != n {
            return Err(CoreError::CyclicTopology);
        }

        Ok(Topology {
            operators: self.operators,
            edges: self.edges,
            inputs,
            outputs,
            topo_order,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InputSemantics;

    fn diamond() -> Topology {
        // src -> (a, b) -> join
        let mut b = TopologyBuilder::new();
        let src = b.add_operator(OperatorSpec::source("src", 4, 100.0));
        let a = b.add_operator(OperatorSpec::map("a", 2, 0.5));
        let c = b.add_operator(OperatorSpec::map("b", 4, 0.5));
        let j = b.add_operator(OperatorSpec::join("join", 2, 0.1));
        b.connect(src, a, Partitioning::Merge).unwrap();
        b.connect(src, c, Partitioning::OneToOne).unwrap();
        b.connect(a, j, Partitioning::OneToOne).unwrap();
        b.connect(c, j, Partitioning::Merge).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_a_valid_diamond() {
        let t = diamond();
        assert_eq!(t.n_operators(), 4);
        assert_eq!(t.n_tasks(), 12);
        assert_eq!(t.sources(), vec![OperatorId(0)]);
        assert_eq!(t.sinks(), vec![OperatorId(3)]);
        assert_eq!(t.topo_order()[0], OperatorId(0));
        assert_eq!(t.topo_order()[3], OperatorId(3));
        assert_eq!(
            t.operator(OperatorId(3)).semantics,
            InputSemantics::Correlated
        );
        assert_eq!(
            t.upstream(OperatorId(3)),
            vec![OperatorId(1), OperatorId(2)]
        );
        assert_eq!(
            t.downstream(OperatorId(0)),
            vec![OperatorId(1), OperatorId(2)]
        );
    }

    #[test]
    fn rejects_incompatible_arity() {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 3, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        let err = b.connect(s, m, Partitioning::OneToOne).unwrap_err();
        assert!(matches!(err, CoreError::PartitioningArity { .. }));
        let err = b.connect(s, m, Partitioning::Merge).unwrap_err();
        assert!(matches!(err, CoreError::PartitioningArity { .. }));
    }

    #[test]
    fn rejects_self_and_duplicate_edges() {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 2, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        assert!(matches!(
            b.connect(s, s, Partitioning::OneToOne),
            Err(CoreError::SelfEdge(0))
        ));
        b.connect(s, m, Partitioning::OneToOne).unwrap();
        assert!(matches!(
            b.connect(s, m, Partitioning::Full),
            Err(CoreError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn rejects_missing_source_rate() {
        let mut b = TopologyBuilder::new();
        // A "map" with no inputs is a source without a rate.
        b.add_operator(OperatorSpec::map("m", 2, 1.0));
        assert!(matches!(b.build(), Err(CoreError::SourceRate { .. })));
    }

    #[test]
    fn rejects_source_rate_on_non_source() {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 2, 10.0));
        let m = b.add_operator(OperatorSpec::source("m", 2, 10.0));
        b.connect(s, m, Partitioning::OneToOne).unwrap();
        assert!(matches!(b.build(), Err(CoreError::SourceRate { .. })));
    }

    #[test]
    fn rejects_zero_parallelism_and_bad_selectivity() {
        let mut b = TopologyBuilder::new();
        b.add_operator(OperatorSpec::source("s", 0, 10.0));
        assert!(matches!(b.build(), Err(CoreError::ZeroParallelism(0))));

        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 2, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, -1.0));
        b.connect(s, m, Partitioning::OneToOne).unwrap();
        assert!(matches!(b.build(), Err(CoreError::InvalidRate { .. })));
    }

    #[test]
    fn edge_accessors() {
        let t = diamond();
        assert_eq!(t.input_edges(OperatorId(3)).len(), 2);
        assert_eq!(t.output_edges(OperatorId(0)).len(), 2);
        let e = t.edge(t.input_edges(OperatorId(3))[0]);
        assert_eq!(e.to, OperatorId(3));
    }
}
