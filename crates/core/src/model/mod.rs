//! Query/topology model of §II: operators parallelized into tasks, connected
//! by partitioned streams, compiled into a task-level DAG.

mod ids;
mod operator;
mod partitioning;
mod taskgraph;
mod taskset;
mod topology;

pub use ids::{EdgeId, OperatorId, TaskIndex};
pub use operator::{InputSemantics, OperatorSpec, TaskWeights};
pub use partitioning::Partitioning;
pub use taskgraph::{InputStream, OutputStream, TaskGraph};
pub use taskset::TaskSet;
pub use topology::{Edge, Topology, TopologyBuilder};
