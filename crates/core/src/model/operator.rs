//! Operator specifications: parallelism, input semantics, selectivity and
//! per-task workload weights.

/// Whether an operator computes over the *join* of its input streams or over
/// their *union* (§III-A1).
///
/// * `Correlated` — the effective input is the Cartesian product of the input
///   streams (a join); losing part of one stream degrades the usefulness of
///   the others (Eq. 2).
/// * `Independent` — the effective input is the union of the input streams;
///   losses average rate-weighted across streams (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSemantics {
    Independent,
    Correlated,
}

/// How an operator's key space (and therefore workload) is distributed among
/// its parallel tasks. This is the skew knob of the Fig. 14(a) experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskWeights {
    /// All tasks receive an equal share.
    Uniform,
    /// Task `i` (0-based) receives a share proportional to `1 / (i+1)^s`.
    Zipf { s: f64 },
    /// Explicit relative weights, one per task (must be positive).
    Explicit(Vec<f64>),
}

impl TaskWeights {
    /// Normalized weight vector of length `parallelism` (sums to 1).
    pub fn shares(&self, parallelism: usize) -> Vec<f64> {
        assert!(parallelism > 0, "operator must have at least one task");
        let raw: Vec<f64> = match self {
            TaskWeights::Uniform => vec![1.0; parallelism],
            TaskWeights::Zipf { s } => (0..parallelism)
                .map(|i| 1.0 / ((i + 1) as f64).powf(*s))
                .collect(),
            TaskWeights::Explicit(w) => w.clone(),
        };
        let sum: f64 = raw.iter().sum();
        raw.into_iter().map(|w| w / sum).collect()
    }

    /// Whether an explicit weight vector is valid for the given parallelism.
    pub fn validate(&self, parallelism: usize) -> bool {
        match self {
            TaskWeights::Explicit(w) => {
                w.len() == parallelism && w.iter().all(|x| x.is_finite() && *x > 0.0)
            }
            TaskWeights::Zipf { s } => s.is_finite() && *s >= 0.0,
            TaskWeights::Uniform => true,
        }
    }
}

/// Specification of one logical operator of the query topology.
///
/// Operators are user-defined functions whose semantics are opaque to the
/// system; the model only needs the handful of fields below (§III-A).
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorSpec {
    /// Human-readable name used in reports and errors.
    pub name: String,
    /// Number of parallel tasks.
    pub parallelism: usize,
    /// Union vs join input semantics.
    pub semantics: InputSemantics,
    /// Output rate per unit of (effective) input rate.
    pub selectivity: f64,
    /// Per-task output rate for source operators (`None` for non-sources).
    /// This is the *mean* rate; per-task rates are additionally scaled by
    /// `weights` so skewed workloads skew their sources too.
    pub source_rate: Option<f64>,
    /// Relative workload of the operator's tasks.
    pub weights: TaskWeights,
}

impl OperatorSpec {
    /// A source operator emitting `rate` tuples/s per task on average.
    pub fn source(name: impl Into<String>, parallelism: usize, rate: f64) -> Self {
        OperatorSpec {
            name: name.into(),
            parallelism,
            semantics: InputSemantics::Independent,
            selectivity: 1.0,
            source_rate: Some(rate),
            weights: TaskWeights::Uniform,
        }
    }

    /// An independent-input (union semantics) operator.
    pub fn map(name: impl Into<String>, parallelism: usize, selectivity: f64) -> Self {
        OperatorSpec {
            name: name.into(),
            parallelism,
            semantics: InputSemantics::Independent,
            selectivity,
            source_rate: None,
            weights: TaskWeights::Uniform,
        }
    }

    /// A correlated-input (join semantics) operator.
    pub fn join(name: impl Into<String>, parallelism: usize, selectivity: f64) -> Self {
        OperatorSpec {
            name: name.into(),
            parallelism,
            semantics: InputSemantics::Correlated,
            selectivity,
            source_rate: None,
            weights: TaskWeights::Uniform,
        }
    }

    /// Builder-style override of the task weights.
    pub fn with_weights(mut self, weights: TaskWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Builder-style override of the input semantics.
    pub fn with_semantics(mut self, semantics: InputSemantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Whether this spec declares a source operator.
    pub fn is_source(&self) -> bool {
        self.source_rate.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shares_sum_to_one() {
        let s = TaskWeights::Uniform.shares(4);
        assert_eq!(s, vec![0.25; 4]);
    }

    #[test]
    fn zipf_shares_are_decreasing_and_normalized() {
        let s = TaskWeights::Zipf { s: 1.0 }.shares(4);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for w in s.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn zipf_zero_is_uniform() {
        let s = TaskWeights::Zipf { s: 0.0 }.shares(3);
        for w in &s {
            assert!((w - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn explicit_shares_normalize() {
        let s = TaskWeights::Explicit(vec![1.0, 3.0]).shares(2);
        assert!((s[0] - 0.25).abs() < 1e-12);
        assert!((s[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn explicit_validation() {
        assert!(TaskWeights::Explicit(vec![1.0, 2.0]).validate(2));
        assert!(!TaskWeights::Explicit(vec![1.0]).validate(2));
        assert!(!TaskWeights::Explicit(vec![1.0, -2.0]).validate(2));
        assert!(!TaskWeights::Explicit(vec![1.0, f64::NAN]).validate(2));
    }

    #[test]
    fn spec_constructors() {
        let s = OperatorSpec::source("s", 4, 100.0);
        assert!(s.is_source());
        assert_eq!(s.parallelism, 4);
        let j = OperatorSpec::join("j", 2, 0.5);
        assert_eq!(j.semantics, InputSemantics::Correlated);
        assert!(!j.is_source());
    }
}
