//! The task-level DAG derived from an operator topology: every operator is
//! expanded into its parallel tasks and every operator edge into the
//! substream connections implied by its partitioning scheme (§II-A).

use super::{EdgeId, OperatorId, TaskIndex, Topology};

/// One *input stream* of a task: the substreams received from the tasks of a
/// single upstream neighbouring operator (§II-A: "the input substreams
/// received from the tasks belonging to the same upstream neighboring
/// operator constitute an input stream").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputStream {
    /// Operator-level edge this stream comes from.
    pub edge: EdgeId,
    /// The upstream operator.
    pub from_op: OperatorId,
    /// The upstream tasks whose substreams feed this task.
    pub substreams: Vec<TaskIndex>,
}

/// One *output stream* of a task toward a single downstream operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputStream {
    /// Operator-level edge this stream goes out on.
    pub edge: EdgeId,
    /// The downstream operator.
    pub to_op: OperatorId,
    /// The downstream tasks receiving a substream from this task.
    pub targets: Vec<TaskIndex>,
}

/// The fully expanded task graph of a topology.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    topology: Topology,
    /// First global task index of each operator.
    offsets: Vec<usize>,
    n_tasks: usize,
    /// Owning operator of each task.
    task_op: Vec<OperatorId>,
    /// Input streams per task (one per incoming operator edge).
    inputs: Vec<Vec<InputStream>>,
    /// Output streams per task (one per outgoing operator edge).
    outputs: Vec<Vec<OutputStream>>,
    /// Tasks in a topological order (derived from the operator order).
    topo_tasks: Vec<TaskIndex>,
}

impl TaskGraph {
    /// Expands `topology` into its task graph.
    pub fn new(topology: Topology) -> Self {
        let n_ops = topology.n_operators();
        let mut offsets = Vec::with_capacity(n_ops);
        let mut n_tasks = 0;
        for op in topology.operators() {
            offsets.push(n_tasks);
            n_tasks += op.parallelism;
        }

        let mut task_op = vec![OperatorId(0); n_tasks];
        for (i, op) in topology.operators().iter().enumerate() {
            task_op[offsets[i]..offsets[i] + op.parallelism].fill(OperatorId(i));
        }

        let mut inputs: Vec<Vec<InputStream>> = vec![Vec::new(); n_tasks];
        let mut outputs: Vec<Vec<OutputStream>> = vec![Vec::new(); n_tasks];

        for (eid, edge) in topology.edges().iter().enumerate() {
            let eid = EdgeId(eid);
            let n1 = topology.operator(edge.from).parallelism;
            let n2 = topology.operator(edge.to).parallelism;
            let up_off = offsets[edge.from.0];
            let down_off = offsets[edge.to.0];
            for u in 0..n1 {
                let targets: Vec<TaskIndex> = edge
                    .partitioning
                    .targets_of(u, n1, n2)
                    .into_iter()
                    .map(|d| TaskIndex(down_off + d))
                    .collect();
                outputs[up_off + u].push(OutputStream {
                    edge: eid,
                    to_op: edge.to,
                    targets,
                });
            }
            for d in 0..n2 {
                let substreams: Vec<TaskIndex> = edge
                    .partitioning
                    .sources_of(d, n1, n2)
                    .into_iter()
                    .map(|u| TaskIndex(up_off + u))
                    .collect();
                inputs[down_off + d].push(InputStream {
                    edge: eid,
                    from_op: edge.from,
                    substreams,
                });
            }
        }

        let mut topo_tasks = Vec::with_capacity(n_tasks);
        for &op in topology.topo_order() {
            let off = offsets[op.0];
            for t in 0..topology.operator(op).parallelism {
                topo_tasks.push(TaskIndex(off + t));
            }
        }

        TaskGraph {
            topology,
            offsets,
            n_tasks,
            task_op,
            inputs,
            outputs,
            topo_tasks,
        }
    }

    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Global index of local task `i` of operator `op`.
    pub fn task_index(&self, op: OperatorId, i: usize) -> TaskIndex {
        debug_assert!(i < self.topology.operator(op).parallelism);
        TaskIndex(self.offsets[op.0] + i)
    }

    /// Owning operator of a task.
    pub fn operator_of(&self, t: TaskIndex) -> OperatorId {
        self.task_op[t.0]
    }

    /// Local index of a task within its operator.
    pub fn local_index(&self, t: TaskIndex) -> usize {
        t.0 - self.offsets[self.operator_of(t).0]
    }

    /// Global indices of all tasks of an operator, as a range.
    pub fn op_tasks(&self, op: OperatorId) -> impl Iterator<Item = TaskIndex> + Clone {
        let off = self.offsets[op.0];
        let n = self.topology.operator(op).parallelism;
        (off..off + n).map(TaskIndex)
    }

    /// Input streams of a task (one per upstream neighbouring operator).
    pub fn inputs(&self, t: TaskIndex) -> &[InputStream] {
        &self.inputs[t.0]
    }

    /// Output streams of a task (one per downstream neighbouring operator).
    pub fn outputs(&self, t: TaskIndex) -> &[OutputStream] {
        &self.outputs[t.0]
    }

    /// Whether a task belongs to a source operator.
    pub fn is_source_task(&self, t: TaskIndex) -> bool {
        self.topology.is_source(self.operator_of(t))
    }

    /// Whether a task belongs to a sink operator.
    pub fn is_sink_task(&self, t: TaskIndex) -> bool {
        self.topology.is_sink(self.operator_of(t))
    }

    /// All tasks of all sink operators.
    pub fn sink_tasks(&self) -> Vec<TaskIndex> {
        self.topology
            .sinks()
            .into_iter()
            .flat_map(|op| self.op_tasks(op))
            .collect()
    }

    /// All tasks of all source operators.
    pub fn source_tasks(&self) -> Vec<TaskIndex> {
        self.topology
            .sources()
            .into_iter()
            .flat_map(|op| self.op_tasks(op))
            .collect()
    }

    /// Tasks in topological order (upstream before downstream).
    pub fn topo_tasks(&self) -> &[TaskIndex] {
        &self.topo_tasks
    }

    /// All upstream tasks feeding `t` across all of its input streams.
    pub fn upstream_tasks(&self, t: TaskIndex) -> Vec<TaskIndex> {
        self.inputs[t.0]
            .iter()
            .flat_map(|s| s.substreams.iter().copied())
            .collect()
    }

    /// All downstream tasks fed by `t` across all of its output streams.
    pub fn downstream_tasks(&self, t: TaskIndex) -> Vec<TaskIndex> {
        self.outputs[t.0]
            .iter()
            .flat_map(|s| s.targets.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OperatorSpec, Partitioning, TopologyBuilder};

    /// The Fig. 2 topology of the paper: two 2-task source operators feeding
    /// a 1-task join, i.e. O1 {t11,t12} -> O3 {t31} <- O2 {t21,t22}.
    fn fig2() -> TaskGraph {
        let mut b = TopologyBuilder::new();
        let o1 = b.add_operator(OperatorSpec::source("O1", 2, 1.0));
        let o2 = b.add_operator(OperatorSpec::source("O2", 2, 2.0));
        let o3 = b.add_operator(OperatorSpec::join("O3", 1, 1.0));
        b.connect(o1, o3, Partitioning::Merge).unwrap();
        b.connect(o2, o3, Partitioning::Merge).unwrap();
        TaskGraph::new(b.build().unwrap())
    }

    #[test]
    fn task_indexing_round_trips() {
        let g = fig2();
        assert_eq!(g.n_tasks(), 5);
        for t in 0..g.n_tasks() {
            let t = TaskIndex(t);
            let op = g.operator_of(t);
            let local = g.local_index(t);
            assert_eq!(g.task_index(op, local), t);
        }
    }

    #[test]
    fn input_streams_group_by_upstream_operator() {
        let g = fig2();
        let t31 = g.task_index(OperatorId(2), 0);
        let ins = g.inputs(t31);
        assert_eq!(ins.len(), 2, "one input stream per upstream operator");
        assert_eq!(ins[0].from_op, OperatorId(0));
        assert_eq!(ins[0].substreams.len(), 2);
        assert_eq!(ins[1].from_op, OperatorId(1));
        assert_eq!(ins[1].substreams.len(), 2);
    }

    #[test]
    fn output_streams_reach_targets() {
        let g = fig2();
        let t11 = g.task_index(OperatorId(0), 0);
        let outs = g.outputs(t11);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].targets, vec![g.task_index(OperatorId(2), 0)]);
    }

    #[test]
    fn source_and_sink_classification() {
        let g = fig2();
        assert!(g.is_source_task(TaskIndex(0)));
        assert!(!g.is_sink_task(TaskIndex(0)));
        let sink = g.task_index(OperatorId(2), 0);
        assert!(g.is_sink_task(sink));
        assert_eq!(g.sink_tasks(), vec![sink]);
        assert_eq!(g.source_tasks().len(), 4);
    }

    #[test]
    fn topo_tasks_respect_operator_order() {
        let g = fig2();
        let order = g.topo_tasks();
        assert_eq!(order.len(), 5);
        // The join task must come after all sources.
        let join_pos = order.iter().position(|&t| g.is_sink_task(t)).unwrap();
        assert_eq!(join_pos, 4);
    }

    #[test]
    fn split_partitioning_produces_blocks() {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 2, 1.0));
        let m = b.add_operator(OperatorSpec::map("m", 4, 1.0));
        b.connect(s, m, Partitioning::Split).unwrap();
        let g = TaskGraph::new(b.build().unwrap());
        let s0 = g.task_index(OperatorId(0), 0);
        assert_eq!(
            g.outputs(s0)[0].targets,
            vec![
                g.task_index(OperatorId(1), 0),
                g.task_index(OperatorId(1), 1)
            ]
        );
        let m3 = g.task_index(OperatorId(1), 3);
        assert_eq!(
            g.inputs(m3)[0].substreams,
            vec![g.task_index(OperatorId(0), 1)]
        );
    }

    #[test]
    fn upstream_downstream_helpers() {
        let g = fig2();
        let t31 = g.task_index(OperatorId(2), 0);
        assert_eq!(g.upstream_tasks(t31).len(), 4);
        assert_eq!(g.downstream_tasks(TaskIndex(0)), vec![t31]);
    }
}
