//! Small typed identifiers for operators, edges and tasks.

use std::fmt;

/// Index of an operator within a [`super::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OperatorId(pub usize);

impl fmt::Display for OperatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

/// Index of an operator-level edge within a [`super::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub usize);

/// Dense global index of a task within a [`super::TaskGraph`].
///
/// Tasks are numbered operator by operator: operator `Oi`'s tasks occupy a
/// contiguous range, so the pair *(operator, local index)* and the global
/// index are freely interconvertible via [`super::TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskIndex(pub usize);

impl fmt::Display for TaskIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(OperatorId(3).to_string(), "O3");
        assert_eq!(TaskIndex(12).to_string(), "t12");
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(TaskIndex(1) < TaskIndex(2));
        assert!(OperatorId(0) < OperatorId(1));
    }
}
