//! Stream-rate propagation through the task graph.
//!
//! The loss model of §III weights information losses by stream rates
//! (Eq. 1, 3, 4), so every task and substream needs a steady-state rate.
//! Rates are derived from the source rates declared on source operators:
//!
//! * a **source task**'s output rate is `source_rate × parallelism × share`,
//!   where `share` is the task's normalized workload weight (so the mean
//!   per-task rate equals `source_rate` and skew shifts load between tasks);
//! * a **non-source task**'s output rate is `selectivity × Σ input-stream
//!   rates`. The paper uses the Cartesian product as the *effective input*
//!   of a correlated operator only for loss propagation (Eq. 2, which is
//!   rate-free); it never defines a join's output rate, so we use the same
//!   sum rule for both operator kinds (documented in README.md §Design notes);
//! * a task's output stream is copied to every subscribing downstream
//!   operator and split among that operator's tasks proportionally to the
//!   workload weights of the reachable targets.

use crate::model::{TaskGraph, TaskIndex};

/// Steady-state rates for every task and substream of a [`TaskGraph`].
#[derive(Debug, Clone)]
pub struct RateModel {
    /// λout per task.
    task_out: Vec<f64>,
    /// `substream[t][s][k]`: rate of the substream from task `t` on its
    /// `s`-th output stream to the `k`-th target of that stream.
    substream: Vec<Vec<Vec<f64>>>,
}

impl RateModel {
    /// Computes rates for the whole graph in topological order.
    pub fn compute(graph: &TaskGraph) -> Self {
        let n = graph.n_tasks();
        let topo = graph.topology();
        let mut task_out = vec![0.0; n];
        let mut substream: Vec<Vec<Vec<f64>>> = vec![Vec::new(); n];

        // Normalized workload shares per operator, reused for splitting.
        let shares: Vec<Vec<f64>> = topo
            .operators()
            .iter()
            .map(|op| op.weights.shares(op.parallelism))
            .collect();

        // Input rate accumulator: per task, per input stream index.
        let mut input_acc: Vec<Vec<f64>> = (0..n)
            .map(|t| vec![0.0; graph.inputs(TaskIndex(t)).len()])
            .collect();

        for &t in graph.topo_tasks() {
            let op = graph.operator_of(t);
            let spec = topo.operator(op);
            let out = if let Some(rate) = spec.source_rate {
                rate * spec.parallelism as f64 * shares[op.0][graph.local_index(t)]
            } else {
                let total_in: f64 = input_acc[t.0].iter().sum();
                spec.selectivity * total_in
            };
            task_out[t.0] = out;

            // Split the output among each output stream's targets.
            let mut streams = Vec::with_capacity(graph.outputs(t).len());
            for ostream in graph.outputs(t) {
                let to_op = ostream.to_op;
                let weight_sum: f64 = ostream
                    .targets
                    .iter()
                    .map(|&d| shares[to_op.0][graph.local_index(d)])
                    .sum();
                let mut rates = Vec::with_capacity(ostream.targets.len());
                for &d in &ostream.targets {
                    let w = shares[to_op.0][graph.local_index(d)];
                    let r = if weight_sum > 0.0 {
                        out * w / weight_sum
                    } else {
                        0.0
                    };
                    rates.push(r);
                    // Accumulate into the downstream task's input stream for
                    // this operator edge.
                    let si = graph
                        .inputs(d)
                        .iter()
                        .position(|is| is.edge == ostream.edge)
                        .expect("downstream input stream must exist for edge");
                    input_acc[d.0][si] += r;
                }
                streams.push(rates);
            }
            substream[t.0] = streams;
        }

        RateModel {
            task_out,
            substream,
        }
    }

    /// λout of a task.
    pub fn output_rate(&self, t: TaskIndex) -> f64 {
        self.task_out[t.0]
    }

    /// Rate of the substream from `t` on its `stream`-th output stream to
    /// that stream's `target`-th task.
    pub fn substream_rate(&self, t: TaskIndex, stream: usize, target: usize) -> f64 {
        self.substream[t.0][stream][target]
    }

    /// Rate of the substream from upstream task `from` into downstream task
    /// `to` along the operator edge `edge` (0 if not connected).
    pub fn substream_rate_between(&self, graph: &TaskGraph, from: TaskIndex, to: TaskIndex) -> f64 {
        for (si, ostream) in graph.outputs(from).iter().enumerate() {
            if let Some(k) = ostream.targets.iter().position(|&d| d == to) {
                return self.substream[from.0][si][k];
            }
        }
        0.0
    }

    /// Total input rate of task `t`'s `stream`-th input stream.
    pub fn input_stream_rate(&self, graph: &TaskGraph, t: TaskIndex, stream: usize) -> f64 {
        graph.inputs(t)[stream]
            .substreams
            .iter()
            .map(|&s| self.substream_rate_between(graph, s, t))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OperatorSpec, Partitioning, TaskWeights, TopologyBuilder};

    fn chain() -> TaskGraph {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 4, 100.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, 0.5));
        let k = b.add_operator(OperatorSpec::map("k", 1, 1.0));
        b.connect(s, m, Partitioning::Merge).unwrap();
        b.connect(m, k, Partitioning::Merge).unwrap();
        TaskGraph::new(b.build().unwrap())
    }

    #[test]
    fn rates_flow_through_a_merge_chain() {
        let g = chain();
        let r = RateModel::compute(&g);
        // 4 sources at 100 each.
        for t in 0..4 {
            assert!((r.output_rate(TaskIndex(t)) - 100.0).abs() < 1e-9);
        }
        // Each m task merges 2 sources and halves: 0.5 * 200 = 100.
        assert!((r.output_rate(TaskIndex(4)) - 100.0).abs() < 1e-9);
        assert!((r.output_rate(TaskIndex(5)) - 100.0).abs() < 1e-9);
        // Sink: 1.0 * 200 = 200.
        assert!((r.output_rate(TaskIndex(6)) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn substream_rates_sum_to_output_rate() {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 2, 60.0));
        let m = b.add_operator(OperatorSpec::map("m", 3, 1.0));
        b.connect(s, m, Partitioning::Full).unwrap();
        let g = TaskGraph::new(b.build().unwrap());
        let r = RateModel::compute(&g);
        for t in 0..2 {
            let t = TaskIndex(t);
            let sum: f64 = (0..3).map(|k| r.substream_rate(t, 0, k)).sum();
            assert!((sum - r.output_rate(t)).abs() < 1e-9);
        }
    }

    #[test]
    fn skewed_weights_skew_substream_rates() {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 1, 100.0));
        let m = b.add_operator(
            OperatorSpec::map("m", 2, 1.0).with_weights(TaskWeights::Explicit(vec![3.0, 1.0])),
        );
        b.connect(s, m, Partitioning::Full).unwrap();
        let g = TaskGraph::new(b.build().unwrap());
        let r = RateModel::compute(&g);
        let t0 = TaskIndex(0);
        assert!((r.substream_rate(t0, 0, 0) - 75.0).abs() < 1e-9);
        assert!((r.substream_rate(t0, 0, 1) - 25.0).abs() < 1e-9);
        // Downstream output rates reflect the skew.
        assert!((r.output_rate(TaskIndex(1)) - 75.0).abs() < 1e-9);
        assert!((r.output_rate(TaskIndex(2)) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn source_weights_scale_source_rates() {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(
            OperatorSpec::source("s", 2, 1.5).with_weights(TaskWeights::Explicit(vec![1.0, 2.0])),
        );
        let m = b.add_operator(OperatorSpec::map("m", 1, 1.0));
        b.connect(s, m, Partitioning::Merge).unwrap();
        let g = TaskGraph::new(b.build().unwrap());
        let r = RateModel::compute(&g);
        assert!((r.output_rate(TaskIndex(0)) - 1.0).abs() < 1e-9);
        assert!((r.output_rate(TaskIndex(1)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn input_stream_rate_aggregates_substreams() {
        let g = chain();
        let r = RateModel::compute(&g);
        // m0 receives sources 0 and 1 at 100 each.
        assert!((r.input_stream_rate(&g, TaskIndex(4), 0) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn substream_rate_between_unconnected_tasks_is_zero() {
        let g = chain();
        let r = RateModel::compute(&g);
        // Source 0 feeds m0 (task 4), not m1 (task 5).
        assert!(r.substream_rate_between(&g, TaskIndex(0), TaskIndex(5)) == 0.0);
        assert!(r.substream_rate_between(&g, TaskIndex(0), TaskIndex(4)) > 0.0);
    }
}
