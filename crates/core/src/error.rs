//! Error types shared across the planning crate.

use std::fmt;

/// Convenience alias used throughout `ppa-core`.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;

/// Errors produced while building topologies or planning replication.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The topology graph contains a cycle; query plans must be DAGs (§II-A).
    CyclicTopology,
    /// An operator id referenced an operator that does not exist.
    UnknownOperator(usize),
    /// An operator subscribed to itself, which the model forbids (§II-A).
    SelfEdge(usize),
    /// Duplicate edge between the same pair of operators.
    DuplicateEdge { from: usize, to: usize },
    /// A partitioning scheme is incompatible with the parallelism of the
    /// operators it connects (e.g. `OneToOne` with unequal parallelism).
    PartitioningArity {
        from: usize,
        to: usize,
        scheme: &'static str,
        upstream: usize,
        downstream: usize,
    },
    /// The topology has no source operator (no operator without inputs).
    NoSource,
    /// The topology has no sink operator (no operator without outputs).
    NoSink,
    /// An operator was declared with zero parallel tasks.
    ZeroParallelism(usize),
    /// A selectivity or rate was not a finite positive number.
    InvalidRate { operator: usize, value: f64 },
    /// A source operator is missing its source rate, or a non-source has one.
    SourceRate { operator: usize, is_source: bool },
    /// MC-tree enumeration exceeded the configured limit; the caller should
    /// fall back to a heuristic planner (the paper hits the same wall with
    /// the dynamic program on Fig. 14's random topologies).
    McTreeExplosion { limit: usize },
    /// The dynamic program's candidate-plan set exceeded its limit.
    DpExplosion { limit: usize },
    /// A task → node mapping handed to the planner does not cover the task
    /// graph (fault-domain planning needs one node per task).
    TaskNodeMapLength { expected: usize, got: usize },
    /// A task weight vector had the wrong length or non-positive entries.
    InvalidWeights(usize),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::CyclicTopology => write!(f, "topology is not a DAG"),
            CoreError::UnknownOperator(id) => write!(f, "unknown operator id {id}"),
            CoreError::SelfEdge(id) => write!(f, "operator {id} cannot subscribe to itself"),
            CoreError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge from operator {from} to {to}")
            }
            CoreError::PartitioningArity {
                from,
                to,
                scheme,
                upstream,
                downstream,
            } => write!(
                f,
                "{scheme} partitioning from operator {from} ({upstream} tasks) to \
                 operator {to} ({downstream} tasks) violates its arity constraint"
            ),
            CoreError::NoSource => write!(f, "topology has no source operator"),
            CoreError::NoSink => write!(f, "topology has no sink operator"),
            CoreError::ZeroParallelism(id) => {
                write!(f, "operator {id} must have at least one task")
            }
            CoreError::InvalidRate { operator, value } => {
                write!(
                    f,
                    "operator {operator} has invalid rate/selectivity {value}"
                )
            }
            CoreError::SourceRate {
                operator,
                is_source,
            } => {
                if *is_source {
                    write!(f, "source operator {operator} is missing a source rate")
                } else {
                    write!(
                        f,
                        "non-source operator {operator} must not set a source rate"
                    )
                }
            }
            CoreError::McTreeExplosion { limit } => {
                write!(f, "MC-tree enumeration exceeded the limit of {limit} trees")
            }
            CoreError::DpExplosion { limit } => write!(
                f,
                "dynamic-programming candidate set exceeded the limit of {limit} plans"
            ),
            CoreError::TaskNodeMapLength { expected, got } => write!(
                f,
                "task → node mapping covers {got} task(s) but the graph has {expected}"
            ),
            CoreError::InvalidWeights(id) => {
                write!(f, "operator {id} has an invalid explicit weight vector")
            }
        }
    }
}

impl std::error::Error for CoreError {}
