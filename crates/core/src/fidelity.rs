//! The operator output-loss model and the **Output Fidelity (OF)** metric of
//! §III, plus the **Internal Completeness (IC)** baseline metric of
//! Bellavista et al. (EDBT'14) used in the Fig. 12 comparison.
//!
//! Given a set of failed tasks, information loss (IL) propagates from the
//! failures to the sink operator:
//!
//! * **Eq. 1** — the loss of an input stream is the rate-weighted average of
//!   the losses of its substreams;
//! * **Eq. 2** — a *correlated-input* (join) task's output loss treats the
//!   effective input as the Cartesian product of its input streams:
//!   `ILout = 1 − Π_j (1 − ILin_j)`;
//! * **Eq. 3** — an *independent-input* task's output loss is the
//!   rate-weighted average of its input-stream losses;
//! * **Eq. 4** — `OF = 1 − Σ λout_i·ILout_i / Σ λout_i` over the tasks of
//!   the sink operators.
//!
//! IC is the identical propagation with every operator treated as
//! independent-input — precisely the "fundamental difference" the paper
//! calls out: IC ignores the correlation of a task's input streams.

#[cfg(test)]
use crate::model::TaskIndex;
use crate::model::{InputSemantics, TaskGraph, TaskSet};
use crate::rates::RateModel;

/// Output-loss propagation and OF/IC evaluation over one task graph.
///
/// The model borrows the graph and rates; it is cheap to construct and to
/// copy around, and evaluation is `O(tasks + substreams)` per call.
#[derive(Debug, Clone, Copy)]
pub struct FidelityModel<'g> {
    graph: &'g TaskGraph,
    rates: &'g RateModel,
}

impl<'g> FidelityModel<'g> {
    pub fn new(graph: &'g TaskGraph, rates: &'g RateModel) -> Self {
        FidelityModel { graph, rates }
    }

    pub fn graph(&self) -> &'g TaskGraph {
        self.graph
    }

    pub fn rates(&self) -> &'g RateModel {
        self.rates
    }

    /// Per-task output information loss `ILout` under the given failures
    /// (Eq. 1–3), indexed by global task index.
    pub fn output_loss(&self, failed: &TaskSet) -> Vec<f64> {
        self.propagate(failed, false)
    }

    /// Output Fidelity (Eq. 4) of the topology when `failed` tasks are down.
    pub fn output_fidelity(&self, failed: &TaskSet) -> f64 {
        let loss = self.propagate(failed, false);
        self.sink_fidelity(&loss)
    }

    /// OF of a replication plan under the paper's worst-case correlated
    /// failure: every task *not* in the plan fails (§IV: "there is at least
    /// one failed task in every MC-tree").
    pub fn of_plan(&self, plan: &TaskSet) -> f64 {
        self.output_fidelity(&plan.complement())
    }

    /// Internal Completeness of the topology when `failed` tasks are down:
    /// same propagation but joins treated as independent-input.
    pub fn internal_completeness(&self, failed: &TaskSet) -> f64 {
        let loss = self.propagate(failed, true);
        self.sink_fidelity(&loss)
    }

    /// IC of a replication plan under the worst-case correlated failure.
    pub fn ic_plan(&self, plan: &TaskSet) -> f64 {
        self.internal_completeness(&plan.complement())
    }

    /// Eq. 4 aggregation over sink-operator tasks given per-task losses.
    fn sink_fidelity(&self, loss: &[f64]) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for t in self.graph.sink_tasks() {
            let rate = self.rates.output_rate(t);
            weighted += rate * loss[t.0];
            total += rate;
        }
        if total <= 0.0 {
            // A topology with no output rate conveys no information at all.
            return 0.0;
        }
        1.0 - weighted / total
    }

    /// Propagates `ILout` for every task in topological order.
    ///
    /// `all_independent` switches Eq. 2 off (the IC baseline).
    fn propagate(&self, failed: &TaskSet, all_independent: bool) -> Vec<f64> {
        let n = self.graph.n_tasks();
        let mut loss = vec![0.0; n];
        for &t in self.graph.topo_tasks() {
            if failed.contains(t) {
                loss[t.0] = 1.0;
                continue;
            }
            let inputs = self.graph.inputs(t);
            if inputs.is_empty() {
                loss[t.0] = 0.0; // healthy source
                continue;
            }
            let op = self.graph.topology().operator(self.graph.operator_of(t));
            let correlated =
                !all_independent && op.semantics == InputSemantics::Correlated && inputs.len() > 1;

            // Eq. 1 per input stream.
            let mut stream_loss = Vec::with_capacity(inputs.len());
            let mut stream_rate = Vec::with_capacity(inputs.len());
            for istream in inputs {
                let mut weighted = 0.0;
                let mut total = 0.0;
                for &s in &istream.substreams {
                    let lambda = self.rates.substream_rate_between(self.graph, s, t);
                    weighted += lambda * loss[s.0];
                    total += lambda;
                }
                // A stream with no rate carries no information: treat as
                // fully lost so a join over it cannot pretend to be healthy.
                let il = if total > 0.0 { weighted / total } else { 1.0 };
                stream_loss.push(il);
                stream_rate.push(total);
            }

            loss[t.0] = if correlated {
                // Eq. 2.
                1.0 - stream_loss.iter().map(|il| 1.0 - il).product::<f64>()
            } else {
                // Eq. 3.
                let total: f64 = stream_rate.iter().sum();
                if total > 0.0 {
                    stream_loss
                        .iter()
                        .zip(&stream_rate)
                        .map(|(il, r)| il * r)
                        .sum::<f64>()
                        / total
                } else {
                    1.0
                }
            };
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OperatorId, OperatorSpec, Partitioning, TaskWeights, TopologyBuilder};

    /// The exact Fig. 2 example: O1 {t11:1, t12:2 tuples/s} and
    /// O2 {t21:3, t22:2} feed the single join task t31; t22 fails.
    /// The paper derives ILout31 = 2/5 (correlated) and 1/4 (independent).
    fn fig2(correlated: bool) -> (TaskGraph, RateModel) {
        let mut b = TopologyBuilder::new();
        let o1 = b.add_operator(
            OperatorSpec::source("O1", 2, 1.5).with_weights(TaskWeights::Explicit(vec![1.0, 2.0])),
        );
        let o2 = b.add_operator(
            OperatorSpec::source("O2", 2, 2.5).with_weights(TaskWeights::Explicit(vec![3.0, 2.0])),
        );
        let o3 = if correlated {
            b.add_operator(OperatorSpec::join("O3", 1, 1.0))
        } else {
            b.add_operator(OperatorSpec::map("O3", 1, 1.0))
        };
        b.connect(o1, o3, Partitioning::Merge).unwrap();
        b.connect(o2, o3, Partitioning::Merge).unwrap();
        let g = TaskGraph::new(b.build().unwrap());
        let r = RateModel::compute(&g);
        (g, r)
    }

    #[test]
    fn fig2_correlated_loss_matches_paper() {
        let (g, r) = fig2(true);
        let m = FidelityModel::new(&g, &r);
        let t22 = g.task_index(OperatorId(1), 1);
        let failed = TaskSet::from_tasks(g.n_tasks(), [t22]);
        let loss = m.output_loss(&failed);
        let t31 = g.task_index(OperatorId(2), 0);
        assert!(
            (loss[t31.0] - 0.4).abs() < 1e-12,
            "ILout31 = 2/5, got {}",
            loss[t31.0]
        );
        assert!((m.output_fidelity(&failed) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn fig2_independent_loss_matches_paper() {
        let (g, r) = fig2(false);
        let m = FidelityModel::new(&g, &r);
        let t22 = g.task_index(OperatorId(1), 1);
        let failed = TaskSet::from_tasks(g.n_tasks(), [t22]);
        let loss = m.output_loss(&failed);
        let t31 = g.task_index(OperatorId(2), 0);
        assert!(
            (loss[t31.0] - 0.25).abs() < 1e-12,
            "ILout31 = 1/4, got {}",
            loss[t31.0]
        );
        assert!((m.output_fidelity(&failed) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ic_equals_of_without_joins() {
        let (g, r) = fig2(false);
        let m = FidelityModel::new(&g, &r);
        let failed = TaskSet::from_tasks(g.n_tasks(), [TaskIndex(0), TaskIndex(3)]);
        assert!((m.output_fidelity(&failed) - m.internal_completeness(&failed)).abs() < 1e-12);
    }

    #[test]
    fn ic_overestimates_fidelity_on_joins() {
        let (g, r) = fig2(true);
        let m = FidelityModel::new(&g, &r);
        let t22 = g.task_index(OperatorId(1), 1);
        let failed = TaskSet::from_tasks(g.n_tasks(), [t22]);
        // IC ignores the correlation and reports the independent value.
        assert!(m.internal_completeness(&failed) > m.output_fidelity(&failed));
        assert!((m.internal_completeness(&failed) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn no_failure_is_perfect_fidelity() {
        let (g, r) = fig2(true);
        let m = FidelityModel::new(&g, &r);
        let none = TaskSet::empty(g.n_tasks());
        assert!((m.output_fidelity(&none) - 1.0).abs() < 1e-12);
        assert!((m.internal_completeness(&none) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_failed_is_zero_fidelity() {
        let (g, r) = fig2(true);
        let m = FidelityModel::new(&g, &r);
        let all = TaskSet::full(g.n_tasks());
        assert_eq!(m.output_fidelity(&all), 0.0);
    }

    #[test]
    fn failed_sink_kills_its_share() {
        // Two sink tasks with equal rates: failing one halves fidelity.
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 2, 10.0));
        let m_ = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        b.connect(s, m_, Partitioning::OneToOne).unwrap();
        let g = TaskGraph::new(b.build().unwrap());
        let r = RateModel::compute(&g);
        let fm = FidelityModel::new(&g, &r);
        let failed = TaskSet::from_tasks(g.n_tasks(), [g.task_index(OperatorId(1), 0)]);
        assert!((fm.output_fidelity(&failed) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn of_plan_complements_correctly() {
        let (g, r) = fig2(true);
        let m = FidelityModel::new(&g, &r);
        // Plan replicating everything ⇒ no failures ⇒ OF 1.
        assert!((m.of_plan(&TaskSet::full(g.n_tasks())) - 1.0).abs() < 1e-12);
        // Empty plan ⇒ everything fails ⇒ OF 0.
        assert_eq!(m.of_plan(&TaskSet::empty(g.n_tasks())), 0.0);
    }

    #[test]
    fn join_with_one_dead_stream_loses_everything() {
        let (g, r) = fig2(true);
        let m = FidelityModel::new(&g, &r);
        // Both O2 tasks fail: the whole second input stream is lost, so the
        // join's Cartesian input is empty.
        let failed = TaskSet::from_tasks(
            g.n_tasks(),
            [
                g.task_index(OperatorId(1), 0),
                g.task_index(OperatorId(1), 1),
            ],
        );
        assert_eq!(m.output_fidelity(&failed), 0.0);
        // The independent counterpart would retain the O1 share.
        assert!(m.internal_completeness(&failed) > 0.0);
    }

    #[test]
    fn loss_is_monotone_in_failures() {
        let (g, r) = fig2(true);
        let m = FidelityModel::new(&g, &r);
        let mut failed = TaskSet::empty(g.n_tasks());
        let mut prev = m.output_fidelity(&failed);
        for t in 0..g.n_tasks() {
            failed.insert(TaskIndex(t));
            let next = m.output_fidelity(&failed);
            assert!(
                next <= prev + 1e-12,
                "fidelity must not increase with more failures"
            );
            prev = next;
        }
    }
}
