//! Minimal Complete Trees (Definition 1).
//!
//! An MC-tree is a minimal tree-shaped subgraph of the task DAG whose leaves
//! are source-operator tasks and whose root is a sink-operator task, such
//! that the root keeps producing output iff every task of the tree is alive:
//!
//! * an **independent-input** task needs *one* upstream substream through
//!   exactly one of its input streams (union semantics — any surviving
//!   substream keeps data flowing);
//! * a **correlated-input** task needs one upstream substream from *each* of
//!   its input streams (join semantics — losing a whole input stream stops
//!   all output, cf. the Fig. 1 discussion).
//!
//! Enumeration is exponential in the worst case (`O(M^N)`, §IV-A), so it is
//! guarded by [`McTreeLimits`] and returns [`CoreError::McTreeExplosion`]
//! when the topology is too entangled; callers then fall back to the
//! structure-aware planner, exactly as the paper does for Fig. 14.

use crate::error::{CoreError, Result};
#[cfg(test)]
use crate::model::TaskIndex;
use crate::model::{InputSemantics, TaskGraph, TaskSet};
// ppa-lint: allow(D001, reason = "membership-only dedup below; iteration order never escapes")
use std::collections::HashSet;

/// Guard rails for the exponential enumeration.
#[derive(Debug, Clone, Copy)]
pub struct McTreeLimits {
    /// Maximum number of distinct (partial or complete) trees tolerated at
    /// any point of the enumeration.
    pub max_trees: usize,
}

impl Default for McTreeLimits {
    fn default() -> Self {
        McTreeLimits { max_trees: 200_000 }
    }
}

/// Enumerates every MC-tree of the task graph as a [`TaskSet`].
///
/// Trees are returned in a deterministic order (sorted), deduplicated.
pub fn enumerate_mc_trees(graph: &TaskGraph, limits: McTreeLimits) -> Result<Vec<TaskSet>> {
    enumerate_mc_trees_with(graph, limits, false)
}

/// Like [`enumerate_mc_trees`], but with `joins_as_union = true` every
/// correlated-input operator is treated as independent-input: a "tree" then
/// needs only one input stream through a join. This is what a planner
/// optimizing the IC baseline metric believes the world looks like — the
/// Fig. 12 experiment uses it to show how IC-optimized plans strand joins.
pub fn enumerate_mc_trees_with(
    graph: &TaskGraph,
    limits: McTreeLimits,
    joins_as_union: bool,
) -> Result<Vec<TaskSet>> {
    let n = graph.n_tasks();
    // memo[t] = every partial tree rooted at task t (t plus upstream cover).
    let mut memo: Vec<Vec<TaskSet>> = vec![Vec::new(); n];

    for &t in graph.topo_tasks() {
        let inputs = graph.inputs(t);
        if inputs.is_empty() {
            memo[t.0] = vec![TaskSet::from_tasks(n, [t])];
            continue;
        }
        let op = graph.topology().operator(graph.operator_of(t));
        let correlated =
            !joins_as_union && op.semantics == InputSemantics::Correlated && inputs.len() > 1;

        let mut partials: Vec<TaskSet> = Vec::new();
        if correlated {
            // Cartesian product across input streams: one substream choice
            // (and one of its partial trees) per stream.
            let mut acc: Vec<TaskSet> = vec![TaskSet::from_tasks(n, [t])];
            for istream in inputs {
                let mut next: Vec<TaskSet> = Vec::new();
                for base in &acc {
                    for &s in &istream.substreams {
                        for sub in &memo[s.0] {
                            next.push(base.union(sub));
                            if next.len() > limits.max_trees {
                                return Err(CoreError::McTreeExplosion {
                                    limit: limits.max_trees,
                                });
                            }
                        }
                    }
                }
                acc = dedup(next);
            }
            partials = acc;
        } else {
            // Union semantics: one substream through exactly one stream.
            for istream in inputs {
                for &s in &istream.substreams {
                    for sub in &memo[s.0] {
                        let mut tree = sub.clone();
                        tree.insert(t);
                        partials.push(tree);
                        if partials.len() > limits.max_trees {
                            return Err(CoreError::McTreeExplosion {
                                limit: limits.max_trees,
                            });
                        }
                    }
                }
            }
            partials = dedup(partials);
        }
        memo[t.0] = partials;
    }

    let mut trees: Vec<TaskSet> = Vec::new();
    for t in graph.sink_tasks() {
        trees.extend(memo[t.0].iter().cloned());
        if trees.len() > limits.max_trees {
            return Err(CoreError::McTreeExplosion {
                limit: limits.max_trees,
            });
        }
    }
    let mut trees = dedup(trees);
    trees.sort();
    Ok(trees)
}

/// A lower bound on the size (task count) of the smallest MC-tree, without
/// enumerating trees.
///
/// Used by the structure-aware planner to reject budgets that cannot
/// complete any tree. The bound must be *admissible* (never exceed the true
/// minimum), so joins take the `max` over their input branches rather than
/// the sum — branches may share upstream tasks (diamonds), in which case the
/// sum would overshoot and wrongly reject feasible budgets.
pub fn min_tree_size(graph: &TaskGraph) -> usize {
    let n = graph.n_tasks();
    let mut best: Vec<usize> = vec![usize::MAX; n];
    for &t in graph.topo_tasks() {
        let inputs = graph.inputs(t);
        if inputs.is_empty() {
            best[t.0] = 1;
            continue;
        }
        let op = graph.topology().operator(graph.operator_of(t));
        let correlated = op.semantics == InputSemantics::Correlated && inputs.len() > 1;
        let per_stream_min = |istream: &crate::model::InputStream| {
            istream
                .substreams
                .iter()
                .map(|&s| best[s.0])
                .min()
                .unwrap_or(usize::MAX)
        };
        best[t.0] = if correlated {
            let mut worst_branch = 0usize;
            for istream in inputs {
                let m = per_stream_min(istream);
                if m == usize::MAX {
                    worst_branch = usize::MAX;
                    break;
                }
                worst_branch = worst_branch.max(m);
            }
            worst_branch.saturating_add(1)
        } else {
            inputs
                .iter()
                .map(per_stream_min)
                .min()
                .map(|m| m.saturating_add(1))
                .unwrap_or(usize::MAX)
        };
    }
    graph
        .sink_tasks()
        .into_iter()
        .map(|t| best[t.0])
        .min()
        .unwrap_or(usize::MAX)
}

fn dedup(sets: Vec<TaskSet>) -> Vec<TaskSet> {
    // ppa-lint: allow(D001, reason = "membership-only dedup; output preserves input order")
    let mut seen: HashSet<TaskSet> = HashSet::with_capacity(sets.len());
    let mut out = Vec::with_capacity(sets.len());
    for s in sets {
        if seen.insert(s.clone()) {
            out.push(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OperatorSpec, Partitioning, TopologyBuilder};
    use std::error::Error;

    type TestResult = Result<(), Box<dyn Error>>;

    /// 4 sources -(merge)-> 2 mids -(merge)-> 1 sink: each source picks a
    /// unique path, so there are exactly 4 MC-trees of 3 tasks each.
    fn merge_chain() -> Result<TaskGraph, Box<dyn Error>> {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 4, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 1, 1.0));
        b.connect(s, m, Partitioning::Merge)?;
        b.connect(m, k, Partitioning::Merge)?;
        Ok(TaskGraph::new(b.build()?))
    }

    #[test]
    fn merge_chain_has_one_tree_per_source() -> TestResult {
        let g = merge_chain()?;
        let trees = enumerate_mc_trees(&g, McTreeLimits::default())?;
        assert_eq!(trees.len(), 4);
        for tree in &trees {
            assert_eq!(tree.len(), 3);
            assert!(tree.contains(TaskIndex(6)), "all trees end at the sink");
        }
        Ok(())
    }

    /// 2+2 sources full into a 2-task independent op, full into 1 sink:
    /// trees = (2+2 sources) × 2 mid tasks = 8.
    #[test]
    fn independent_full_topology_counts() -> TestResult {
        let mut b = TopologyBuilder::new();
        let s1 = b.add_operator(OperatorSpec::source("s1", 2, 10.0));
        let s2 = b.add_operator(OperatorSpec::source("s2", 2, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 1, 1.0));
        b.connect(s1, m, Partitioning::Full)?;
        b.connect(s2, m, Partitioning::Full)?;
        b.connect(m, k, Partitioning::Merge)?;
        let g = TaskGraph::new(b.build()?);
        let trees = enumerate_mc_trees(&g, McTreeLimits::default())?;
        assert_eq!(trees.len(), 8);
        for tree in &trees {
            assert_eq!(tree.len(), 3, "source, mid, sink");
        }
        Ok(())
    }

    /// Same shape but the mid operator is a join: each mid task needs one
    /// source from *each* source operator: 2 × 2 × 2 = 8 trees of 4 tasks.
    #[test]
    fn correlated_full_topology_counts() -> TestResult {
        let mut b = TopologyBuilder::new();
        let s1 = b.add_operator(OperatorSpec::source("s1", 2, 10.0));
        let s2 = b.add_operator(OperatorSpec::source("s2", 2, 10.0));
        let m = b.add_operator(OperatorSpec::join("m", 2, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 1, 1.0));
        b.connect(s1, m, Partitioning::Full)?;
        b.connect(s2, m, Partitioning::Full)?;
        b.connect(m, k, Partitioning::Merge)?;
        let g = TaskGraph::new(b.build()?);
        let trees = enumerate_mc_trees(&g, McTreeLimits::default())?;
        assert_eq!(trees.len(), 8);
        for tree in &trees {
            assert_eq!(tree.len(), 4, "one source from each operator, mid, sink");
        }
        Ok(())
    }

    #[test]
    fn explosion_guard_fires() -> TestResult {
        // A full chain: 4 × 4 × 4 × 4 trees = 256 > limit 100.
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 4, 10.0));
        let m1 = b.add_operator(OperatorSpec::map("m1", 4, 1.0));
        let m2 = b.add_operator(OperatorSpec::map("m2", 4, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 4, 1.0));
        b.connect(s, m1, Partitioning::Full)?;
        b.connect(m1, m2, Partitioning::Full)?;
        b.connect(m2, k, Partitioning::Full)?;
        let g = TaskGraph::new(b.build()?);
        let err = enumerate_mc_trees(&g, McTreeLimits { max_trees: 100 }).unwrap_err();
        assert!(matches!(err, CoreError::McTreeExplosion { limit: 100 }));
        // And with a generous limit the count is exactly 4^4.
        let trees = enumerate_mc_trees(&g, McTreeLimits::default())?;
        assert_eq!(trees.len(), 256);
        Ok(())
    }

    #[test]
    fn trees_are_deduplicated_on_shared_sources() -> TestResult {
        // One source task shared by a join's both branches through two maps:
        // src -> a -> j, src -> b -> j. The join's two streams share src, so
        // each tree contains src once.
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 1, 10.0));
        let a = b.add_operator(OperatorSpec::map("a", 1, 1.0));
        let c = b.add_operator(OperatorSpec::map("b", 1, 1.0));
        let j = b.add_operator(OperatorSpec::join("j", 1, 1.0));
        b.connect(s, a, Partitioning::OneToOne)?;
        b.connect(s, c, Partitioning::OneToOne)?;
        b.connect(a, j, Partitioning::OneToOne)?;
        b.connect(c, j, Partitioning::OneToOne)?;
        let g = TaskGraph::new(b.build()?);
        let trees = enumerate_mc_trees(&g, McTreeLimits::default())?;
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].len(), 4);
        Ok(())
    }

    #[test]
    fn min_tree_size_matches_enumeration_on_chains() -> TestResult {
        let g = merge_chain()?;
        let trees = enumerate_mc_trees(&g, McTreeLimits::default())?;
        let min = trees.iter().map(TaskSet::len).min().ok_or("no trees")?;
        assert_eq!(min_tree_size(&g), min, "exact on join-free topologies");
        Ok(())
    }

    #[test]
    fn min_tree_size_is_an_admissible_bound_for_joins() -> TestResult {
        let mut b = TopologyBuilder::new();
        let s1 = b.add_operator(OperatorSpec::source("s1", 2, 10.0));
        let s2 = b.add_operator(OperatorSpec::source("s2", 2, 10.0));
        let j = b.add_operator(OperatorSpec::join("j", 1, 1.0));
        b.connect(s1, j, Partitioning::Merge)?;
        b.connect(s2, j, Partitioning::Merge)?;
        let g = TaskGraph::new(b.build()?);
        let trees = enumerate_mc_trees(&g, McTreeLimits::default())?;
        let true_min = trees.iter().map(TaskSet::len).min().ok_or("no trees")?;
        assert_eq!(true_min, 3);
        let bound = min_tree_size(&g);
        assert!(
            bound <= true_min,
            "bound {bound} must not exceed {true_min}"
        );
        assert!(bound >= 2, "join + one branch at least");
        Ok(())
    }

    #[test]
    fn min_tree_size_bound_holds_on_diamonds() -> TestResult {
        // Shared source between both join branches: the true minimum tree is
        // 4 tasks (src, a, b, j); the sum rule would claim 2+2+1+... > 4.
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 1, 10.0));
        let a = b.add_operator(OperatorSpec::map("a", 1, 1.0));
        let c = b.add_operator(OperatorSpec::map("b", 1, 1.0));
        let j = b.add_operator(OperatorSpec::join("j", 1, 1.0));
        b.connect(s, a, Partitioning::OneToOne)?;
        b.connect(s, c, Partitioning::OneToOne)?;
        b.connect(a, j, Partitioning::OneToOne)?;
        b.connect(c, j, Partitioning::OneToOne)?;
        let g = TaskGraph::new(b.build()?);
        let trees = enumerate_mc_trees(&g, McTreeLimits::default())?;
        let true_min = trees.iter().map(TaskSet::len).min().ok_or("no trees")?;
        assert!(min_tree_size(&g) <= true_min);
        Ok(())
    }

    #[test]
    fn multi_sink_topologies_collect_all_roots() -> TestResult {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 2, 10.0));
        let k1 = b.add_operator(OperatorSpec::map("k1", 2, 1.0));
        let k2 = b.add_operator(OperatorSpec::map("k2", 2, 1.0));
        b.connect(s, k1, Partitioning::OneToOne)?;
        b.connect(s, k2, Partitioning::OneToOne)?;
        let g = TaskGraph::new(b.build()?);
        let trees = enumerate_mc_trees(&g, McTreeLimits::default())?;
        assert_eq!(trees.len(), 4, "2 per sink operator");
        Ok(())
    }
}
