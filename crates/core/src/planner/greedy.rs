//! Algorithm 2: the topology-agnostic greedy planner.
//!
//! Each task is scored by the objective value of the topology *if only that
//! task failed*; the `R` tasks whose individual failures hurt the most are
//! replicated. The paper uses this as the baseline that ignores MC-tree
//! structure: with small budgets the chosen tasks rarely assemble complete
//! MC-trees, so the realized OF is far below the structure-aware planner's —
//! the effect measured in Fig. 13 and 14.

use super::{Plan, PlanContext, Planner};
use crate::error::Result;
use crate::model::{TaskIndex, TaskSet};

/// Greedy planner (Algorithm 2). Complexity `O(N·M)` objective evaluations.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyPlanner;

impl Planner for GreedyPlanner {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn plan(&self, cx: &PlanContext, budget: usize) -> Result<Plan> {
        let n = cx.n_tasks();
        // Score each task by the damage its lone failure causes.
        let mut scored: Vec<(f64, usize)> = Vec::with_capacity(n);
        let mut failed = TaskSet::empty(n);
        for t in 0..n {
            failed.insert(TaskIndex(t));
            scored.push((cx.score_failed(&failed), t));
            failed.remove(TaskIndex(t));
        }
        // Ascending by OF-under-failure: most damaging tasks first; the task
        // index tie-break keeps the planner deterministic.
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));

        let tasks = TaskSet::from_tasks(n, scored.iter().take(budget).map(|&(_, t)| TaskIndex(t)));
        Ok(cx.make_plan(tasks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OperatorSpec, Partitioning, TaskWeights, TopologyBuilder};
    use crate::planner::DpPlanner;

    #[test]
    fn greedy_prefers_high_impact_tasks() {
        // A single sink fed by 4 sources through 2 mids: the sink's failure
        // zeroes OF, so it must be picked first.
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 4, 100.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 1, 1.0));
        b.connect(s, m, Partitioning::Merge).unwrap();
        b.connect(m, k, Partitioning::Merge).unwrap();
        let cx = PlanContext::new(&b.build().unwrap()).unwrap();
        let plan = GreedyPlanner.plan(&cx, 1).unwrap();
        assert!(
            plan.tasks.contains(TaskIndex(6)),
            "the sink is the most critical task"
        );
    }

    #[test]
    fn greedy_uses_exactly_budget_tasks() {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 4, 100.0));
        let k = b.add_operator(OperatorSpec::map("k", 2, 1.0));
        b.connect(s, k, Partitioning::Merge).unwrap();
        let cx = PlanContext::new(&b.build().unwrap()).unwrap();
        for budget in 0..=6 {
            let plan = GreedyPlanner.plan(&cx, budget).unwrap();
            assert_eq!(plan.resources(), budget.min(6));
        }
    }

    #[test]
    fn greedy_is_no_better_than_dp() {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(
            OperatorSpec::source("s", 4, 100.0)
                .with_weights(TaskWeights::Explicit(vec![8.0, 4.0, 2.0, 1.0])),
        );
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 1, 1.0));
        b.connect(s, m, Partitioning::Merge).unwrap();
        b.connect(m, k, Partitioning::Merge).unwrap();
        let cx = PlanContext::new(&b.build().unwrap()).unwrap();
        for budget in 0..=7 {
            let g = GreedyPlanner.plan(&cx, budget).unwrap();
            let dp = DpPlanner::default().plan(&cx, budget).unwrap();
            assert!(
                g.value <= dp.value + 1e-9,
                "budget {budget}: greedy {} must not beat optimal {}",
                g.value,
                dp.value
            );
        }
    }

    #[test]
    fn greedy_misses_mc_tree_completion_at_small_budgets() {
        // The defect the paper calls out: with budget 2 on a 3-deep chain,
        // greedy picks the two individually most damaging tasks (sink and a
        // mid), which do not form a complete MC-tree, so its realized OF is
        // 0 while DP finds... also 0 here (min tree is 3 tasks), but with
        // budget 3 DP completes a tree while greedy may not.
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 4, 100.0));
        let m = b.add_operator(OperatorSpec::map("m", 4, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 1, 1.0));
        b.connect(s, m, Partitioning::OneToOne).unwrap();
        b.connect(m, k, Partitioning::Merge).unwrap();
        let cx = PlanContext::new(&b.build().unwrap()).unwrap();
        let g = GreedyPlanner.plan(&cx, 3).unwrap();
        let dp = DpPlanner::default().plan(&cx, 3).unwrap();
        assert!(dp.value > 0.0);
        assert!(g.value <= dp.value + 1e-9);
    }
}
