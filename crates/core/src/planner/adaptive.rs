//! Dynamic plan adaptation (§V-C).
//!
//! The paper describes — but leaves as future work — adapting the partially
//! active replication plan as input rates drift: periodically collect task
//! rates, re-plan, deactivate replicas that fell out of the plan and spin up
//! replicas for tasks that entered it (initialized from their checkpoints).
//! This module implements the planning half:
//!
//! * [`adapt_plan`] computes the new plan against a re-rated context and
//!   returns the *migration* (replicas to activate / deactivate);
//! * [`AdaptivePlanner`] adds hysteresis: a migration is only worth doing if
//!   the OF improvement clears a threshold, since spinning up a replica
//!   costs a checkpoint ship plus catch-up (§V-C).

use super::{Plan, PlanContext, Planner};
use crate::error::Result;
use crate::model::TaskSet;

/// A plan migration: which replicas to create and which to tear down.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanAdaptation {
    /// The plan after adaptation.
    pub plan: Plan,
    /// Tasks gaining an active replica (need checkpoint ship + catch-up).
    pub activate: TaskSet,
    /// Tasks losing their active replica (resources released).
    pub deactivate: TaskSet,
    /// OF (or IC) of the old plan under the *new* rates.
    pub old_value: f64,
}

impl PlanAdaptation {
    /// Number of replicas that must be newly created.
    pub fn activation_cost(&self) -> usize {
        self.activate.len()
    }

    /// Objective improvement bought by the migration.
    pub fn gain(&self) -> f64 {
        self.plan.value - self.old_value
    }

    /// Whether the adaptation changes anything at all.
    pub fn is_noop(&self) -> bool {
        self.activate.is_empty() && self.deactivate.is_empty()
    }
}

/// Re-plans under `cx` (built from freshly observed rates) and diffs against
/// `old_plan`.
pub fn adapt_plan(
    cx: &PlanContext,
    planner: &dyn Planner,
    old_plan: &TaskSet,
    budget: usize,
) -> Result<PlanAdaptation> {
    let new_plan = planner.plan(cx, budget)?;
    let old_value = cx.score_plan(old_plan);
    Ok(PlanAdaptation {
        activate: new_plan.tasks.difference(old_plan),
        deactivate: old_plan.difference(&new_plan.tasks),
        plan: new_plan,
        old_value,
    })
}

/// A planner wrapper implementing §V-C's periodic adaptation with
/// hysteresis: keep the current plan unless re-planning improves the
/// objective by at least `min_gain` *and* the improvement per newly created
/// replica is at least `min_gain_per_activation`.
pub struct AdaptivePlanner<P> {
    pub inner: P,
    /// Minimum absolute objective improvement to migrate at all.
    pub min_gain: f64,
    /// Minimum improvement per activated replica (each activation costs a
    /// checkpoint ship and a catch-up phase).
    pub min_gain_per_activation: f64,
}

impl<P: Planner> AdaptivePlanner<P> {
    pub fn new(inner: P) -> Self {
        AdaptivePlanner {
            inner,
            min_gain: 0.01,
            min_gain_per_activation: 0.002,
        }
    }

    /// Decides whether to migrate from `current` given freshly observed
    /// rates (already baked into `cx`). Returns the adopted adaptation —
    /// a no-op keeping `current` when the gain does not clear hysteresis.
    pub fn step(
        &self,
        cx: &PlanContext,
        current: &TaskSet,
        budget: usize,
    ) -> Result<PlanAdaptation> {
        let candidate = adapt_plan(cx, &self.inner, current, budget)?;
        let worth_it = candidate.gain() >= self.min_gain
            && (candidate.activation_cost() == 0
                || candidate.gain() / candidate.activation_cost() as f64
                    >= self.min_gain_per_activation);
        if worth_it {
            Ok(candidate)
        } else {
            let old_value = candidate.old_value;
            Ok(PlanAdaptation {
                plan: Plan {
                    tasks: current.clone(),
                    value: old_value,
                },
                activate: TaskSet::empty(cx.n_tasks()),
                deactivate: TaskSet::empty(cx.n_tasks()),
                old_value,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{
        OperatorSpec, Partitioning, TaskIndex, TaskWeights, Topology, TopologyBuilder,
    };
    use crate::planner::StructureAwarePlanner;

    /// 4 sources (weighted) -> 2 mids -> sink; the weights are the knob the
    /// "observed rates" turn.
    fn topo(weights: Vec<f64>) -> Topology {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(
            OperatorSpec::source("s", 4, 100.0).with_weights(TaskWeights::Explicit(weights)),
        );
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 1, 1.0));
        b.connect(s, m, Partitioning::Merge).unwrap();
        b.connect(m, k, Partitioning::Merge).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn rate_shift_migrates_the_plan() {
        // Plan for a left-heavy workload, then observe a right-heavy one.
        let cx_old = PlanContext::new(&topo(vec![10.0, 1.0, 1.0, 1.0])).unwrap();
        let planner = StructureAwarePlanner::default();
        let old = planner.plan(&cx_old, 3).unwrap().tasks;
        assert!(
            old.contains(TaskIndex(0)),
            "heavy source 0 replicated first"
        );

        let cx_new = PlanContext::new(&topo(vec![1.0, 1.0, 1.0, 10.0])).unwrap();
        let adaptation = adapt_plan(&cx_new, &planner, &old, 3).unwrap();
        assert!(
            adaptation.plan.tasks.contains(TaskIndex(3)),
            "hot source 3 now replicated"
        );
        assert!(adaptation.activate.contains(TaskIndex(3)));
        assert!(adaptation.deactivate.contains(TaskIndex(0)));
        assert!(adaptation.gain() > 0.0);
    }

    #[test]
    fn stable_rates_are_a_noop() {
        let cx = PlanContext::new(&topo(vec![10.0, 1.0, 1.0, 1.0])).unwrap();
        let planner = StructureAwarePlanner::default();
        let old = planner.plan(&cx, 3).unwrap().tasks;
        let adaptive = AdaptivePlanner::new(planner);
        let step = adaptive.step(&cx, &old, 3).unwrap();
        assert!(step.is_noop(), "same rates, same plan: {step:?}");
        assert_eq!(step.plan.tasks, old);
    }

    #[test]
    fn hysteresis_suppresses_marginal_migrations() {
        let cx_old = PlanContext::new(&topo(vec![10.0, 1.0, 1.0, 1.0])).unwrap();
        let planner = StructureAwarePlanner::default();
        let old = planner.plan(&cx_old, 3).unwrap().tasks;
        // A barely different workload: re-planning would shuffle replicas
        // for a negligible gain; hysteresis must keep the current plan.
        let cx_new = PlanContext::new(&topo(vec![9.8, 1.05, 1.0, 1.0])).unwrap();
        let adaptive = AdaptivePlanner {
            inner: StructureAwarePlanner::default(),
            min_gain: 0.05,
            min_gain_per_activation: 0.01,
        };
        let step = adaptive.step(&cx_new, &old, 3).unwrap();
        assert!(step.is_noop(), "marginal shift must not migrate");
    }

    #[test]
    fn hysteresis_allows_large_migrations() {
        let cx_old = PlanContext::new(&topo(vec![10.0, 1.0, 1.0, 1.0])).unwrap();
        let planner = StructureAwarePlanner::default();
        let old = planner.plan(&cx_old, 3).unwrap().tasks;
        let cx_new = PlanContext::new(&topo(vec![1.0, 1.0, 1.0, 20.0])).unwrap();
        let adaptive = AdaptivePlanner::new(StructureAwarePlanner::default());
        let step = adaptive.step(&cx_new, &old, 3).unwrap();
        assert!(!step.is_noop());
        assert!(step.plan.tasks.contains(TaskIndex(3)));
    }

    #[test]
    fn budget_shrink_deactivates_only() {
        let cx = PlanContext::new(&topo(vec![4.0, 3.0, 2.0, 1.0])).unwrap();
        let planner = StructureAwarePlanner::default();
        let old = planner.plan(&cx, 7).unwrap().tasks;
        let adaptation = adapt_plan(&cx, &planner, &old, 3).unwrap();
        assert!(adaptation.plan.resources() <= 3);
        assert!(adaptation.deactivate.len() >= 4, "budget shrank by 4");
    }
}
