//! Algorithm 1: the exact bottom-up dynamic program over MC-tree unions.
//!
//! Candidate plans are unions of MC-trees. Resource usage grows one unit at
//! a time; at usage `u`, every candidate plan `CP` is expanded with each
//! MC-tree whose non-replicated task count equals `u − |CP|`, so a plan's
//! size always equals the usage at which it was created. A plan is retired
//! from the working set once no remaining tree can ever match the growing
//! difference (paper lines 7 and 12); retired plans stay eligible for the
//! final arg-max, which (together with the tie-break on fewer resources)
//! realizes Theorem 1.
//!
//! The working set is worst-case exponential in the number of MC-trees
//! (`O(2^T)`, §IV-A), so the planner carries an explicit candidate cap and
//! reports [`CoreError::DpExplosion`] beyond it.

use super::{Plan, PlanContext, Planner};
use crate::error::{CoreError, Result};
use crate::model::TaskSet;
use std::collections::BTreeSet;

/// Exact planner (Algorithm 1). Use only on topologies whose MC-tree count
/// is modest; otherwise it returns an explosion error and the caller should
/// fall back to [`super::StructureAwarePlanner`].
#[derive(Debug, Clone, Copy)]
pub struct DpPlanner {
    /// Maximum number of simultaneously tracked candidate plans.
    pub max_candidates: usize,
}

impl Default for DpPlanner {
    fn default() -> Self {
        DpPlanner {
            max_candidates: 2_000_000,
        }
    }
}

impl Planner for DpPlanner {
    fn name(&self) -> &'static str {
        "DP"
    }

    fn plan(&self, cx: &PlanContext, budget: usize) -> Result<Plan> {
        let trees = cx.mc_trees()?;
        let n = cx.n_tasks();
        if trees.is_empty() || budget == 0 {
            return Ok(cx.make_plan(TaskSet::empty(n)));
        }

        // SC: live candidate plans; retired: plans with no expansions left.
        // A BTreeSet so candidate iteration order is fixed by construction
        // (the arg-max below is additionally total-order tie-broken, but
        // the planner should not need that second line of defence).
        let mut sc: BTreeSet<TaskSet> = BTreeSet::new();
        sc.insert(TaskSet::empty(n));
        let mut retired: Vec<TaskSet> = Vec::new();

        for usage in 1..=budget {
            let mut additions: Vec<TaskSet> = Vec::new();
            let mut removals: Vec<TaskSet> = Vec::new();

            for cp in &sc {
                let dif = usage - cp.len();
                // Largest non-replicated task count among trees not yet
                // fully contained in the plan.
                let mut max_nonrep = None;
                for tree in trees {
                    let nonrep = tree.count_difference(cp);
                    if nonrep > 0 {
                        max_nonrep = Some(max_nonrep.map_or(nonrep, |m: usize| m.max(nonrep)));
                    }
                }
                match max_nonrep {
                    // All trees covered: nothing left to add.
                    None => removals.push(cp.clone()),
                    Some(u) if dif > u => removals.push(cp.clone()),
                    Some(_) => {
                        for tree in trees {
                            if tree.count_difference(cp) == dif {
                                additions.push(cp.union(tree));
                            }
                        }
                    }
                }
            }

            for cp in removals {
                sc.remove(&cp);
                retired.push(cp);
            }
            for plan in additions {
                sc.insert(plan);
                if sc.len() > self.max_candidates {
                    return Err(CoreError::DpExplosion {
                        limit: self.max_candidates,
                    });
                }
            }
        }

        // Arg-max over live and retired candidates; prefer fewer resources on
        // ties (Theorem 1), then the lexicographically smallest set, so the
        // winner never depends on candidate iteration order and identical
        // runs always return the same (equally optimal) plan.
        let mut best = TaskSet::empty(n);
        let mut best_score = cx.score_plan(&best);
        for cp in sc.iter().chain(retired.iter()) {
            let score = cx.score_plan(cp);
            let tied = score > best_score - 1e-12;
            if score > best_score + 1e-12
                || (tied && cp.len() < best.len())
                || (tied && cp.len() == best.len() && *cp < best)
            {
                best = cp.clone();
                // Keep the running *maximum* on tie wins — adopting the
                // tied (possibly epsilon-lower) score would let the tie
                // threshold drift downward and re-introduce iteration-order
                // dependence across near-tie chains.
                best_score = best_score.max(score);
            }
        }
        Ok(Plan {
            tasks: best,
            value: best_score,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OperatorSpec, Partitioning, TaskWeights, Topology, TopologyBuilder};
    use crate::planner::BruteForcePlanner;

    fn merge_tree(weights: Option<Vec<f64>>) -> Topology {
        let mut b = TopologyBuilder::new();
        let mut src = OperatorSpec::source("s", 4, 100.0);
        if let Some(w) = weights {
            src = src.with_weights(TaskWeights::Explicit(w));
        }
        let s = b.add_operator(src);
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 1, 1.0));
        b.connect(s, m, Partitioning::Merge).unwrap();
        b.connect(m, k, Partitioning::Merge).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dp_replicates_the_heaviest_tree_first() {
        // Sources with very skewed rates: the optimal 3-task plan is the
        // tree through the heaviest source.
        let t = merge_tree(Some(vec![10.0, 1.0, 1.0, 1.0]));
        let cx = PlanContext::new(&t).unwrap();
        let plan = DpPlanner::default().plan(&cx, 3).unwrap();
        assert_eq!(plan.resources(), 3);
        assert!(
            plan.tasks.contains(crate::model::TaskIndex(0)),
            "heaviest source chosen"
        );
        assert!(plan.value > 0.0);
    }

    #[test]
    fn dp_matches_brute_force_across_budgets() {
        let t = merge_tree(Some(vec![5.0, 4.0, 2.0, 1.0]));
        let cx = PlanContext::new(&t).unwrap();
        for budget in 0..=7 {
            let dp = DpPlanner::default().plan(&cx, budget).unwrap();
            let bf = BruteForcePlanner::default().plan(&cx, budget).unwrap();
            assert!(
                (dp.value - bf.value).abs() < 1e-9,
                "budget {budget}: dp {} vs brute force {}",
                dp.value,
                bf.value
            );
            assert!(dp.resources() <= budget);
        }
    }

    #[test]
    fn dp_matches_brute_force_on_a_join_topology() {
        let mut b = TopologyBuilder::new();
        let s1 = b.add_operator(
            OperatorSpec::source("s1", 2, 10.0).with_weights(TaskWeights::Explicit(vec![3.0, 1.0])),
        );
        let s2 = b.add_operator(
            OperatorSpec::source("s2", 2, 10.0).with_weights(TaskWeights::Explicit(vec![1.0, 2.0])),
        );
        let j = b.add_operator(OperatorSpec::join("j", 2, 0.5));
        let k = b.add_operator(OperatorSpec::map("k", 1, 1.0));
        b.connect(s1, j, Partitioning::Full).unwrap();
        b.connect(s2, j, Partitioning::Full).unwrap();
        b.connect(j, k, Partitioning::Merge).unwrap();
        let cx = PlanContext::new(&b.build().unwrap()).unwrap();
        for budget in 0..=7 {
            let dp = DpPlanner::default().plan(&cx, budget).unwrap();
            let bf = BruteForcePlanner::default().plan(&cx, budget).unwrap();
            assert!(
                (dp.value - bf.value).abs() < 1e-9,
                "budget {budget}: dp {} vs bf {}",
                dp.value,
                bf.value
            );
        }
    }

    #[test]
    fn dp_uses_no_more_than_budget() {
        let t = merge_tree(None);
        let cx = PlanContext::new(&t).unwrap();
        for budget in 0..=7 {
            let plan = DpPlanner::default().plan(&cx, budget).unwrap();
            assert!(plan.resources() <= budget);
        }
    }

    #[test]
    fn dp_full_budget_replicates_everything_useful() {
        let t = merge_tree(None);
        let cx = PlanContext::new(&t).unwrap();
        let plan = DpPlanner::default().plan(&cx, 7).unwrap();
        assert!(
            (plan.value - 1.0).abs() < 1e-9,
            "full budget must reach OF = 1"
        );
        assert_eq!(plan.resources(), 7);
    }

    #[test]
    fn dp_explosion_guard() {
        let t = merge_tree(None);
        let cx = PlanContext::new(&t).unwrap();
        let planner = DpPlanner { max_candidates: 1 };
        assert!(matches!(
            planner.plan(&cx, 7),
            Err(CoreError::DpExplosion { limit: 1 })
        ));
    }

    #[test]
    fn theorem1_tie_break_prefers_fewer_resources() {
        // Uniform rates. With budget 4 the optimum is one tree plus the
        // sibling source sharing the same mid (covering two trees, OF 0.5).
        // With budget 5 no fifth task helps (the next tree needs two more
        // tasks), so Theorem 1's tie-break must return the 4-task plan.
        let t = merge_tree(None);
        let cx = PlanContext::new(&t).unwrap();
        let plan4 = DpPlanner::default().plan(&cx, 4).unwrap();
        assert_eq!(plan4.resources(), 4);
        assert!((plan4.value - 0.5).abs() < 1e-9);
        let plan5 = DpPlanner::default().plan(&cx, 5).unwrap();
        assert_eq!(plan5.resources(), 4, "no wasted fifth task");
        assert!((plan5.value - 0.5).abs() < 1e-9);
    }
}
