//! Replication planners (§IV): given a topology and a budget of `R` actively
//! replicable tasks, choose the task set maximizing the quality of tentative
//! outputs under a worst-case correlated failure (Definition 2).
//!
//! * [`DpPlanner`] — Algorithm 1, the exact dynamic program over MC-trees.
//! * [`GreedyPlanner`] — Algorithm 2, topology-agnostic task ranking.
//! * [`StructureAwarePlanner`] — Algorithms 3–5, decomposition into
//!   structured/full sub-topologies with profit-density expansion.
//! * [`BruteForcePlanner`] — exhaustive search over MC-tree subsets, used as
//!   the optimality oracle in tests.

pub mod adaptive;
mod dp;
mod greedy;
pub mod structure;

pub use adaptive::{adapt_plan, AdaptivePlanner, PlanAdaptation};
pub use dp::DpPlanner;
pub use greedy::GreedyPlanner;
pub use structure::StructureAwarePlanner;

use crate::error::Result;
use crate::fidelity::FidelityModel;
use crate::mctree::{enumerate_mc_trees_with, McTreeLimits};
use crate::model::{TaskGraph, TaskSet, Topology};
use crate::rates::RateModel;
use std::sync::OnceLock;

/// Which quality metric a planner optimizes. The paper optimizes OF; the
/// Fig. 12 experiment additionally produces IC-optimized plans to show that
/// IC mispredicts accuracy for queries with joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    #[default]
    OutputFidelity,
    InternalCompleteness,
}

/// A partially active replication plan: the set of actively replicated tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The actively replicated tasks.
    pub tasks: TaskSet,
    /// The objective value (OF or IC, per the context's [`Objective`]) of the
    /// plan under the worst-case correlated failure.
    pub value: f64,
}

impl Plan {
    /// Number of replication slots the plan consumes.
    pub fn resources(&self) -> usize {
        self.tasks.len()
    }
}

/// Everything a planner needs: the task graph, rates, the metric to
/// optimize, and a lazily enumerated MC-tree cache.
pub struct PlanContext {
    graph: TaskGraph,
    rates: RateModel,
    objective: Objective,
    mc_limits: McTreeLimits,
    mc_trees: OnceLock<Result<Vec<TaskSet>>>,
    /// Candidate correlated-failure sets (typically derived from a fault
    /// domain hierarchy via [`PlanContext::with_fault_domains`]). `None`
    /// means Definition 2's worst case: every non-replicated task down.
    failure_sets: Option<Vec<TaskSet>>,
    /// Lazily cached objective value of the no-failure state — the fold
    /// identity of the domain-aware [`PlanContext::score_plan`], which
    /// planners call per candidate (reset when the objective switches).
    none_failed: OnceLock<f64>,
}

impl PlanContext {
    /// Builds a context (task graph + rates) for a topology, optimizing OF.
    pub fn new(topology: &Topology) -> Result<Self> {
        Ok(Self::from_graph(TaskGraph::new(topology.clone())))
    }

    /// Builds a context from an already expanded task graph.
    pub fn from_graph(graph: TaskGraph) -> Self {
        let rates = RateModel::compute(&graph);
        PlanContext {
            graph,
            rates,
            objective: Objective::OutputFidelity,
            mc_limits: McTreeLimits::default(),
            mc_trees: OnceLock::new(),
            failure_sets: None,
            none_failed: OnceLock::new(),
        }
    }

    /// Builds a context whose correlated-failure sets are *derived from a
    /// fault-domain hierarchy* instead of Definition 2's all-down worst
    /// case: every proper domain (rack, switch, power zone, ...) of the
    /// tree contributes the set of tasks whose hosting node it contains.
    /// `node_of_task[t]` is task `t`'s primary node.
    ///
    /// Planners that score candidates through [`PlanContext::score_plan`]
    /// (greedy, structure-aware, brute force) then optimize the worst case
    /// over *plausible* domain failures, so replication budget is not
    /// wasted hedging against failures the cluster topology cannot
    /// produce. The DP planner keeps optimizing Definition 2 internally
    /// (its recurrence is defined on the all-down case) but its reported
    /// plan value uses the domain-aware score.
    pub fn with_fault_domains(
        topology: &Topology,
        domains: &ppa_faults::FaultDomainTree,
        node_of_task: &[ppa_faults::NodeId],
    ) -> Result<Self> {
        let cx = Self::new(topology)?;
        let n = cx.n_tasks();
        if node_of_task.len() != n {
            return Err(crate::error::CoreError::TaskNodeMapLength {
                expected: n,
                got: node_of_task.len(),
            });
        }
        let mut sets: Vec<TaskSet> = Vec::new();
        for d in domains.proper_domains() {
            let nodes = domains.nodes_under(d);
            let set = TaskSet::from_tasks(
                n,
                (0..n)
                    .filter(|&t| nodes.binary_search(&node_of_task[t]).is_ok())
                    .map(crate::model::TaskIndex),
            );
            if !set.is_empty() && !sets.contains(&set) {
                sets.push(set);
            }
        }
        Ok(cx.with_failure_sets(sets))
    }

    /// Overrides the candidate correlated-failure sets directly.
    pub fn with_failure_sets(mut self, sets: Vec<TaskSet>) -> Self {
        self.failure_sets = Some(sets);
        self
    }

    /// The candidate correlated-failure sets, when the context was built
    /// from a fault-domain hierarchy (or had sets attached explicitly).
    pub fn failure_sets(&self) -> Option<&[TaskSet]> {
        self.failure_sets.as_deref()
    }

    /// Switches the metric the planners optimize.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self.none_failed = OnceLock::new(); // the cached baseline is per-objective
        self
    }

    /// Overrides the MC-tree enumeration guard.
    pub fn with_mc_limits(mut self, limits: McTreeLimits) -> Self {
        self.mc_limits = limits;
        self
    }

    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    pub fn rates(&self) -> &RateModel {
        &self.rates
    }

    pub fn objective(&self) -> Objective {
        self.objective
    }

    pub fn n_tasks(&self) -> usize {
        self.graph.n_tasks()
    }

    /// The fidelity model over this context's graph and rates.
    pub fn fidelity(&self) -> FidelityModel<'_> {
        FidelityModel::new(&self.graph, &self.rates)
    }

    /// Objective value when `failed` tasks are down.
    pub fn score_failed(&self, failed: &TaskSet) -> f64 {
        match self.objective {
            Objective::OutputFidelity => self.fidelity().output_fidelity(failed),
            Objective::InternalCompleteness => self.fidelity().internal_completeness(failed),
        }
    }

    /// Objective value of a plan under the worst-case correlated failure.
    ///
    /// Without failure sets this is Definition 2: all non-replicated tasks
    /// down. With domain-derived sets ([`PlanContext::with_fault_domains`])
    /// it is the minimum over the candidate sets, each masked by the plan
    /// (replicated tasks survive their domain's failure).
    pub fn score_plan(&self, plan: &TaskSet) -> f64 {
        match &self.failure_sets {
            None => self.score_failed(&plan.complement()),
            Some(sets) => {
                let none_failed = *self
                    .none_failed
                    .get_or_init(|| self.score_failed(&TaskSet::empty(self.n_tasks())));
                sets.iter()
                    .map(|d| self.score_failed(&d.difference(plan)))
                    .fold(none_failed, f64::min)
            }
        }
    }

    /// Output fidelity of a plan, regardless of the planning objective.
    pub fn of_plan(&self, plan: &TaskSet) -> f64 {
        self.fidelity().of_plan(plan)
    }

    /// Internal completeness of a plan, regardless of the objective.
    pub fn ic_plan(&self, plan: &TaskSet) -> f64 {
        self.fidelity().ic_plan(plan)
    }

    /// The topology's MC-trees (cached; `Err` if enumeration explodes).
    /// Under the IC objective joins are treated as unions, matching what
    /// that metric believes a complete tree is.
    pub fn mc_trees(&self) -> Result<&[TaskSet]> {
        let joins_as_union = self.objective == Objective::InternalCompleteness;
        match self
            .mc_trees
            .get_or_init(|| enumerate_mc_trees_with(&self.graph, self.mc_limits, joins_as_union))
        {
            Ok(trees) => Ok(trees.as_slice()),
            Err(e) => Err(e.clone()),
        }
    }

    /// Wraps a task set into a [`Plan`] with its objective value.
    pub fn make_plan(&self, tasks: TaskSet) -> Plan {
        let value = self.score_plan(&tasks);
        Plan { tasks, value }
    }
}

/// A replication planner for Definition 2.
pub trait Planner {
    /// Short name used in experiment reports ("DP", "Greedy", "SA", ...).
    fn name(&self) -> &'static str;

    /// Chooses at most `budget` tasks to actively replicate.
    fn plan(&self, cx: &PlanContext, budget: usize) -> Result<Plan>;
}

/// Exhaustive search over subsets of MC-trees: the optimality oracle used in
/// tests to validate [`DpPlanner`]. Exponential in the number of MC-trees.
#[derive(Debug, Clone, Copy)]
pub struct BruteForcePlanner {
    /// Refuses instances with more MC-trees than this (default 20).
    pub max_trees: usize,
}

impl Default for BruteForcePlanner {
    fn default() -> Self {
        BruteForcePlanner { max_trees: 20 }
    }
}

impl Planner for BruteForcePlanner {
    fn name(&self) -> &'static str {
        "BruteForce"
    }

    fn plan(&self, cx: &PlanContext, budget: usize) -> Result<Plan> {
        let trees = cx.mc_trees()?;
        if trees.len() > self.max_trees {
            return Err(crate::error::CoreError::McTreeExplosion {
                limit: self.max_trees,
            });
        }
        let n = cx.n_tasks();
        let mut best = TaskSet::empty(n);
        let mut best_score = cx.score_plan(&best);
        for mask in 0u64..(1u64 << trees.len()) {
            let mut union = TaskSet::empty(n);
            for (i, tree) in trees.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    union.union_with(tree);
                }
            }
            if union.len() > budget {
                continue;
            }
            let score = cx.score_plan(&union);
            if score > best_score + 1e-12
                || (score > best_score - 1e-12 && union.len() < best.len())
            {
                best = union;
                best_score = score;
            }
        }
        Ok(Plan {
            tasks: best,
            value: best_score,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OperatorSpec, Partitioning, TopologyBuilder};

    fn small() -> Topology {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 2, 10.0));
        let k = b.add_operator(OperatorSpec::map("k", 1, 1.0));
        b.connect(s, k, Partitioning::Merge).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn context_scores_and_plans() {
        let cx = PlanContext::new(&small()).unwrap();
        assert_eq!(cx.n_tasks(), 3);
        let all = TaskSet::full(3);
        assert!((cx.score_plan(&all) - 1.0).abs() < 1e-12);
        let plan = cx.make_plan(all);
        assert_eq!(plan.resources(), 3);
        assert!((plan.value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mc_trees_are_cached() {
        let cx = PlanContext::new(&small()).unwrap();
        let a = cx.mc_trees().unwrap().as_ptr();
        let b = cx.mc_trees().unwrap().as_ptr();
        assert_eq!(a, b);
    }

    #[test]
    fn brute_force_finds_a_tree_when_budget_allows() {
        let cx = PlanContext::new(&small()).unwrap();
        // Budget 2 fits one MC-tree (1 source + sink).
        let plan = BruteForcePlanner::default().plan(&cx, 2).unwrap();
        assert_eq!(plan.resources(), 2);
        assert!(plan.value > 0.0);
        // Budget 1 fits nothing useful.
        let plan = BruteForcePlanner::default().plan(&cx, 1).unwrap();
        assert_eq!(plan.resources(), 0);
        assert_eq!(plan.value, 0.0);
    }

    #[test]
    fn fault_domains_derive_failure_sets_and_relax_scoring() {
        use ppa_faults::FaultDomainTree;
        let t = small(); // 2 source tasks + 1 sink task
                         // Tasks 0,1 (sources) on nodes 0,1 in rack A; task 2 (sink) on
                         // node 2 in rack B.
        let node_of_task = [0usize, 1, 2];
        let racks = FaultDomainTree::racks(&[0, 1, 2], 2);
        let cx = PlanContext::with_fault_domains(&t, &racks, &node_of_task).unwrap();
        // Two proper domains → two distinct failure sets.
        assert_eq!(cx.failure_sets().unwrap().len(), 2);

        // Under Definition 2 an empty plan scores 0 (everything dies); under
        // the rack model the worst single-rack failure still leaves either
        // the sink or the sources, but never a complete source→sink tree,
        // so the empty plan still scores 0 here.
        let empty = TaskSet::empty(3);
        assert_eq!(cx.score_plan(&empty), 0.0);

        // Replicating the sink makes the cluster survive the sink's rack
        // failing — but rack A dying still kills both sources, so OF stays
        // 0. Replicating one source *and* the sink covers both failures:
        // whichever rack dies, a full tree survives.
        let sink_only = TaskSet::from_tasks(3, [crate::model::TaskIndex(2)]);
        assert_eq!(cx.score_plan(&sink_only), 0.0);
        let covered =
            TaskSet::from_tasks(3, [crate::model::TaskIndex(0), crate::model::TaskIndex(2)]);
        assert!(
            cx.score_plan(&covered) > 0.0,
            "a plan covering every rack failure scores positively under the domain model"
        );
        // ... while Definition 2 gives the same plan a zero (the other
        // source task is assumed dead too, halving the source rate but the
        // tree survives — actually check both models agree on sign).
        let def2 = PlanContext::new(&t).unwrap();
        assert!(
            cx.score_plan(&covered) >= def2.score_plan(&covered),
            "domain-restricted failures can only improve the worst case"
        );
    }

    #[test]
    fn fault_domains_reject_short_node_maps() {
        use ppa_faults::FaultDomainTree;
        let t = small();
        let racks = FaultDomainTree::racks(&[0, 1, 2], 2);
        // 3 tasks but only 2 mapped nodes: a typed error, not an abort.
        let err = match PlanContext::with_fault_domains(&t, &racks, &[0, 1]) {
            Err(e) => e,
            Ok(_) => panic!("short node map accepted"),
        };
        assert_eq!(
            err,
            crate::error::CoreError::TaskNodeMapLength {
                expected: 3,
                got: 2
            }
        );
        assert!(err.to_string().contains("2 task(s)"), "{err}");
    }

    #[test]
    fn explicit_failure_sets_override() {
        let cx = PlanContext::new(&small())
            .unwrap()
            .with_failure_sets(vec![]);
        // No plausible failure at all: every plan is perfect.
        assert_eq!(cx.score_plan(&TaskSet::empty(3)), 1.0);
    }

    #[test]
    fn objective_switch_changes_scoring() {
        // Join where the two metrics diverge.
        let mut b = TopologyBuilder::new();
        let s1 = b.add_operator(OperatorSpec::source("s1", 2, 10.0));
        let s2 = b.add_operator(OperatorSpec::source("s2", 2, 10.0));
        let j = b.add_operator(OperatorSpec::join("j", 1, 1.0));
        b.connect(s1, j, Partitioning::Merge).unwrap();
        b.connect(s2, j, Partitioning::Merge).unwrap();
        let t = b.build().unwrap();

        let cx_of = PlanContext::new(&t).unwrap();
        let cx_ic = PlanContext::new(&t)
            .unwrap()
            .with_objective(Objective::InternalCompleteness);
        // Plan covering one source of s1 plus the join, nothing of s2.
        let plan = TaskSet::from_tasks(5, [crate::model::TaskIndex(0), crate::model::TaskIndex(4)]);
        assert_eq!(cx_of.score_plan(&plan), 0.0, "join starves without s2");
        assert!(cx_ic.score_plan(&plan) > 0.0, "IC ignores the correlation");
    }
}
