//! Structure-aware planning (§IV-C): decompose the topology into *full* and
//! *structured* sub-topologies (Algorithm 5's split step), plan each with a
//! dedicated algorithm (Algorithms 3 and 4), and combine expansions by
//! profit density.

mod aware;
mod full;
mod structured;
mod units;

pub use aware::StructureAwarePlanner;
pub use full::{operator_deltas, plan_full};
pub use structured::plan_structured;
pub use units::{enumerate_unit_segments, UnitGraph};

use crate::model::{OperatorId, Partitioning, Topology};

/// The two sub-topology classes of §IV-C.
///
/// * `Full` — every operator partitions its output with `Full`.
/// * `Structured` — no internal edge uses `Full` (only the sub-topology's
///   output operators may partition with `Full`, toward the next
///   sub-topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubKind {
    Structured,
    Full,
}

/// One sub-topology produced by [`decompose`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubTopology {
    pub kind: SubKind,
    /// Member operators, ascending by id.
    pub ops: Vec<OperatorId>,
}

/// Splits a topology into full/structured sub-topologies with multiple
/// upstream DFS passes starting from the sink operators (§IV-C3).
///
/// Starting from each start point, the DFS absorbs upstream operators whose
/// connecting edge is compatible with the sub-topology's kind (`Full` edges
/// for full sub-topologies, non-`Full` edges for structured ones);
/// incompatible upstream operators become new start points. Every operator
/// is claimed by exactly one sub-topology. Sub-topologies are returned in
/// discovery order (sink-side first).
pub fn decompose(topology: &Topology) -> Vec<SubTopology> {
    let n = topology.n_operators();
    let mut claimed = vec![false; n];
    let mut start_points: Vec<OperatorId> = topology.sinks();
    let mut subs = Vec::new();

    let mut sp_head = 0;
    while sp_head < start_points.len() {
        let os = start_points[sp_head];
        sp_head += 1;
        if claimed[os.0] {
            continue;
        }

        // Kind from the partitioning of the start operator's input edges:
        // all-Full inputs seed a full sub-topology, anything else (including
        // a pure source) seeds a structured one.
        let in_edges = topology.input_edges(os);
        let kind = if !in_edges.is_empty()
            && in_edges
                .iter()
                .all(|&e| topology.edge(e).partitioning == Partitioning::Full)
        {
            SubKind::Full
        } else {
            SubKind::Structured
        };

        claimed[os.0] = true;
        let mut ops = vec![os];
        let mut stack = vec![os];
        while let Some(o) = stack.pop() {
            for &e in topology.input_edges(o) {
                let edge = topology.edge(e);
                let up = edge.from;
                let compatible = match kind {
                    SubKind::Full => edge.partitioning == Partitioning::Full,
                    SubKind::Structured => edge.partitioning != Partitioning::Full,
                };
                if claimed[up.0] {
                    continue;
                }
                if compatible {
                    claimed[up.0] = true;
                    ops.push(up);
                    stack.push(up);
                } else {
                    start_points.push(up);
                }
            }
        }
        ops.sort();
        subs.push(SubTopology { kind, ops });
    }
    subs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OperatorSpec, TopologyBuilder};

    #[test]
    fn all_full_topology_is_one_full_sub() {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 2, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 3, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 2, 1.0));
        b.connect(s, m, Partitioning::Full).unwrap();
        b.connect(m, k, Partitioning::Full).unwrap();
        let t = b.build().unwrap();
        let subs = decompose(&t);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].kind, SubKind::Full);
        assert_eq!(subs[0].ops.len(), 3);
    }

    #[test]
    fn all_structured_topology_is_one_structured_sub() {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 4, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 1, 1.0));
        b.connect(s, m, Partitioning::Merge).unwrap();
        b.connect(m, k, Partitioning::Merge).unwrap();
        let t = b.build().unwrap();
        let subs = decompose(&t);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].kind, SubKind::Structured);
    }

    #[test]
    fn mixed_topology_splits_at_full_boundary() {
        // Fig. 4 style: structured upstream half feeding a downstream half
        // through a Full edge.
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("O1", 4, 10.0));
        let o2 = b.add_operator(OperatorSpec::map("O2", 2, 1.0));
        let o3 = b.add_operator(OperatorSpec::map("O3", 2, 1.0));
        let o4 = b.add_operator(OperatorSpec::map("O4", 3, 1.0));
        let o5 = b.add_operator(OperatorSpec::map("O5", 1, 1.0));
        b.connect(s, o2, Partitioning::Merge).unwrap();
        b.connect(o2, o3, Partitioning::OneToOne).unwrap();
        b.connect(o3, o4, Partitioning::Full).unwrap();
        b.connect(o4, o5, Partitioning::Merge).unwrap();
        let t = b.build().unwrap();
        let subs = decompose(&t);
        assert_eq!(subs.len(), 2);
        // Sink-side sub first: {O4, O5} structured (O4->O5 is merge).
        assert_eq!(subs[0].ops, vec![OperatorId(3), OperatorId(4)]);
        assert_eq!(subs[0].kind, SubKind::Structured);
        // Upstream sub: {O1, O2, O3}.
        assert_eq!(
            subs[1].ops,
            vec![OperatorId(0), OperatorId(1), OperatorId(2)]
        );
        assert_eq!(subs[1].kind, SubKind::Structured);
    }

    #[test]
    fn full_tail_is_detected() {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 2, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 2, 1.0));
        b.connect(s, m, Partitioning::OneToOne).unwrap();
        b.connect(m, k, Partitioning::Full).unwrap();
        let t = b.build().unwrap();
        let subs = decompose(&t);
        assert_eq!(subs.len(), 2);
        assert_eq!(
            subs[0].kind,
            SubKind::Full,
            "sink with full input seeds a full sub"
        );
        // The mid operator partitions its output with Full, so it belongs
        // to the full sub-topology too.
        assert_eq!(subs[0].ops, vec![OperatorId(1), OperatorId(2)]);
        assert_eq!(subs[1].kind, SubKind::Structured);
        assert_eq!(subs[1].ops, vec![OperatorId(0)]);
    }

    #[test]
    fn every_operator_is_claimed_exactly_once() {
        let mut b = TopologyBuilder::new();
        let s1 = b.add_operator(OperatorSpec::source("s1", 2, 10.0));
        let s2 = b.add_operator(OperatorSpec::source("s2", 2, 10.0));
        let j = b.add_operator(OperatorSpec::join("j", 2, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 2, 1.0));
        b.connect(s1, j, Partitioning::Full).unwrap();
        b.connect(s2, j, Partitioning::OneToOne).unwrap();
        b.connect(j, k, Partitioning::OneToOne).unwrap();
        let t = b.build().unwrap();
        let subs = decompose(&t);
        let mut seen = vec![0usize; t.n_operators()];
        for sub in &subs {
            for op in &sub.ops {
                seen[op.0] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "claim counts: {seen:?}");
    }
}
