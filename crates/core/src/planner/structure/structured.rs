//! Algorithm 3: planning one *structured* sub-topology.
//!
//! The plan is grown one candidate group at a time. A candidate is either a
//! single segment (if replicating it alone already raises the objective —
//! i.e. it completes an MC-tree with already-replicated segments), or a
//! chain of connected segments gathered by a BFS across neighbouring units
//! (so that the group forms a complete MC-tree by itself). Among all
//! candidates the one with the highest *profit density*
//! `(score(P ∪ CG) − score(P)) / |CG \ P|` is applied.

use super::units::{sets_connected, UnitGraph};
use crate::model::{TaskGraph, TaskSet};

const EPS: f64 = 1e-9;

/// Expands `plan` with segments of the sub-topology described by `units`.
///
/// * `budget` caps the total number of tasks in `plan` after expansion;
/// * `max_steps` caps how many candidate groups are applied (use 1 for
///   Algorithm 5's incremental proposals, `usize::MAX` to fill the budget);
/// * `score` evaluates a candidate plan (callers pass a sub-topology-local
///   objective, see [`super::StructureAwarePlanner`]);
/// * `eval_cap` bounds how many segments per unit are tried as group seeds;
/// * `allow_blind` permits proposing the heaviest unplanned segment even
///   when no candidate raises the score — needed when completing a join
///   whose input streams live in *different* sub-topologies: neither sub
///   gains alone, so Algorithm 5's cross-sub completion must be handed a
///   zero-gain seed to build on (it discards the proposal if the combined
///   global gain stays zero).
///
/// Returns `true` if at least one group was applied.
#[allow(clippy::too_many_arguments)]
pub fn plan_structured(
    graph: &TaskGraph,
    units: &UnitGraph,
    plan: &mut TaskSet,
    budget: usize,
    max_steps: usize,
    eval_cap: usize,
    score: &dyn Fn(&TaskSet) -> f64,
    allow_blind: bool,
) -> bool {
    let mut applied = false;
    let mut steps = 0;
    while steps < max_steps {
        let remaining = budget.saturating_sub(plan.len());
        if remaining == 0 {
            break;
        }
        let base_score = score(plan);

        // Collect candidate groups.
        let mut best: Option<(TaskSet, f64)> = None; // (addition, density)
        for (ui, unit) in units.units.iter().enumerate() {
            for (seg, _w) in unit
                .segments
                .iter()
                .filter(|(seg, _)| !seg.is_subset_of(plan))
                .take(eval_cap)
            {
                let addition = seg.difference(plan);
                if addition.len() > remaining {
                    continue;
                }
                let trial = plan.union(&addition);
                let gain = score(&trial) - base_score;
                let group = if gain > EPS {
                    // The lone segment already completes an MC-tree.
                    addition
                } else {
                    // Pull in connected upstream segments (possibly several
                    // from one unit — a join has one branch per cut edge)
                    // until the tree completes.
                    match complete_group(graph, units, plan, &addition, remaining, eval_cap, score)
                    {
                        Some(group) => group,
                        None => continue,
                    }
                };
                let _ = ui;
                let trial = plan.union(&group);
                let gain = score(&trial) - base_score;
                if gain <= EPS || group.is_empty() {
                    continue;
                }
                let density = gain / group.len() as f64;
                let better = match &best {
                    None => true,
                    Some((cur, d)) => density > *d + EPS || (density > *d - EPS && group < *cur),
                };
                if better {
                    best = Some((group, density));
                }
            }
        }

        match best {
            Some((group, _)) => {
                plan.union_with(&group);
                applied = true;
                steps += 1;
            }
            None if allow_blind => {
                // Blind proposal: the heaviest affordable unplanned segment
                // (with its BFS completion), even at zero local gain.
                let mut blind: Option<(TaskSet, f64)> = None;
                for unit in &units.units {
                    for (seg, w) in unit
                        .segments
                        .iter()
                        .filter(|(seg, _)| !seg.is_subset_of(plan))
                        .take(eval_cap)
                    {
                        let addition = seg.difference(plan);
                        if addition.len() > remaining {
                            continue;
                        }
                        if blind.as_ref().is_none_or(|(_, bw)| *w > *bw) {
                            blind = Some((addition, *w));
                        }
                    }
                }
                match blind {
                    Some((addition, _)) => {
                        plan.union_with(&addition);
                        return true;
                    }
                    None => break,
                }
            }
            None => break,
        }
    }
    applied
}

/// Grows `seed` into a (hopefully) complete MC-tree by repeatedly attaching
/// the best-scoring connected segment whose tasks lie in the upstream cone
/// of the seed — the generalization of Algorithm 3's unit BFS (lines 10–15)
/// that also handles joins needing several segments from one unit (one per
/// cut input branch).
fn complete_group(
    graph: &TaskGraph,
    units: &UnitGraph,
    plan: &TaskSet,
    seed: &TaskSet,
    remaining: usize,
    eval_cap: usize,
    score: &dyn Fn(&TaskSet) -> f64,
) -> Option<TaskSet> {
    let mut group = seed.clone();
    if group.len() > remaining {
        return None;
    }
    let base = score(plan);

    // Completion scope: everything that can feed the outputs this seed
    // contributes to — the upstream closure of the seed's downstream
    // closure. This covers sibling join branches (a join needs *every*
    // input stream, and the missing branches are not upstream of the seed
    // itself) while excluding unrelated sinks.
    let n = graph.n_tasks();
    let mut reach = TaskSet::empty(n);
    let mut stack: Vec<_> = seed.iter().collect();
    for t in seed.iter() {
        reach.insert(t);
    }
    while let Some(t) = stack.pop() {
        for d in graph.downstream_tasks(t) {
            if !reach.contains(d) {
                reach.insert(d);
                stack.push(d);
            }
        }
    }
    let mut cone = reach.clone();
    let mut stack: Vec<_> = cone.iter().collect();
    while let Some(t) = stack.pop() {
        for u in graph.upstream_tasks(t) {
            if !cone.contains(u) {
                cone.insert(u);
                stack.push(u);
            }
        }
    }

    loop {
        let current = plan.union(&group);
        if score(&current) > base + EPS {
            return Some(group); // the tree completed
        }
        // Best attachable segment across every unit.
        let mut best: Option<(TaskSet, f64)> = None;
        for unit in &units.units {
            for (seg, _) in unit
                .segments
                .iter()
                .filter(|(seg, _)| !seg.is_subset_of(&current))
                .take(eval_cap)
            {
                let extra = seg.difference(&current);
                if group.len() + extra.len() > remaining || !extra.is_subset_of(&cone) {
                    continue;
                }
                if !sets_connected(graph, seg, &current) {
                    continue;
                }
                let trial_score = score(&current.union(&extra));
                let better = match &best {
                    None => true,
                    Some((cur, s)) => {
                        trial_score > *s + EPS || (trial_score > *s - EPS && extra < *cur)
                    }
                };
                if better {
                    best = Some((extra, trial_score));
                }
            }
        }
        match best {
            Some((extra, _)) => group.union_with(&extra),
            None => return Some(group), // may be zero-gain; caller filters
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OperatorId, OperatorSpec, Partitioning, TopologyBuilder};
    use crate::planner::PlanContext;

    /// src(4) -(merge)-> mid(2) -(split)-> out(4): the merge edge is cut, so
    /// there are two units and complete MC-trees need segments from both.
    fn two_unit_context() -> (PlanContext, UnitGraph) {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 4, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        let o = b.add_operator(OperatorSpec::map("o", 4, 1.0));
        b.connect(s, m, Partitioning::Merge).unwrap();
        b.connect(m, o, Partitioning::Split).unwrap();
        let cx = PlanContext::new(&b.build().unwrap()).unwrap();
        let ops = vec![OperatorId(0), OperatorId(1), OperatorId(2)];
        let ug = UnitGraph::build(cx.graph(), cx.rates(), &ops, 128);
        (cx, ug)
    }

    #[test]
    fn assembles_cross_unit_mc_trees() {
        let (cx, ug) = two_unit_context();
        let mut plan = TaskSet::empty(cx.n_tasks());
        let applied = plan_structured(
            cx.graph(),
            &ug,
            &mut plan,
            3,
            usize::MAX,
            64,
            &|p| cx.score_plan(p),
            false,
        );
        assert!(applied);
        assert!(
            cx.score_plan(&plan) > 0.0,
            "a complete MC-tree was formed: {plan:?}"
        );
        assert!(plan.len() <= 3);
    }

    #[test]
    fn respects_budget() {
        let (cx, ug) = two_unit_context();
        let mut plan = TaskSet::empty(cx.n_tasks());
        plan_structured(
            cx.graph(),
            &ug,
            &mut plan,
            2,
            usize::MAX,
            64,
            &|p| cx.score_plan(p),
            false,
        );
        assert!(plan.len() <= 2);
        // Minimum complete tree is 3 tasks, so nothing useful fits in 2 and
        // the algorithm must not waste the budget on incomplete segments.
        assert_eq!(cx.score_plan(&plan), 0.0);
    }

    #[test]
    fn max_steps_limits_expansion() {
        let (cx, ug) = two_unit_context();
        let mut plan = TaskSet::empty(cx.n_tasks());
        let applied = plan_structured(
            cx.graph(),
            &ug,
            &mut plan,
            usize::MAX,
            1,
            64,
            &|p| cx.score_plan(p),
            false,
        );
        assert!(applied);
        let one_step = plan.len();
        let mut plan2 = TaskSet::empty(cx.n_tasks());
        plan_structured(
            cx.graph(),
            &ug,
            &mut plan2,
            10,
            usize::MAX,
            64,
            &|p| cx.score_plan(p),
            false,
        );
        assert!(
            plan2.len() >= one_step,
            "unbounded steps cover at least as much"
        );
    }

    #[test]
    fn fills_budget_toward_full_fidelity() {
        let (cx, ug) = two_unit_context();
        let n = cx.n_tasks();
        let mut plan = TaskSet::empty(n);
        plan_structured(
            cx.graph(),
            &ug,
            &mut plan,
            n,
            usize::MAX,
            64,
            &|p| cx.score_plan(p),
            false,
        );
        assert!(
            (cx.score_plan(&plan) - 1.0).abs() < 1e-9,
            "with budget = all tasks the plan reaches OF 1, got {}",
            cx.score_plan(&plan)
        );
    }

    #[test]
    fn single_segment_completion_is_preferred() {
        let (cx, ug) = two_unit_context();
        let n = cx.n_tasks();
        // Seed the plan with a full tree minus one source; the single
        // missing source segment should be added as a lone candidate.
        let mut plan = TaskSet::empty(n);
        plan_structured(
            cx.graph(),
            &ug,
            &mut plan,
            3,
            usize::MAX,
            64,
            &|p| cx.score_plan(p),
            false,
        );
        let full_tree_score = cx.score_plan(&plan);
        // Remove one source task from the plan.
        let source = plan.iter().find(|&t| cx.graph().is_source_task(t)).unwrap();
        plan.remove(source);
        assert_eq!(cx.score_plan(&plan), 0.0);
        let applied = plan_structured(
            cx.graph(),
            &ug,
            &mut plan,
            3,
            usize::MAX,
            64,
            &|p| cx.score_plan(p),
            false,
        );
        assert!(applied);
        assert!((cx.score_plan(&plan) - full_tree_score).abs() < 1e-9);
    }
}
