//! Unit splitting and segment enumeration for structured sub-topologies
//! (§IV-C1).
//!
//! A structured sub-topology can still hold very many MC-trees; the paper
//! splits it into *units* so that within a unit the number of segments stays
//! close to the number of input substreams. Unit boundaries are placed on:
//!
//! * every internal `Merge` edge whose downstream operator also `Split`s its
//!   output (the multi-input × multi-output case of Fig. 3(a));
//! * every internal `Merge` edge into a correlated-input (join) operator
//!   with more than one input stream (the Fig. 3(b) case).
//!
//! Units are the connected components left after cutting those edges; a
//! *segment* is an MC-tree of the unit's internal task graph.

use crate::model::{EdgeId, InputSemantics, OperatorId, Partitioning, TaskGraph, TaskSet};
// Membership-only sets below keep HashSet for O(1) probes; everything
// whose iteration order reaches a UnitGraph is a BTreeSet.
use std::collections::{BTreeSet, HashSet}; // ppa-lint: allow(D001, reason = "HashSet uses below are membership-only or explicitly allowed")

/// One unit of a structured sub-topology.
#[derive(Debug, Clone)]
pub struct Unit {
    /// Member operators, ascending.
    pub ops: Vec<OperatorId>,
    /// Segments (unit-local MC-trees) as task sets, with their weight
    /// (sum of λout over the segment's unit-sink tasks) used for ranking.
    pub segments: Vec<(TaskSet, f64)>,
}

/// Units of one structured sub-topology plus their adjacency (units joined
/// by a cut edge are neighbours).
#[derive(Debug, Clone)]
pub struct UnitGraph {
    pub units: Vec<Unit>,
    /// `adj[i]` = neighbouring unit indices of unit `i`.
    pub adj: Vec<Vec<usize>>,
}

impl UnitGraph {
    /// Builds the unit graph of the sub-topology consisting of `ops`.
    ///
    /// `segment_cap` truncates the per-unit segment enumeration (segments
    /// are kept in descending weight order, so truncation keeps the most
    /// valuable ones).
    pub fn build(
        graph: &TaskGraph,
        rates: &crate::rates::RateModel,
        ops: &[OperatorId],
        segment_cap: usize,
    ) -> UnitGraph {
        Self::build_with(graph, rates, ops, segment_cap, false)
    }

    /// Like [`UnitGraph::build`], optionally treating joins as unions (see
    /// [`crate::mctree::enumerate_mc_trees_with`]).
    pub fn build_with(
        graph: &TaskGraph,
        rates: &crate::rates::RateModel,
        ops: &[OperatorId],
        segment_cap: usize,
        joins_as_union: bool,
    ) -> UnitGraph {
        let topo = graph.topology();
        // ppa-lint: allow(D001, reason = "membership probes only; never iterated")
        let member: HashSet<usize> = ops.iter().map(|o| o.0).collect();

        // Internal edges of the sub-topology.
        let internal: Vec<EdgeId> = (0..topo.edges().len())
            .map(EdgeId)
            .filter(|&e| {
                let edge = topo.edge(e);
                member.contains(&edge.from.0) && member.contains(&edge.to.0)
            })
            .collect();

        // Cut edges per the two boundary rules. A BTreeSet: the loop below
        // iterates it while building the unit adjacency that escapes into
        // the returned UnitGraph.
        let cut: BTreeSet<usize> = internal
            .iter()
            .filter(|&&e| {
                let edge = topo.edge(e);
                if edge.partitioning != Partitioning::Merge {
                    return false;
                }
                let x = edge.to;
                let splits_out = topo.output_edges(x).iter().any(|&oe| {
                    let out = topo.edge(oe);
                    member.contains(&out.to.0) && out.partitioning == Partitioning::Split
                });
                let is_join = topo.operator(x).semantics == InputSemantics::Correlated
                    && topo.input_edges(x).len() > 1;
                splits_out || is_join
            })
            .map(|e| e.0)
            .collect();

        // Connected components over non-cut internal edges.
        let mut comp: Vec<Option<usize>> = vec![None; topo.n_operators()];
        let mut units_ops: Vec<Vec<OperatorId>> = Vec::new();
        for &start in ops {
            if comp[start.0].is_some() {
                continue;
            }
            let id = units_ops.len();
            let mut stack = vec![start];
            comp[start.0] = Some(id);
            let mut members = vec![start];
            while let Some(o) = stack.pop() {
                for &e in &internal {
                    if cut.contains(&e.0) {
                        continue;
                    }
                    let edge = topo.edge(e);
                    let next = if edge.from == o {
                        Some(edge.to)
                    } else if edge.to == o {
                        Some(edge.from)
                    } else {
                        None
                    };
                    if let Some(next) = next {
                        if comp[next.0].is_none() {
                            comp[next.0] = Some(id);
                            members.push(next);
                            stack.push(next);
                        }
                    }
                }
            }
            members.sort();
            units_ops.push(members);
        }

        // Adjacency from cut edges.
        let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); units_ops.len()];
        for &e in &cut {
            let edge = topo.edge(EdgeId(e));
            let (a, b) = (comp[edge.from.0].unwrap(), comp[edge.to.0].unwrap());
            if a != b {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }

        let units = units_ops
            .into_iter()
            .map(|unit_ops| {
                let mut segments =
                    enumerate_unit_segments(graph, rates, &unit_ops, segment_cap, joins_as_union);
                segments.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
                segments.truncate(segment_cap);
                Unit {
                    ops: unit_ops,
                    segments,
                }
            })
            .collect();

        UnitGraph {
            units,
            // BTreeSet iteration is already ascending — no sort needed.
            adj: adj.into_iter().map(|s| s.into_iter().collect()).collect(),
        }
    }
}

/// Enumerates the segments (unit-local MC-trees) of the task subgraph
/// induced by `ops`, together with each segment's weight.
///
/// Leaves are tasks with no upstream inside the unit; roots are tasks of
/// operators with no downstream inside the unit. The enumeration mirrors
/// [`crate::mctree::enumerate_mc_trees`] but is truncated (never erroring)
/// at `cap` partial trees per task, since segments feed a heuristic.
pub fn enumerate_unit_segments(
    graph: &TaskGraph,
    rates: &crate::rates::RateModel,
    ops: &[OperatorId],
    cap: usize,
    joins_as_union: bool,
) -> Vec<(TaskSet, f64)> {
    let topo = graph.topology();
    // ppa-lint: allow(D001, reason = "membership probes only; never iterated")
    let member: HashSet<usize> = ops.iter().map(|o| o.0).collect();
    let n = graph.n_tasks();
    let mut memo: Vec<Vec<TaskSet>> = vec![Vec::new(); n];

    // Operators with no downstream inside the unit are the unit sinks.
    // ppa-lint: allow(D001, reason = "membership probes only; never iterated")
    let unit_sinks: HashSet<usize> = ops
        .iter()
        .filter(|&&o| {
            !topo
                .output_edges(o)
                .iter()
                .any(|&e| member.contains(&topo.edge(e).to.0))
        })
        .map(|o| o.0)
        .collect();

    for &t in graph.topo_tasks() {
        let op = graph.operator_of(t);
        if !member.contains(&op.0) {
            continue;
        }
        let internal_inputs: Vec<_> = graph
            .inputs(t)
            .iter()
            .filter(|is| member.contains(&is.from_op.0))
            .collect();
        if internal_inputs.is_empty() {
            memo[t.0] = vec![TaskSet::from_tasks(n, [t])];
            continue;
        }
        let correlated = !joins_as_union
            && topo.operator(op).semantics == InputSemantics::Correlated
            && internal_inputs.len() > 1;
        let mut partials: Vec<TaskSet> = Vec::new();
        if correlated {
            let mut acc: Vec<TaskSet> = vec![TaskSet::from_tasks(n, [t])];
            for istream in &internal_inputs {
                let mut next = Vec::new();
                'outer: for base in &acc {
                    for &s in &istream.substreams {
                        for sub in &memo[s.0] {
                            next.push(base.union(sub));
                            if next.len() >= cap {
                                break 'outer;
                            }
                        }
                    }
                }
                acc = dedup(next);
            }
            partials = acc;
        } else {
            'outer: for istream in &internal_inputs {
                for &s in &istream.substreams {
                    for sub in &memo[s.0] {
                        let mut seg = sub.clone();
                        seg.insert(t);
                        partials.push(seg);
                        if partials.len() >= cap {
                            break 'outer;
                        }
                    }
                }
            }
            partials = dedup(partials);
        }
        memo[t.0] = partials;
    }

    let mut segments: Vec<TaskSet> = Vec::new();
    for &o in ops {
        if !unit_sinks.contains(&o.0) {
            continue;
        }
        for t in graph.op_tasks(OperatorId(o.0)) {
            segments.extend(memo[t.0].iter().cloned());
        }
    }
    let segments = dedup(segments);
    segments
        .into_iter()
        .map(|seg| {
            let weight: f64 = seg
                .iter()
                .filter(|&t| unit_sinks.contains(&graph.operator_of(t).0))
                .map(|t| rates.output_rate(t))
                .sum();
            (seg, weight)
        })
        .collect()
}

fn dedup(sets: Vec<TaskSet>) -> Vec<TaskSet> {
    // ppa-lint: allow(D001, reason = "membership-only dedup; output preserves input order")
    let mut seen = HashSet::with_capacity(sets.len());
    let mut out = Vec::with_capacity(sets.len());
    for s in sets {
        if seen.insert(s.clone()) {
            out.push(s);
        }
    }
    out
}

/// Whether any task edge connects a task of `a` with a task of `b` (in
/// either direction). Used by Algorithm 3's BFS to chain segments of
/// neighbouring units into complete MC-trees.
pub fn sets_connected(graph: &TaskGraph, a: &TaskSet, b: &TaskSet) -> bool {
    for t in a.iter() {
        if graph.downstream_tasks(t).iter().any(|&d| b.contains(d))
            || graph.upstream_tasks(t).iter().any(|&u| b.contains(u))
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OperatorSpec, TaskIndex, TopologyBuilder};
    use crate::rates::RateModel;

    /// Fig. 3(a): src -(merge)-> X -(split)-> Y. The merge edge is cut
    /// because X has a split output.
    fn fig3a() -> (TaskGraph, RateModel, Vec<OperatorId>) {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("O1", 4, 10.0));
        let x = b.add_operator(OperatorSpec::map("O2", 2, 1.0));
        let y = b.add_operator(OperatorSpec::map("O3", 4, 1.0));
        b.connect(s, x, Partitioning::Merge).unwrap();
        b.connect(x, y, Partitioning::Split).unwrap();
        let g = TaskGraph::new(b.build().unwrap());
        let r = RateModel::compute(&g);
        let ops = vec![OperatorId(0), OperatorId(1), OperatorId(2)];
        (g, r, ops)
    }

    #[test]
    fn fig3a_merge_before_split_is_cut() {
        let (g, r, ops) = fig3a();
        let ug = UnitGraph::build(&g, &r, &ops, 128);
        assert_eq!(ug.units.len(), 2, "boundary between O1 and O2");
        // One unit is {O1} alone, the other {O2, O3}.
        let sizes: Vec<usize> = ug.units.iter().map(|u| u.ops.len()).collect();
        assert!(sizes.contains(&1) && sizes.contains(&2));
        // The two units are neighbours.
        assert_eq!(ug.adj[0], vec![1]);
        assert_eq!(ug.adj[1], vec![0]);
    }

    #[test]
    fn fig3b_merge_into_join_is_cut() {
        // Fig. 3(b): O1 -(merge)-> O3 (join) <-(one-to-one)- O2.
        let mut b = TopologyBuilder::new();
        let o1 = b.add_operator(OperatorSpec::source("O1", 4, 10.0));
        let o2 = b.add_operator(OperatorSpec::source("O2", 2, 10.0));
        let o3 = b.add_operator(OperatorSpec::join("O3", 2, 1.0));
        b.connect(o1, o3, Partitioning::Merge).unwrap();
        b.connect(o2, o3, Partitioning::OneToOne).unwrap();
        let g = TaskGraph::new(b.build().unwrap());
        let r = RateModel::compute(&g);
        let ug = UnitGraph::build(&g, &r, &[OperatorId(0), OperatorId(1), OperatorId(2)], 128);
        assert_eq!(
            ug.units.len(),
            2,
            "boundary on the merge edge into the join"
        );
        // O1 is alone; O2 and O3 stay together via the one-to-one edge.
        let lone = ug.units.iter().find(|u| u.ops.len() == 1).unwrap();
        assert_eq!(lone.ops, vec![OperatorId(0)]);
    }

    #[test]
    fn plain_merge_chain_is_one_unit() {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 4, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 1, 1.0));
        b.connect(s, m, Partitioning::Merge).unwrap();
        b.connect(m, k, Partitioning::Merge).unwrap();
        let g = TaskGraph::new(b.build().unwrap());
        let r = RateModel::compute(&g);
        let ug = UnitGraph::build(&g, &r, &[OperatorId(0), OperatorId(1), OperatorId(2)], 128);
        assert_eq!(ug.units.len(), 1);
        assert_eq!(ug.units[0].segments.len(), 4, "one segment per source path");
    }

    #[test]
    fn segments_of_source_only_unit_are_single_tasks() {
        let (g, r, ops) = fig3a();
        let ug = UnitGraph::build(&g, &r, &ops, 128);
        let source_unit = ug.units.iter().find(|u| u.ops.len() == 1).unwrap();
        assert_eq!(source_unit.segments.len(), 4);
        for (seg, w) in &source_unit.segments {
            assert_eq!(seg.len(), 1);
            assert!(*w > 0.0);
        }
    }

    #[test]
    fn segments_are_ranked_by_weight() {
        let (g, r, ops) = fig3a();
        let ug = UnitGraph::build(&g, &r, &ops, 128);
        for unit in &ug.units {
            for pair in unit.segments.windows(2) {
                assert!(
                    pair[0].1 >= pair[1].1,
                    "segments sorted by descending weight"
                );
            }
        }
    }

    #[test]
    fn sets_connected_detects_edges() {
        let (g, _r, _ops) = fig3a();
        let src0 = TaskSet::from_tasks(g.n_tasks(), [TaskIndex(0)]);
        let x0 = TaskSet::from_tasks(g.n_tasks(), [TaskIndex(4)]);
        let x1 = TaskSet::from_tasks(g.n_tasks(), [TaskIndex(5)]);
        assert!(sets_connected(&g, &src0, &x0), "source 0 feeds X task 0");
        assert!(
            !sets_connected(&g, &src0, &x1),
            "source 0 does not feed X task 1"
        );
    }
}
