//! Algorithm 4: planning one *full* sub-topology.
//!
//! In a full topology every task feeds every downstream task, so any
//! one-task-per-operator selection is a complete MC-tree. Within each
//! operator, tasks are ranked by `δ`: the objective increase from keeping
//! that task alive while all its operator siblings are failed (and all
//! other operators healthy). The plan first takes the best task of every
//! operator (one complete MC-tree), then repeatedly adds the task whose
//! addition maximizes the objective.

use crate::model::{OperatorId, TaskGraph, TaskIndex, TaskSet};

/// Per-operator task rankings by `δ` (descending).
///
/// `δ_ij = score(fail all of O_i except t_ij) − score(fail all of O_i)`,
/// evaluated on the global graph with every other operator healthy.
pub fn operator_deltas(
    graph: &TaskGraph,
    ops: &[OperatorId],
    score_failed: &dyn Fn(&TaskSet) -> f64,
) -> Vec<Vec<(TaskIndex, f64)>> {
    let n = graph.n_tasks();
    ops.iter()
        .map(|&op| {
            let all: TaskSet = TaskSet::from_tasks(n, graph.op_tasks(op));
            let base = score_failed(&all);
            let mut ranked: Vec<(TaskIndex, f64)> = graph
                .op_tasks(op)
                .map(|t| {
                    let mut failed = all.clone();
                    failed.remove(t);
                    (t, score_failed(&failed) - base)
                })
                .collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            ranked
        })
        .collect()
}

/// Expands `plan` within the full sub-topology `ops`.
///
/// * `budget` caps `plan.len()` after expansion;
/// * `max_steps` caps the number of tasks added in the iterative phase
///   (the initial one-task-per-operator seeding counts as one step);
/// * `score` evaluates candidate plans; `score_failed` evaluates failures
///   (used for the δ ranking).
///
/// Returns `true` if anything was added. Mirroring the paper's lines 4–9:
/// if the plan holds nothing of this sub-topology yet and the budget cannot
/// seat one task per operator, nothing is added (no complete MC-tree fits).
pub fn plan_full(
    graph: &TaskGraph,
    ops: &[OperatorId],
    plan: &mut TaskSet,
    budget: usize,
    max_steps: usize,
    score: &dyn Fn(&TaskSet) -> f64,
    score_failed: &dyn Fn(&TaskSet) -> f64,
) -> bool {
    if max_steps == 0 {
        return false;
    }
    let deltas = operator_deltas(graph, ops, score_failed);
    let n = graph.n_tasks();
    let sub_tasks: TaskSet = TaskSet::from_tasks(n, ops.iter().flat_map(|&op| graph.op_tasks(op)));

    let mut applied = false;
    let mut steps = 0usize;

    // Initial phase: one best task per operator (a complete MC-tree).
    if plan.intersection(&sub_tasks).is_empty() {
        if plan.len() + ops.len() > budget {
            return false; // N > R: no complete tree fits (paper line 9).
        }
        for ranked in &deltas {
            let (best, _) = ranked[0];
            plan.insert(best);
        }
        applied = true;
        steps += 1;
    }

    // Iterative phase: add the next-best task of some operator, judged by
    // the resulting plan score (paper lines 10–16).
    while steps < max_steps && plan.len() < budget {
        let mut best: Option<(TaskIndex, f64, f64)> = None; // (task, plan score, delta)
        for ranked in &deltas {
            let next = ranked.iter().find(|(t, _)| !plan.contains(*t));
            if let Some(&(t, d)) = next {
                let mut trial = plan.clone();
                trial.insert(t);
                let s = score(&trial);
                let better = match best {
                    None => true,
                    Some((bt, bs, bd)) => {
                        s > bs + 1e-12
                            || (s > bs - 1e-12 && d > bd + 1e-12)
                            || (s > bs - 1e-12 && (d - bd).abs() <= 1e-12 && t < bt)
                    }
                };
                if better {
                    best = Some((t, s, d));
                }
            }
        }
        match best {
            Some((t, _, _)) => {
                plan.insert(t);
                applied = true;
                steps += 1;
            }
            None => break,
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OperatorSpec, Partitioning, TaskWeights, TopologyBuilder};
    use crate::planner::PlanContext;

    fn full_context(skewed: bool) -> PlanContext {
        let mut b = TopologyBuilder::new();
        let mut src = OperatorSpec::source("s", 3, 10.0);
        if skewed {
            src = src.with_weights(TaskWeights::Explicit(vec![7.0, 2.0, 1.0]));
        }
        let s = b.add_operator(src);
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 2, 1.0));
        b.connect(s, m, Partitioning::Full).unwrap();
        b.connect(m, k, Partitioning::Full).unwrap();
        PlanContext::new(&b.build().unwrap()).unwrap()
    }

    fn ops() -> Vec<OperatorId> {
        vec![OperatorId(0), OperatorId(1), OperatorId(2)]
    }

    #[test]
    fn seeds_one_task_per_operator() {
        let cx = full_context(true);
        let mut plan = TaskSet::empty(cx.n_tasks());
        let applied = plan_full(
            cx.graph(),
            &ops(),
            &mut plan,
            3,
            usize::MAX,
            &|p| cx.score_plan(p),
            &|f| cx.score_failed(f),
        );
        assert!(applied);
        assert_eq!(plan.len(), 3);
        assert!(
            cx.score_plan(&plan) > 0.0,
            "one task per op forms a complete tree"
        );
        // The heaviest source must be part of the seed.
        assert!(plan.contains(TaskIndex(0)));
    }

    #[test]
    fn refuses_budgets_below_one_per_operator() {
        let cx = full_context(false);
        let mut plan = TaskSet::empty(cx.n_tasks());
        let applied = plan_full(
            cx.graph(),
            &ops(),
            &mut plan,
            2,
            usize::MAX,
            &|p| cx.score_plan(p),
            &|f| cx.score_failed(f),
        );
        assert!(!applied);
        assert!(plan.is_empty());
    }

    #[test]
    fn fills_the_budget_monotonically() {
        let cx = full_context(true);
        let mut prev = 0.0;
        for budget in 3..=7 {
            let mut plan = TaskSet::empty(cx.n_tasks());
            plan_full(
                cx.graph(),
                &ops(),
                &mut plan,
                budget,
                usize::MAX,
                &|p| cx.score_plan(p),
                &|f| cx.score_failed(f),
            );
            let score = cx.score_plan(&plan);
            assert!(score >= prev - 1e-12, "budget {budget}: {score} < {prev}");
            assert!(plan.len() <= budget);
            prev = score;
        }
    }

    #[test]
    fn full_budget_reaches_of_one() {
        let cx = full_context(true);
        let n = cx.n_tasks();
        let mut plan = TaskSet::empty(n);
        plan_full(
            cx.graph(),
            &ops(),
            &mut plan,
            n,
            usize::MAX,
            &|p| cx.score_plan(p),
            &|f| cx.score_failed(f),
        );
        assert!((cx.score_plan(&plan) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deltas_rank_heavier_tasks_first() {
        let cx = full_context(true);
        let deltas = operator_deltas(cx.graph(), &ops(), &|f| cx.score_failed(f));
        // Source deltas: task 0 carries 70% of the rate.
        assert_eq!(deltas[0][0].0, TaskIndex(0));
        assert!(deltas[0][0].1 > deltas[0][1].1);
    }

    #[test]
    fn max_steps_one_adds_one_increment() {
        let cx = full_context(false);
        let mut plan = TaskSet::empty(cx.n_tasks());
        // Seed first.
        plan_full(
            cx.graph(),
            &ops(),
            &mut plan,
            3,
            usize::MAX,
            &|p| cx.score_plan(p),
            &|f| cx.score_failed(f),
        );
        let seeded = plan.len();
        // One more step adds exactly one task.
        plan_full(
            cx.graph(),
            &ops(),
            &mut plan,
            7,
            1,
            &|p| cx.score_plan(p),
            &|f| cx.score_failed(f),
        );
        assert_eq!(plan.len(), seeded + 1);
    }
}
