//! Algorithm 5: the structure-aware planner for general topologies.
//!
//! 1. Decompose the topology into full/structured sub-topologies
//!    ([`super::decompose`]).
//! 2. Give every sub-topology an initial budget equal to its operator count
//!    and plan it with its dedicated algorithm — one complete (local)
//!    MC-tree each. Because neighbouring sub-topologies are joined by `Full`
//!    partitioning, locally chosen trees stitch into global MC-trees.
//! 3. Repeatedly ask each sub-topology for its next one-increment expansion,
//!    and apply the proposal with the highest profit density
//!    `ΔOF / Δresources` that still fits the budget.
//!
//! Scores during sub-topology planning are *local*: the candidate plan is
//! evaluated with only this sub-topology's unplanned tasks failed, which
//! isolates the sub-topology's contribution exactly as the paper's
//! "treated as an independent topology" evaluation does, while reusing the
//! global loss propagation.

use super::full::plan_full;
use super::structured::plan_structured;
use super::units::UnitGraph;
use super::{decompose, SubKind, SubTopology};
use crate::error::Result;
use crate::mctree::min_tree_size;
use crate::model::{TaskGraph, TaskSet};
use crate::planner::{Plan, PlanContext, Planner};

/// The structure-aware planner (Algorithm 5).
#[derive(Debug, Clone, Copy)]
pub struct StructureAwarePlanner {
    /// Per-unit segment enumeration cap (heuristic truncation).
    pub segment_cap: usize,
    /// How many top segments per unit are evaluated as candidate seeds.
    pub eval_cap: usize,
}

impl Default for StructureAwarePlanner {
    fn default() -> Self {
        StructureAwarePlanner {
            segment_cap: 512,
            eval_cap: 48,
        }
    }
}

struct SubState {
    sub: SubTopology,
    /// The sub-topology's tasks plus their entire upstream closure. Local
    /// scoring fails every unplanned task in this cone: a segment only
    /// scores if the paths feeding it are replicated too, even when those
    /// paths live in an upstream sub-topology (the paper can assume
    /// independence because its boundaries are Full; our decomposition of
    /// arbitrary graphs cannot).
    cone: TaskSet,
    units: Option<UnitGraph>,
}

impl StructureAwarePlanner {
    fn build_states(&self, cx: &PlanContext, subs: Vec<SubTopology>) -> Vec<SubState> {
        let graph = cx.graph();
        let n = cx.n_tasks();
        let mut states: Vec<SubState> = subs
            .into_iter()
            .map(|sub| {
                let tasks =
                    TaskSet::from_tasks(n, sub.ops.iter().flat_map(|&op| graph.op_tasks(op)));
                // Upstream closure of the sub's tasks.
                let mut cone = tasks.clone();
                let mut stack: Vec<_> = tasks.iter().collect();
                while let Some(t) = stack.pop() {
                    for u in graph.upstream_tasks(t) {
                        if !cone.contains(u) {
                            cone.insert(u);
                            stack.push(u);
                        }
                    }
                }
                let joins_as_union =
                    cx.objective() == crate::planner::Objective::InternalCompleteness;
                let units = match sub.kind {
                    SubKind::Structured => Some(UnitGraph::build_with(
                        graph,
                        cx.rates(),
                        &sub.ops,
                        self.segment_cap,
                        joins_as_union,
                    )),
                    SubKind::Full => None,
                };
                SubState { sub, cone, units }
            })
            .collect();
        // Plan upstream sub-topologies first, so downstream segments can
        // complete against already-planned feeders. A sub whose deepest
        // operator sits earlier in the topological order is more upstream.
        let topo_pos: std::collections::BTreeMap<usize, usize> = graph
            .topology()
            .topo_order()
            .iter()
            .enumerate()
            .map(|(i, op)| (op.0, i))
            .collect();
        states.sort_by_key(|s| {
            s.sub
                .ops
                .iter()
                .map(|op| topo_pos[&op.0])
                .max()
                .unwrap_or(0)
        });
        states
    }

    /// Expands `plan` within one sub-topology by up to `max_steps`
    /// increments, bounded by `budget` total tasks in the plan.
    fn plan_sub(
        &self,
        cx: &PlanContext,
        graph: &TaskGraph,
        state: &SubState,
        plan: &mut TaskSet,
        budget: usize,
        max_steps: usize,
    ) -> bool {
        // Local objective: the sub's unplanned tasks fail, together with
        // every unplanned task of its upstream cone.
        let local = |p: &TaskSet| cx.score_failed(&state.cone.difference(p));
        match &state.units {
            Some(units) => plan_structured(
                graph,
                units,
                plan,
                budget,
                max_steps,
                self.eval_cap,
                &local,
                true, // blind proposals: Algorithm 5 completes them cross-sub
            ),
            None => {
                let failed_score = |f: &TaskSet| cx.score_failed(f);
                plan_full(
                    graph,
                    &state.sub.ops,
                    plan,
                    budget,
                    max_steps,
                    &local,
                    &failed_score,
                )
            }
        }
    }
}

impl Planner for StructureAwarePlanner {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn plan(&self, cx: &PlanContext, budget: usize) -> Result<Plan> {
        let graph = cx.graph();
        let n = cx.n_tasks();
        let budget = budget.min(n);

        // No budget can complete even the smallest MC-tree: give up early
        // (the paper's line-3 guard, tightened to the minimal tree size —
        // see README.md §Design notes).
        if budget < min_tree_size(graph) {
            return Ok(cx.make_plan(TaskSet::empty(n)));
        }

        let states = self.build_states(cx, decompose(graph.topology()));
        let mut plan = TaskSet::empty(n);

        // Profit-density expansion (paper lines 11–18). The paper's phase 1
        // additionally seeds every sub-topology with one MC-tree up front;
        // with cone-local scoring the density loop bootstraps upstream
        // sub-topologies first on its own, and skipping the unconditional
        // seeding avoids wasting budget on low-value sub-topologies
        // (documented deviation, README.md §Design notes).
        loop {
            let remaining = budget.saturating_sub(plan.len());
            if remaining == 0 {
                break;
            }
            let before_global = cx.score_plan(&plan);
            let mut best: Option<(TaskSet, f64)> = None;
            for (si, state) in states.iter().enumerate() {
                let budget_cap = plan.len() + remaining;
                let mut trial = plan.clone();
                let expanded = self.plan_sub(cx, graph, state, &mut trial, budget_cap, 1);
                if !expanded {
                    continue;
                }
                // Cross-sub completion: an increment alone may not reach a
                // sink yet (its tree's remaining segments live in other
                // sub-topologies). Complete it *minimally*: every added task
                // gets its support group — the smallest upstream/downstream
                // complement that lets it contribute — so proposals are
                // priced by their real worst-case value without dragging in
                // unrelated budget-polluting increments.
                if cx.score_plan(&trial) <= before_global + 1e-12 {
                    let addition = trial.difference(&plan);
                    for t in addition.iter() {
                        let group = support_group(cx, graph, &trial, t);
                        trial.union_with(&group);
                        if trial.len() > budget_cap {
                            break;
                        }
                    }
                }
                let _ = si;
                let cost = trial.len() - plan.len();
                if cost == 0 || cost > remaining {
                    continue;
                }
                let density = (cx.score_plan(&trial) - before_global) / cost as f64;
                let better = match &best {
                    None => true,
                    Some((cur, d)) => {
                        density > *d + 1e-12 || (density > *d - 1e-12 && trial < *cur)
                    }
                };
                if better {
                    best = Some((trial, density));
                }
            }
            match best {
                Some((trial, density)) if density > 0.0 => plan = trial,
                // Accept zero-density expansions only if nothing better will
                // ever appear — stop instead, matching the paper's
                // termination when no resource can complete an MC-tree.
                _ => break,
            }
        }

        // Remainder fill (see `fill_support_groups`).
        fill_support_groups(cx, graph, &mut plan, budget);

        // Portfolio safeguard: the density pipeline can commit to a large
        // seeding proposal (e.g. one task per operator of a wide full
        // sub-topology) that a pure support-group construction beats. Build
        // the fill-only plan too and keep the better of the two.
        let mut fill_only = TaskSet::empty(n);
        fill_support_groups(cx, graph, &mut fill_only, budget);
        let plan_value = cx.score_plan(&plan);
        let fill_value = cx.score_plan(&fill_only);
        if fill_value > plan_value + 1e-12
            || (fill_value > plan_value - 1e-12 && fill_only.len() < plan.len())
        {
            plan = fill_only;
        }

        Ok(cx.make_plan(plan))
    }
}

/// Spends remaining budget on the best-density *support group* per
/// still-unplanned task: the task plus the minimal upstream/downstream
/// complement that lets it contribute (documented deviation, README.md §Design notes —
/// the paper's Algorithm 5 strands budget once no complete MC-tree fits).
/// Also covers tasks that segment-cap truncation hid from the candidate
/// enumeration.
fn fill_support_groups(cx: &PlanContext, graph: &TaskGraph, plan: &mut TaskSet, budget: usize) {
    let n = graph.n_tasks();
    loop {
        let remaining = budget.saturating_sub(plan.len());
        if remaining == 0 {
            break;
        }
        let base = cx.score_plan(plan);
        let mut best: Option<(TaskSet, f64)> = None;
        for t in 0..n {
            let t = crate::model::TaskIndex(t);
            if plan.contains(t) {
                continue;
            }
            let group = support_group(cx, graph, plan, t);
            let add = group.difference(plan);
            if add.is_empty() || add.len() > remaining {
                continue;
            }
            let s = cx.score_plan(&plan.union(&add));
            if s <= base + 1e-12 {
                continue;
            }
            let density = (s - base) / add.len() as f64;
            let better = match &best {
                None => true,
                Some((cur, d)) => density > *d + 1e-12 || (density > *d - 1e-12 && add < *cur),
            };
            if better {
                best = Some((add, density));
            }
        }
        match best {
            Some((add, _)) => plan.union_with(&add),
            None => break,
        }
    }
}

/// The minimal complement that lets task `t` contribute to a sink given the
/// current plan: a downstream chain to a sink (preferring already-planned
/// hops) plus, for every member, upstream substream coverage per input
/// stream (every stream for joins, at least one stream otherwise),
/// preferring planned tasks and breaking ties toward the heaviest rate.
fn support_group(
    cx: &PlanContext,
    graph: &TaskGraph,
    plan: &TaskSet,
    t: crate::model::TaskIndex,
) -> TaskSet {
    use crate::model::InputSemantics;
    let n = graph.n_tasks();
    let mut group = TaskSet::empty(n);
    group.insert(t);

    // Downstream chain to a sink.
    let mut cur = t;
    while !graph.is_sink_task(cur) {
        let downs = graph.downstream_tasks(cur);
        let Some(&first) = downs.first() else { break };
        let next = downs
            .iter()
            .copied()
            .find(|d| plan.contains(*d) || group.contains(*d))
            .unwrap_or(first);
        if group.contains(next) {
            break;
        }
        group.insert(next);
        cur = next;
    }

    // Upstream support for every member.
    let mut stack: Vec<crate::model::TaskIndex> = group.iter().collect();
    while let Some(x) = stack.pop() {
        let inputs = graph.inputs(x);
        if inputs.is_empty() {
            continue;
        }
        let op = graph.topology().operator(graph.operator_of(x));
        let correlated = op.semantics == InputSemantics::Correlated && inputs.len() > 1;
        let covered = |istream: &crate::model::InputStream, group: &TaskSet| {
            istream
                .substreams
                .iter()
                .any(|s| plan.contains(*s) || group.contains(*s))
        };
        let heaviest = |istream: &crate::model::InputStream| {
            istream
                .substreams
                .iter()
                .copied()
                .max_by(|a, b| {
                    cx.rates()
                        .output_rate(*a)
                        .partial_cmp(&cx.rates().output_rate(*b))
                        .unwrap()
                        .then(b.0.cmp(&a.0))
                })
                .expect("input streams are never empty")
        };
        if correlated {
            for istream in inputs {
                if !covered(istream, &group) {
                    let pick = heaviest(istream);
                    group.insert(pick);
                    stack.push(pick);
                }
            }
        } else if !inputs.iter().any(|is| covered(is, &group)) {
            // Union semantics: one covered stream suffices; take the
            // heaviest substream overall.
            let pick = inputs
                .iter()
                .map(heaviest)
                .max_by(|a, b| {
                    cx.rates()
                        .output_rate(*a)
                        .partial_cmp(&cx.rates().output_rate(*b))
                        .unwrap()
                        .then(b.0.cmp(&a.0))
                })
                .expect("non-source task has inputs");
            group.insert(pick);
            stack.push(pick);
        }
    }
    group
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OperatorSpec, Partitioning, TaskWeights, Topology, TopologyBuilder};
    use crate::planner::{DpPlanner, GreedyPlanner};

    fn merge_chain(weights: Vec<f64>) -> Topology {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(
            OperatorSpec::source("s", 4, 100.0).with_weights(TaskWeights::Explicit(weights)),
        );
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 1, 1.0));
        b.connect(s, m, Partitioning::Merge).unwrap();
        b.connect(m, k, Partitioning::Merge).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn sa_completes_trees_on_structured_chain() {
        let cx = PlanContext::new(&merge_chain(vec![8.0, 4.0, 2.0, 1.0])).unwrap();
        let plan = StructureAwarePlanner::default().plan(&cx, 3).unwrap();
        assert!(plan.value > 0.0, "3 tasks complete the heaviest MC-tree");
        assert!(plan.tasks.contains(crate::model::TaskIndex(0)));
    }

    #[test]
    fn sa_matches_dp_on_small_chain() {
        let cx = PlanContext::new(&merge_chain(vec![8.0, 4.0, 2.0, 1.0])).unwrap();
        for budget in [3, 4, 7] {
            let sa = StructureAwarePlanner::default().plan(&cx, budget).unwrap();
            let dp = DpPlanner::default().plan(&cx, budget).unwrap();
            assert!(
                sa.value <= dp.value + 1e-9,
                "budget {budget}: SA {} must not beat DP {}",
                sa.value,
                dp.value
            );
            // On this simple chain SA should actually achieve the optimum.
            assert!(
                (sa.value - dp.value).abs() < 1e-9,
                "budget {budget}: SA {} != DP {}",
                sa.value,
                dp.value
            );
        }
    }

    #[test]
    fn sa_beats_greedy_at_small_budgets() {
        // Uniform 4-wide one-to-one chain into a single sink. All sources
        // and mids tie on single-failure OF, so greedy's top-4 picks the
        // sink plus three sources — no complete MC-tree — while SA
        // completes a source→mid→sink tree.
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 4, 100.0));
        let m = b.add_operator(OperatorSpec::map("m", 4, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 1, 1.0));
        b.connect(s, m, Partitioning::OneToOne).unwrap();
        b.connect(m, k, Partitioning::Merge).unwrap();
        let cx = PlanContext::new(&b.build().unwrap()).unwrap();
        let sa = StructureAwarePlanner::default().plan(&cx, 4).unwrap();
        let greedy = GreedyPlanner.plan(&cx, 4).unwrap();
        assert_eq!(greedy.value, 0.0, "greedy assembles no complete MC-tree");
        assert!(sa.value > 0.0, "SA completes a tree: {:?}", sa.tasks);
    }

    #[test]
    fn sa_handles_full_topologies() {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(
            OperatorSpec::source("s", 3, 10.0)
                .with_weights(TaskWeights::Explicit(vec![5.0, 3.0, 1.0])),
        );
        let m = b.add_operator(OperatorSpec::map("m", 3, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 2, 1.0));
        b.connect(s, m, Partitioning::Full).unwrap();
        b.connect(m, k, Partitioning::Full).unwrap();
        let cx = PlanContext::new(&b.build().unwrap()).unwrap();
        let plan = StructureAwarePlanner::default().plan(&cx, 3).unwrap();
        assert_eq!(plan.resources(), 3, "one task per operator");
        assert!(plan.value > 0.0);
        let plan_all = StructureAwarePlanner::default().plan(&cx, 8).unwrap();
        assert!((plan_all.value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sa_handles_mixed_topologies() {
        // structured head -> full tail.
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 4, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        let f = b.add_operator(OperatorSpec::map("f", 2, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 1, 1.0));
        b.connect(s, m, Partitioning::Merge).unwrap();
        b.connect(m, f, Partitioning::Full).unwrap();
        b.connect(f, k, Partitioning::Full).unwrap();
        let cx = PlanContext::new(&b.build().unwrap()).unwrap();
        let plan = StructureAwarePlanner::default().plan(&cx, 4).unwrap();
        assert!(
            plan.value > 0.0,
            "stitched tree across sub-topologies: {:?}",
            plan.tasks
        );
        assert!(plan.resources() <= 4);
    }

    #[test]
    fn sa_returns_empty_below_min_tree_size() {
        let cx = PlanContext::new(&merge_chain(vec![1.0; 4])).unwrap();
        let plan = StructureAwarePlanner::default().plan(&cx, 2).unwrap();
        assert!(plan.tasks.is_empty());
        assert_eq!(plan.value, 0.0);
    }

    #[test]
    fn sa_value_is_monotone_in_budget() {
        let cx = PlanContext::new(&merge_chain(vec![8.0, 4.0, 2.0, 1.0])).unwrap();
        let mut prev = 0.0;
        for budget in 0..=7 {
            let plan = StructureAwarePlanner::default().plan(&cx, budget).unwrap();
            assert!(
                plan.value >= prev - 1e-9,
                "budget {budget}: {} < {prev}",
                plan.value
            );
            prev = plan.value;
        }
    }
}
