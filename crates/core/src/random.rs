//! Random topology generation for the Fig. 14 experiments (§VI-C).
//!
//! The paper's generator produces topologies "with different specifications":
//! operator count (5–10), per-operator parallelism (1–10 or 10–20), task
//! workload skew (uniform vs Zipf), structured vs full partitioning, and
//! join-operator fraction (0 or 50%). This module reproduces those knobs.
//!
//! Generation is layered: sources in layer 0, one sink in the last layer,
//! every non-source operator drawing one input (two for joins) from earlier
//! layers. Partitioning schemes are sampled to respect the arity rules of
//! §II-A, adjusting downstream parallelism on an operator's first inbound
//! edge and falling back to `Full` when no non-full scheme fits a later
//! inbound edge (only possible for joins in structured mode; rare and
//! harmless for the experiment).

use crate::model::{
    InputSemantics, OperatorId, OperatorSpec, Partitioning, TaskWeights, Topology, TopologyBuilder,
};
use rand::Rng;

/// Workload skew across the tasks of each operator (Fig. 14(a)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Skew {
    Uniform,
    /// Zipf with exponent `s` (the paper uses `s = 0.1`).
    Zipf {
        s: f64,
    },
}

impl Skew {
    fn weights(self) -> TaskWeights {
        match self {
            Skew::Uniform => TaskWeights::Uniform,
            Skew::Zipf { s } => TaskWeights::Zipf { s },
        }
    }
}

/// Partitioning style of the generated topology (Fig. 14(c)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyStyle {
    /// Only one-to-one / split / merge edges (full only as a last-resort
    /// fallback for join arity conflicts).
    Structured,
    /// Every edge uses full partitioning.
    Full,
    /// Each edge is full with the given probability, structured otherwise.
    Mixed { full_probability: f64 },
}

/// Specification for one random topology.
#[derive(Debug, Clone)]
pub struct RandomTopologySpec {
    /// Inclusive range of operator counts (paper: 5..=10).
    pub n_operators: (usize, usize),
    /// Inclusive range of per-operator parallelism (paper: 1..=10, 10..=20).
    pub parallelism: (usize, usize),
    /// Fraction of eligible operators made correlated-input (paper: 0, 0.5).
    pub join_fraction: f64,
    /// Task workload skew.
    pub skew: Skew,
    /// Partitioning style.
    pub style: TopologyStyle,
    /// Mean per-task rate of source operators.
    pub source_rate: f64,
    /// Inclusive selectivity range for non-source operators.
    pub selectivity: (f64, f64),
}

impl Default for RandomTopologySpec {
    fn default() -> Self {
        RandomTopologySpec {
            n_operators: (5, 10),
            parallelism: (1, 10),
            join_fraction: 0.0,
            skew: Skew::Uniform,
            style: TopologyStyle::Structured,
            source_rate: 1_000.0,
            selectivity: (0.3, 1.0),
        }
    }
}

impl RandomTopologySpec {
    /// Generates one topology from this spec using `rng`.
    pub fn generate(&self, rng: &mut impl Rng) -> Topology {
        loop {
            // Retry on the (rare) occasions the sampled layout fails
            // validation; the generator below is constructed so this should
            // not happen, but a retry loop keeps the API infallible.
            if let Ok(t) = self.try_generate(rng) {
                return t;
            }
        }
    }

    fn try_generate(&self, rng: &mut impl Rng) -> crate::error::Result<Topology> {
        let n_ops = rng
            .gen_range(self.n_operators.0..=self.n_operators.1)
            .max(2);
        let (pmin, pmax) = self.parallelism;

        // Layering: sources, middles, one sink.
        let n_layers = rng.gen_range(2..=4usize.min(n_ops));
        let mut layer_of = vec![0usize; n_ops];
        // Last op is the sink, alone in the last layer.
        layer_of[n_ops - 1] = n_layers - 1;
        // First op(s) in layer 0; the rest spread over 0..n_layers-1.
        for (i, l) in layer_of.iter_mut().enumerate().take(n_ops - 1) {
            *l = if i == 0 {
                0
            } else {
                rng.gen_range(0..n_layers.saturating_sub(1).max(1))
            };
        }

        // Sample parallelism; the sink tends to be narrow in real queries,
        // but we keep the paper's uniform sampling.
        let mut parallelism: Vec<usize> = (0..n_ops).map(|_| rng.gen_range(pmin..=pmax)).collect();

        // Choose join operators among those we will give two inputs.
        let mut is_join = vec![false; n_ops];

        // Edges: (from, to). Built operator by operator in layer order.
        let mut order: Vec<usize> = (0..n_ops).collect();
        order.sort_by_key(|&i| (layer_of[i], i));
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut has_input = vec![false; n_ops];
        let mut has_output = vec![false; n_ops];

        for &i in &order {
            if layer_of[i] == 0 {
                continue; // source
            }
            let candidates: Vec<usize> = (0..n_ops)
                .filter(|&u| layer_of[u] < layer_of[i] && u != i)
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let n_inputs =
                if rng.gen_bool(self.join_fraction.clamp(0.0, 1.0)) && candidates.len() >= 2 {
                    is_join[i] = true;
                    2
                } else {
                    1
                };
            let mut chosen: Vec<usize> = Vec::new();
            while chosen.len() < n_inputs {
                let u = candidates[rng.gen_range(0..candidates.len())];
                if !chosen.contains(&u) {
                    chosen.push(u);
                }
            }
            for u in chosen {
                edges.push((u, i));
                has_input[i] = true;
                has_output[u] = true;
            }
        }

        // Dangling non-sink middle operators feed a later operator when a
        // compatible scheme will exist; otherwise they stay as extra sinks
        // (the model allows multiple sink operators). Connecting them
        // unconditionally would force `Full` fallback edges in structured
        // mode, which would leak full partitioning into Fig. 14(c)'s
        // structured corpus.
        for i in 0..n_ops - 1 {
            if !has_output[i] {
                let later: Vec<usize> = (0..n_ops)
                    .filter(|&v| layer_of[v] > layer_of[i] && v != i)
                    .collect();
                let compatible_later = later.iter().copied().find(|&v| {
                    !has_input[v]
                        || matches!(
                            self.style,
                            TopologyStyle::Full | TopologyStyle::Mixed { .. }
                        )
                        || parallelism[i] == parallelism[v]
                        || (parallelism[i] > parallelism[v]
                            && parallelism[i].is_multiple_of(parallelism[v]))
                        || (parallelism[v] > parallelism[i]
                            && parallelism[v].is_multiple_of(parallelism[i]))
                });
                if let Some(v) = compatible_later {
                    if !edges.contains(&(i, v)) {
                        edges.push((i, v));
                        has_input[v] = true;
                        has_output[i] = true;
                    }
                }
            }
        }

        // Assign partitionings in edge insertion order, adjusting the
        // downstream parallelism on first inbound edges.
        let mut partitionings: Vec<Partitioning> = Vec::with_capacity(edges.len());
        let mut seen_input = vec![false; n_ops];
        // Sort edges by downstream op so first-inbound adjustment is well
        // defined, preserving relative order otherwise.
        let mut edge_order: Vec<usize> = (0..edges.len()).collect();
        edge_order.sort_by_key(|&e| (layer_of[edges[e].1], edges[e].1, e));

        let mut parts_by_edge: Vec<Option<Partitioning>> = vec![None; edges.len()];
        for &e in &edge_order {
            let (u, v) = edges[e];
            let n1 = parallelism[u];
            let want_full = match self.style {
                TopologyStyle::Full => true,
                TopologyStyle::Structured => false,
                TopologyStyle::Mixed { full_probability } => rng.gen_bool(full_probability),
            };
            let part = if want_full {
                Partitioning::Full
            } else if !seen_input[v] {
                // First inbound edge: we may adjust v's parallelism.
                let choice = rng.gen_range(0..3);
                match choice {
                    0 => {
                        parallelism[v] = n1;
                        Partitioning::OneToOne
                    }
                    1 => {
                        let k = rng.gen_range(2..=3usize);
                        if n1 * k <= pmax.max(n1 * 2) {
                            parallelism[v] = n1 * k;
                            Partitioning::Split
                        } else {
                            parallelism[v] = n1;
                            Partitioning::OneToOne
                        }
                    }
                    _ => {
                        let divisors: Vec<usize> = (1..n1)
                            .filter(|d| n1.is_multiple_of(*d) && *d < n1)
                            .collect();
                        if let Some(&d) = divisors.get(rng.gen_range(0..divisors.len().max(1))) {
                            parallelism[v] = d;
                            Partitioning::Merge
                        } else {
                            parallelism[v] = n1;
                            Partitioning::OneToOne
                        }
                    }
                }
            } else {
                // Later inbound edge: find any compatible non-full scheme.
                let n2 = parallelism[v];
                if n1 == n2 {
                    Partitioning::OneToOne
                } else if n1 > n2 && n1.is_multiple_of(n2) {
                    Partitioning::Merge
                } else if n2 > n1 && n2.is_multiple_of(n1) {
                    Partitioning::Split
                } else if matches!(self.style, TopologyStyle::Structured) && !is_join[v] {
                    // Dropping the edge keeps the corpus purely structured;
                    // the upstream operator simply becomes an extra sink.
                    continue;
                } else {
                    Partitioning::Full // last resort (join arity conflict)
                }
            };
            seen_input[v] = true;
            parts_by_edge[e] = Some(part);
        }
        let kept: Vec<(usize, (usize, usize), Partitioning)> = edges
            .iter()
            .enumerate()
            .filter_map(|(e, &uv)| parts_by_edge[e].map(|p| (e, uv, p)))
            .collect();
        partitionings.extend(kept.iter().map(|&(_, _, p)| p));
        let edges: Vec<(usize, usize)> = kept.iter().map(|&(_, uv, _)| uv).collect();

        // Dropped edges may orphan a downstream operator's inputs entirely;
        // recompute input presence so specs stay consistent.
        let mut has_input = vec![false; n_ops];
        for &(_, v) in &edges {
            has_input[v] = true;
        }

        // Build the topology.
        let mut b = TopologyBuilder::new();
        let weights = self.skew.weights();
        for i in 0..n_ops {
            let para = parallelism[i].max(1);
            let spec = if !has_input[i] {
                OperatorSpec::source(format!("O{i}"), para, self.source_rate)
                    .with_weights(weights.clone())
            } else {
                let sel = rng.gen_range(self.selectivity.0..=self.selectivity.1);
                let mut s =
                    OperatorSpec::map(format!("O{i}"), para, sel).with_weights(weights.clone());
                if is_join[i] {
                    s = s.with_semantics(InputSemantics::Correlated);
                }
                s
            };
            b.add_operator(spec);
        }
        for (e, &(u, v)) in edges.iter().enumerate() {
            b.connect(OperatorId(u), OperatorId(v), partitionings[e])?;
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen_many(spec: &RandomTopologySpec, n: usize, seed: u64) -> Vec<Topology> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| spec.generate(&mut rng)).collect()
    }

    #[test]
    fn structured_spec_generates_valid_topologies() {
        let spec = RandomTopologySpec::default();
        for t in gen_many(&spec, 50, 1) {
            assert!(t.n_operators() >= 2);
            assert!(!t.sources().is_empty());
            assert!(!t.sinks().is_empty());
        }
    }

    #[test]
    fn full_spec_uses_only_full_edges() {
        let spec = RandomTopologySpec {
            style: TopologyStyle::Full,
            ..RandomTopologySpec::default()
        };
        for t in gen_many(&spec, 30, 2) {
            for e in t.edges() {
                assert_eq!(e.partitioning, Partitioning::Full);
            }
        }
    }

    #[test]
    fn structured_spec_avoids_full_edges_for_single_input_ops() {
        let spec = RandomTopologySpec::default(); // join_fraction = 0
        for t in gen_many(&spec, 30, 3) {
            for e in t.edges() {
                assert_ne!(
                    e.partitioning,
                    Partitioning::Full,
                    "structured non-join topologies never need the full fallback"
                );
            }
        }
    }

    #[test]
    fn join_fraction_produces_correlated_operators() {
        let spec = RandomTopologySpec {
            join_fraction: 1.0,
            n_operators: (6, 8),
            ..RandomTopologySpec::default()
        };
        let ts = gen_many(&spec, 20, 4);
        let joins: usize = ts
            .iter()
            .flat_map(|t| t.operators())
            .filter(|o| o.semantics == InputSemantics::Correlated)
            .count();
        assert!(joins > 0, "with join_fraction=1 some joins must appear");
    }

    #[test]
    fn zipf_skew_sets_weights() {
        let spec = RandomTopologySpec {
            skew: Skew::Zipf { s: 0.1 },
            ..RandomTopologySpec::default()
        };
        let t = spec.generate(&mut StdRng::seed_from_u64(5));
        for op in t.operators() {
            assert_eq!(op.weights, TaskWeights::Zipf { s: 0.1 });
        }
    }

    #[test]
    fn parallelism_respects_range_lower_bound() {
        let spec = RandomTopologySpec {
            parallelism: (10, 20),
            ..RandomTopologySpec::default()
        };
        for t in gen_many(&spec, 20, 6) {
            for op in t.operators() {
                assert!(op.parallelism >= 1);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = RandomTopologySpec::default();
        let a = gen_many(&spec, 5, 42);
        let b = gen_many(&spec, 5, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn generated_topologies_are_plannable() {
        use crate::planner::{GreedyPlanner, PlanContext, Planner, StructureAwarePlanner};
        let spec = RandomTopologySpec {
            n_operators: (5, 7),
            parallelism: (1, 6),
            join_fraction: 0.5,
            style: TopologyStyle::Mixed {
                full_probability: 0.3,
            },
            ..RandomTopologySpec::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let t = spec.generate(&mut rng);
            let cx = PlanContext::new(&t).unwrap();
            let budget = (t.n_tasks() / 2).max(1);
            let sa = StructureAwarePlanner::default().plan(&cx, budget).unwrap();
            let gr = GreedyPlanner.plan(&cx, budget).unwrap();
            assert!(sa.resources() <= budget);
            assert!(gr.resources() <= budget);
            assert!((0.0..=1.0 + 1e-9).contains(&sa.value));
            assert!((0.0..=1.0 + 1e-9).contains(&gr.value));
        }
    }
}
