//! # ppa-lint — workspace-native determinism & robustness linter
//!
//! The repo's load-bearing guarantee is byte-identical stdout for every
//! figure and sweep at any `--jobs` count. End-to-end smoke runs catch a
//! nondeterminism bug only *after* it ships; this crate rejects the bug
//! classes at review time with six token-level rules:
//!
//! | Rule | Catches |
//! |------|---------|
//! | D001 | `HashMap`/`HashSet` whose iteration order can escape into plans, reports or stdout |
//! | D002 | Ambient wall-clock time (`SystemTime`/`Instant`) outside the stopwatch module |
//! | D003 | Ambient randomness (entropy-seeded RNG construction) |
//! | D004 | Ambient concurrency (`thread::spawn`, `static mut`, sync primitives) in the deterministic crates |
//! | D005 | `unwrap`/`expect`/`panic!` in the deterministic crates |
//! | D006 | `{:?}` Debug formatting flowing into output paths |
//!
//! Built on a real tokenizer ([`lexer`]) — comments, strings and raw
//! strings are handled, so `unwrap()` in a doc comment is not a finding.
//! Legacy debt lives in a committed, ratcheted baseline ([`baseline`]);
//! reviewed exceptions use scoped pragmas with mandatory reasons
//! ([`pragma`]):
//!
//! ```text
//! let seen: HashSet<u32> = ... // ppa-lint: allow(D001, reason = "membership-only dedup")
//! ```
//!
//! Run `cargo run -p ppa-lint` from the workspace root; see `--help`.

pub mod baseline;
pub mod findings;
pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod scan;

pub use baseline::{Baseline, Breach};
pub use findings::{Finding, LintError, RuleId};
pub use scan::{analyze_source, analyze_workspace, run_gate, Analysis, GateResult};

use std::fmt::Write as _;

/// Renders a gate result as the machine-readable `--json` document
/// (dependency-free writer, stable key order).
pub fn render_json(result: &GateResult) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"files\": {},", result.analysis.files);
    let _ = writeln!(out, "  \"passed\": {},", result.passed());

    out.push_str("  \"findings\": [\n");
    for (i, f) in result.analysis.findings.iter().enumerate() {
        let comma = if i + 1 < result.analysis.findings.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"file\": {}, \"line\": {}, \"message\": {}}}{comma}",
            f.rule,
            json_str(&f.file),
            f.line,
            json_str(&f.message)
        );
    }
    out.push_str("  ],\n");

    out.push_str("  \"suppressed\": [\n");
    for (i, (f, reason)) in result.analysis.suppressed.iter().enumerate() {
        let comma = if i + 1 < result.analysis.suppressed.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"file\": {}, \"line\": {}, \"reason\": {}}}{comma}",
            f.rule,
            json_str(&f.file),
            f.line,
            json_str(reason)
        );
    }
    out.push_str("  ],\n");

    out.push_str("  \"errors\": [\n");
    for (i, e) in result.analysis.errors.iter().enumerate() {
        let comma = if i + 1 < result.analysis.errors.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"file\": {}, \"line\": {}, \"message\": {}}}{comma}",
            json_str(&e.file),
            e.line,
            json_str(&e.message)
        );
    }
    out.push_str("  ],\n");

    out.push_str("  \"breaches\": [\n");
    for (i, b) in result.breaches.iter().enumerate() {
        let comma = if i + 1 < result.breaches.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"kind\": \"{}\", \"detail\": {}}}{comma}",
            if b.is_new() { "new" } else { "stale" },
            json_str(&b.to_string())
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Escapes a string as a JSON literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_is_well_formed_for_empty_and_nonempty_results() {
        let empty = GateResult {
            analysis: Analysis::default(),
            breaches: Vec::new(),
        };
        let doc = render_json(&empty);
        assert!(doc.contains("\"passed\": true"));
        assert!(doc.ends_with("}\n"));

        let mut analysis = Analysis::default();
        scan::analyze_source(
            "crates/engine/src/x.rs",
            "let m: HashMap<u8, \"quote\\\"d\"> = x.unwrap();",
            &mut analysis,
        );
        let breaches = Baseline::default().diff(&analysis.findings);
        let result = GateResult { analysis, breaches };
        let doc = render_json(&result);
        assert!(doc.contains("\"passed\": false"));
        assert!(doc.contains("\"rule\": \"D001\""));
        assert!(doc.contains("\"kind\": \"new\""));
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
