//! Scoped suppressions: `// ppa-lint: allow(D001, reason = "...")`.
//!
//! A pragma suppresses matching findings on **its own line** (trailing
//! comment) or on **the line immediately below** (standalone comment
//! above the offending statement). The `reason` is mandatory and must be
//! non-empty: a suppression without a recorded justification is itself a
//! hard error — the whole point of the ratchet is that every tolerated
//! hazard is either baselined (legacy) or explained (reviewed).

use crate::findings::{Finding, LintError, RuleId};
use crate::lexer::{Tok, TokKind};

/// One parsed `allow` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// Line the pragma comment starts on.
    pub line: u32,
    pub rules: Vec<RuleId>,
    pub reason: String,
}

impl Pragma {
    /// Whether this pragma covers `finding` (same line or the line below
    /// the pragma, and a matching rule id).
    pub fn covers(&self, finding: &Finding) -> bool {
        (finding.line == self.line || finding.line == self.line + 1)
            && self.rules.contains(&finding.rule)
    }
}

/// Extracts every pragma from a file's comment tokens. Malformed pragmas
/// (unparsable directive, unknown rule id, missing or empty reason) are
/// reported as [`LintError`]s, which always fail the run.
pub fn parse_pragmas(file: &str, toks: &[Tok]) -> (Vec<Pragma>, Vec<LintError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for t in toks {
        if t.kind != TokKind::Comment {
            continue;
        }
        // Doc comments are documentation *about* pragmas, never pragmas
        // themselves — only plain `//` / `/*` comments carry directives.
        if t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = t.text.find("ppa-lint:") else {
            continue;
        };
        let directive = t.text[pos + "ppa-lint:".len()..].trim();
        match parse_allow(directive) {
            Ok((rules, reason)) => pragmas.push(Pragma {
                line: t.line,
                rules,
                reason,
            }),
            Err(msg) => errors.push(LintError {
                file: file.to_string(),
                line: t.line,
                message: msg,
            }),
        }
    }
    (pragmas, errors)
}

/// Parses `allow(D001, D005, reason = "...")` after the `ppa-lint:` marker.
fn parse_allow(directive: &str) -> Result<(Vec<RuleId>, String), String> {
    let rest = directive
        .strip_prefix("allow")
        .ok_or_else(|| format!("unknown ppa-lint directive `{directive}` (expected `allow(...)`)"))?
        .trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "malformed pragma: expected `allow(...)`".to_string())?;
    let inner = rest
        .rfind(')')
        .map(|end| &rest[..end])
        .ok_or_else(|| "malformed pragma: missing closing `)`".to_string())?;

    let mut rules = Vec::new();
    let mut reason: Option<String> = None;
    // `reason = "..."` may itself contain commas, so split only until the
    // reason key is seen.
    let mut remaining = inner;
    while !remaining.trim().is_empty() {
        let part;
        if let Some(idx) = remaining.find(',') {
            part = remaining[..idx].trim();
            remaining = &remaining[idx + 1..];
        } else {
            part = remaining.trim();
            remaining = "";
        }
        if let Some(value) = part.strip_prefix("reason") {
            let value = value.trim_start();
            let value = value
                .strip_prefix('=')
                .ok_or_else(|| "malformed pragma: expected `reason = \"...\"`".to_string())?;
            // The reason runs to the closing paren; re-attach what the
            // comma split may have taken off.
            let full = if remaining.is_empty() {
                value.trim().to_string()
            } else {
                format!("{},{}", value.trim_start(), remaining)
            };
            let full = full.trim();
            let quoted = full
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| {
                    "malformed pragma: reason must be a \"quoted string\"".to_string()
                })?;
            if quoted.trim().is_empty() {
                return Err("suppression reason must not be empty".to_string());
            }
            reason = Some(quoted.to_string());
            remaining = "";
        } else if !part.is_empty() {
            let id = RuleId::parse(part)
                .ok_or_else(|| format!("unknown rule id `{part}` in allow pragma"))?;
            rules.push(id);
        }
    }
    if rules.is_empty() {
        return Err("allow pragma names no rule ids".to_string());
    }
    let reason = reason
        .ok_or_else(|| "allow pragma is missing the mandatory `reason = \"...\"`".to_string())?;
    Ok((rules, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> (Vec<Pragma>, Vec<LintError>) {
        parse_pragmas("f.rs", &lex(src))
    }

    #[test]
    fn well_formed_pragma_parses() {
        let (p, e) = parse("// ppa-lint: allow(D001, reason = \"membership-only set\")\nx");
        assert!(e.is_empty(), "{e:?}");
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].rules, vec![RuleId::D001]);
        assert_eq!(p[0].reason, "membership-only set");
        assert_eq!(p[0].line, 1);
    }

    #[test]
    fn multiple_rules_and_commas_inside_reason() {
        let (p, e) = parse("// ppa-lint: allow(D001, D005, reason = \"a, b, and c\")");
        assert!(e.is_empty(), "{e:?}");
        assert_eq!(p[0].rules, vec![RuleId::D001, RuleId::D005]);
        assert_eq!(p[0].reason, "a, b, and c");
    }

    #[test]
    fn missing_reason_is_a_hard_error() {
        let (p, e) = parse("// ppa-lint: allow(D001)");
        assert!(p.is_empty());
        assert_eq!(e.len(), 1);
        assert!(e[0].message.contains("reason"), "{}", e[0].message);
    }

    #[test]
    fn empty_reason_is_a_hard_error() {
        let (_, e) = parse("// ppa-lint: allow(D002, reason = \"  \")");
        assert_eq!(e.len(), 1);
        assert!(e[0].message.contains("empty"), "{}", e[0].message);
    }

    #[test]
    fn unknown_rule_id_is_a_hard_error() {
        let (_, e) = parse("// ppa-lint: allow(D099, reason = \"x\")");
        assert_eq!(e.len(), 1);
        assert!(e[0].message.contains("D099"), "{}", e[0].message);
    }

    #[test]
    fn pragma_covers_same_line_and_next_line_only() {
        let p = Pragma {
            line: 10,
            rules: vec![RuleId::D001],
            reason: "r".into(),
        };
        let f = |line, rule| Finding {
            rule,
            file: "f.rs".into(),
            line,
            message: String::new(),
        };
        assert!(p.covers(&f(10, RuleId::D001)));
        assert!(p.covers(&f(11, RuleId::D001)));
        assert!(!p.covers(&f(12, RuleId::D001)));
        assert!(!p.covers(&f(9, RuleId::D001)));
        assert!(!p.covers(&f(10, RuleId::D005)));
    }

    #[test]
    fn pragma_text_inside_string_literals_is_ignored() {
        let (p, e) = parse(r#"let s = "ppa-lint: allow(D001)";"#);
        assert!(p.is_empty());
        assert!(e.is_empty(), "strings are not comments: {e:?}");
    }
}
