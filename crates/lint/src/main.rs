//! The `ppa-lint` CLI.
//!
//! ```text
//! cargo run -p ppa-lint                         # gate against lint-baseline.txt
//! cargo run -p ppa-lint -- --json lint.json     # also write the JSON report
//! cargo run -p ppa-lint -- --write-baseline     # lock in a shrunk baseline
//! cargo run -p ppa-lint -- --no-baseline        # print every finding, ungated
//! ```
//!
//! Exit codes: 0 gate passed; 1 new findings, stale baseline or malformed
//! pragmas; 2 usage or I/O error.

use ppa_lint::{render_json, run_gate, Baseline};
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: ppa-lint [--root DIR] [--baseline PATH] [--json PATH] \
     [--write-baseline] [--no-baseline]";

struct Opts {
    root: PathBuf,
    baseline_path: PathBuf,
    json_path: Option<PathBuf>,
    write_baseline: bool,
    no_baseline: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        baseline_path: PathBuf::new(),
        json_path: None,
        write_baseline: false,
        no_baseline: false,
    };
    let mut baseline_override: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--root needs a path".to_string())?,
                );
            }
            "--baseline" => {
                baseline_override = Some(PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--baseline needs a path".to_string())?,
                ));
            }
            "--json" => {
                opts.json_path = Some(PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--json needs a path".to_string())?,
                ));
            }
            "--write-baseline" => opts.write_baseline = true,
            "--no-baseline" => opts.no_baseline = true,
            "--help" | "-h" => {
                println!("{USAGE}\n\nrules:");
                for rule in ppa_lint::rules::registry() {
                    println!("  {}  {}", rule.id, rule.summary);
                }
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    opts.baseline_path = baseline_override.unwrap_or_else(|| opts.root.join("lint-baseline.txt"));
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if !opts.root.join("Cargo.toml").is_file() {
        eprintln!(
            "ppa-lint: {} does not look like the workspace root (no Cargo.toml); \
             run from the repo root or pass --root",
            opts.root.display()
        );
        return ExitCode::from(2);
    }

    let baseline = if opts.no_baseline || opts.write_baseline {
        Baseline::default()
    } else {
        match fs::read_to_string(&opts.baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("ppa-lint: {}: {e}", opts.baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!(
                    "ppa-lint: cannot read baseline {}: {e} (use --write-baseline to create it)",
                    opts.baseline_path.display()
                );
                return ExitCode::from(2);
            }
        }
    };

    let result = match run_gate(&opts.root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ppa-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.json_path {
        if let Err(e) = fs::write(path, render_json(&result)) {
            eprintln!("ppa-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if opts.write_baseline {
        let regenerated = Baseline::from_findings(&result.analysis.findings);
        if let Err(e) = fs::write(&opts.baseline_path, regenerated.render()) {
            eprintln!(
                "ppa-lint: cannot write {}: {e}",
                opts.baseline_path.display()
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "ppa-lint: wrote {} ({} findings across {} files baselined)",
            opts.baseline_path.display(),
            result.analysis.findings.len(),
            regenerated.entries.len(),
        );
        // Pragma errors still fail a --write-baseline run: the baseline
        // ratchets counts, it must never launder a malformed suppression.
        for e in &result.analysis.errors {
            eprintln!("{e}");
        }
        return if result.analysis.errors.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for e in &result.analysis.errors {
        eprintln!("{e}");
    }

    if opts.no_baseline {
        for f in &result.analysis.findings {
            println!("{f}");
        }
        eprintln!(
            "ppa-lint: {} finding(s) in {} file(s), {} suppressed (baseline not applied)",
            result.analysis.findings.len(),
            result.analysis.files,
            result.analysis.suppressed.len(),
        );
        return if result.analysis.errors.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let new_breach = result.breaches.iter().any(|b| b.is_new());
    for breach in &result.breaches {
        eprintln!("{breach}");
    }
    if new_breach {
        // Name the individual candidate sites for every breached
        // (rule, file) pair so the offender is one click away.
        for f in &result.analysis.findings {
            if result
                .breaches
                .iter()
                .any(|b| b.is_new() && breach_names(b, f))
            {
                eprintln!("  {f}");
            }
        }
    }

    if result.passed() {
        eprintln!(
            "ppa-lint: clean — {} file(s), {} baselined finding(s), {} suppressed",
            result.analysis.files,
            result.analysis.findings.len(),
            result.analysis.suppressed.len(),
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Whether a finding belongs to the (rule, file) pair of a breach.
fn breach_names(b: &ppa_lint::Breach, f: &ppa_lint::Finding) -> bool {
    match b {
        ppa_lint::Breach::New { rule, file, .. } | ppa_lint::Breach::Stale { rule, file, .. } => {
            *rule == f.rule && *file == f.file
        }
    }
}
