//! The ratchet: a committed `lint-baseline.txt` records, per rule and
//! file, how many findings are tolerated as legacy debt. The gate fails
//! on any *new* finding (count above baseline) and on a *stale* baseline
//! (count below baseline, or an entry for a vanished file) — so the only
//! way the numbers move is down, and the working tree always documents
//! exactly how much debt remains.

use crate::findings::{Finding, RuleId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-(rule, file) tolerated finding counts. BTreeMap keeps the
/// serialized form canonical, so regenerating the baseline is a stable
/// diff.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub entries: BTreeMap<(RuleId, String), usize>,
}

/// One baseline violation: either findings exceeding the tolerated count
/// or a baseline entry the code has outgrown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Breach {
    /// `count` findings where the baseline tolerates only `tolerated` —
    /// someone introduced a new hazard.
    New {
        rule: RuleId,
        file: String,
        count: usize,
        tolerated: usize,
    },
    /// Fewer findings than baselined — the debt shrank (good!), but the
    /// committed baseline must be regenerated so the ratchet locks in
    /// the lower number.
    Stale {
        rule: RuleId,
        file: String,
        count: usize,
        tolerated: usize,
    },
}

impl Baseline {
    /// Parses the `lint-baseline.txt` format: one `RULE path count` per
    /// line, `#` comments and blank lines ignored.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(path), Some(count), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline line {}: expected `RULE path count`, got `{line}`",
                    idx + 1
                ));
            };
            let rule = RuleId::parse(rule)
                .ok_or_else(|| format!("baseline line {}: unknown rule `{rule}`", idx + 1))?;
            let count: usize = count.parse().map_err(|_| {
                format!("baseline line {}: count `{count}` is not a number", idx + 1)
            })?;
            if count == 0 {
                return Err(format!(
                    "baseline line {}: zero-count entries must be deleted, not kept",
                    idx + 1
                ));
            }
            if entries.insert((rule, path.to_string()), count).is_some() {
                return Err(format!(
                    "baseline line {}: duplicate entry for {rule} {path}",
                    idx + 1
                ));
            }
        }
        Ok(Baseline { entries })
    }

    /// Builds the baseline that would make `findings` pass exactly.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<(RuleId, String), usize> = BTreeMap::new();
        for f in findings {
            *entries.entry((f.rule, f.file.clone())).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Serializes to the committed file format.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# ppa-lint baseline — tolerated legacy findings, per rule and file.\n\
             # The ratchet only shrinks: CI fails on any new finding and on a stale\n\
             # (shrinkable) baseline. Regenerate after burning down debt with:\n\
             #   cargo run -p ppa-lint -- --write-baseline\n",
        );
        for ((rule, file), count) in &self.entries {
            // Infallible: writing to a String cannot fail.
            let _ = writeln!(out, "{rule} {file} {count}");
        }
        out
    }

    /// Compares current findings against the baseline. An empty result
    /// means the gate passes.
    pub fn diff(&self, findings: &[Finding]) -> Vec<Breach> {
        let current = Baseline::from_findings(findings).entries;
        let mut breaches = Vec::new();
        for ((rule, file), &count) in &current {
            let tolerated = self
                .entries
                .get(&(*rule, file.clone()))
                .copied()
                .unwrap_or(0);
            if count > tolerated {
                breaches.push(Breach::New {
                    rule: *rule,
                    file: file.clone(),
                    count,
                    tolerated,
                });
            } else if count < tolerated {
                breaches.push(Breach::Stale {
                    rule: *rule,
                    file: file.clone(),
                    count,
                    tolerated,
                });
            }
        }
        for ((rule, file), &tolerated) in &self.entries {
            if !current.contains_key(&(*rule, file.clone())) {
                breaches.push(Breach::Stale {
                    rule: *rule,
                    file: file.clone(),
                    count: 0,
                    tolerated,
                });
            }
        }
        breaches.sort_by_key(|b| b.key());
        breaches
    }
}

impl Breach {
    fn key(&self) -> (RuleId, String) {
        match self {
            Breach::New { rule, file, .. } | Breach::Stale { rule, file, .. } => {
                (*rule, file.clone())
            }
        }
    }

    pub fn is_new(&self) -> bool {
        matches!(self, Breach::New { .. })
    }
}

impl std::fmt::Display for Breach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Breach::New {
                rule,
                file,
                count,
                tolerated,
            } => write!(
                f,
                "{file}: {count} {rule} finding(s), baseline tolerates {tolerated} — fix the \
                 new site(s) or suppress with `// ppa-lint: allow({rule}, reason = \"...\")`"
            ),
            Breach::Stale {
                rule,
                file,
                count,
                tolerated,
            } => write!(
                f,
                "{file}: baseline tolerates {tolerated} {rule} finding(s) but only {count} \
                 remain — run `cargo run -p ppa-lint -- --write-baseline` to lock in the \
                 lower count"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: RuleId, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let findings = vec![
            f(RuleId::D005, "crates/engine/src/a.rs", 1),
            f(RuleId::D005, "crates/engine/src/a.rs", 9),
            f(RuleId::D001, "crates/core/src/b.rs", 3),
        ];
        let b = Baseline::from_findings(&findings);
        let reparsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(b, reparsed);
        assert_eq!(
            reparsed.entries[&(RuleId::D005, "crates/engine/src/a.rs".into())],
            2
        );
    }

    #[test]
    fn matching_findings_pass() {
        let findings = vec![f(RuleId::D005, "a.rs", 1), f(RuleId::D005, "a.rs", 2)];
        let b = Baseline::from_findings(&findings);
        assert!(b.diff(&findings).is_empty());
    }

    #[test]
    fn extra_finding_is_a_new_breach() {
        let b = Baseline::from_findings(&[f(RuleId::D005, "a.rs", 1)]);
        let now = vec![f(RuleId::D005, "a.rs", 1), f(RuleId::D005, "a.rs", 7)];
        let breaches = b.diff(&now);
        assert_eq!(breaches.len(), 1);
        assert!(breaches[0].is_new());
    }

    #[test]
    fn finding_in_unbaselined_file_is_new() {
        let b = Baseline::default();
        let breaches = b.diff(&[f(RuleId::D001, "fresh.rs", 1)]);
        assert_eq!(breaches.len(), 1);
        assert!(breaches[0].is_new());
    }

    #[test]
    fn shrunk_or_vanished_counts_are_stale() {
        let b = Baseline::parse("D005 a.rs 3\nD001 gone.rs 1\n").unwrap();
        let breaches = b.diff(&[f(RuleId::D005, "a.rs", 1)]);
        assert_eq!(breaches.len(), 2);
        assert!(breaches.iter().all(|b| !b.is_new()));
        // Sorted by (rule, file): the vanished D001 entry leads.
        assert!(breaches[0].to_string().contains("gone.rs"), "{breaches:?}");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Baseline::parse("D005 a.rs").is_err(), "missing count");
        assert!(Baseline::parse("D999 a.rs 1").is_err(), "unknown rule");
        assert!(Baseline::parse("D005 a.rs x").is_err(), "bad count");
        assert!(Baseline::parse("D005 a.rs 0").is_err(), "zero count");
        assert!(
            Baseline::parse("D005 a.rs 1\nD005 a.rs 2").is_err(),
            "duplicate"
        );
        assert!(Baseline::parse("# comment\n\nD005 a.rs 1").is_ok());
    }
}
