//! A small, real tokenizer for Rust source — not regex-over-text.
//!
//! The rules only ever need identifier/punctuation shapes, string literal
//! contents and comments, but they need them *correctly*: an `unwrap()`
//! inside a doc comment, a `HashMap` inside a string literal or a
//! `panic!` inside a nested block comment must not produce findings.
//! This lexer handles line and (nested) block comments, cooked strings
//! with escapes, raw strings with arbitrary `#` guards, byte/char
//! literals and lifetimes, and tags every token with its 1-based line.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `static`, `HashMap`, …).
    Ident,
    /// Numeric literal (loosely lexed; no rule inspects the value).
    Num,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`); `text`
    /// holds the *inner* contents, without quotes, guards or prefixes.
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`); `text` is the inner
    /// contents.
    Char,
    /// Lifetime (`'a`); `text` includes the leading quote.
    Lifetime,
    /// Line or block comment, full text including the delimiters. The
    /// pragma parser reads these; rules skip them.
    Comment,
    /// Any single punctuation character.
    Punct,
}

/// One token with its 1-based source line (the line it *starts* on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// Tokenizes `src`. Never fails: unterminated literals simply extend to
/// the end of the input (the linter lints the workspace's own compiling
/// sources, so this is a graceful-degradation path, not a validator).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Vec<Tok>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.b.get(self.i + ahead).unwrap_or(&0)
    }

    /// Advances one byte, tracking newlines.
    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while self.i < self.b.len() {
            let c = self.peek(0);
            let line = self.line;
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(line),
                b'/' if self.peek(1) == b'*' => self.block_comment(line),
                b'"' => self.cooked_string(line, 0),
                b'\'' => self.char_or_lifetime(line),
                b'r' | b'b' if self.string_prefix().is_some() => {
                    let (skip, raw, _byte) = self.string_prefix().unwrap();
                    for _ in 0..skip {
                        self.bump();
                    }
                    if raw {
                        self.raw_string(line);
                    } else if self.peek(0) == b'\'' {
                        self.bump(); // opening quote of b'…'
                        self.char_literal(line);
                    } else {
                        self.cooked_string(line, 0);
                    }
                }
                c if is_ident_start(c) => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, (c as char).to_string(), line);
                }
            }
        }
        self.out
    }

    /// If the cursor sits on a string-literal prefix (`r"`, `r#`, `b"`,
    /// `b'`, `br"`, `br#`), returns `(prefix_len, is_raw, is_byte)`.
    fn string_prefix(&self) -> Option<(usize, bool, bool)> {
        match (self.peek(0), self.peek(1), self.peek(2)) {
            (b'r', b'"' | b'#', _) => Some((1, true, false)),
            (b'b', b'r', b'"' | b'#') => Some((2, true, true)),
            (b'b', b'"', _) => Some((1, false, true)),
            (b'b', b'\'', _) => Some((1, false, true)),
            _ => None,
        }
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.i;
        while self.i < self.b.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.push(TokKind::Comment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.i;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.push(TokKind::Comment, text, line);
    }

    /// Cooked string; the opening quote is at the cursor.
    fn cooked_string(&mut self, line: u32, _guards: usize) {
        self.bump(); // opening '"'
        let start = self.i;
        while self.i < self.b.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump(); // escaped char (covers \" and \\)
                }
                b'"' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.bump(); // closing '"'
        self.push(TokKind::Str, text, line);
    }

    /// Raw string; the cursor sits on the first `#` or the `"`.
    fn raw_string(&mut self, line: u32) {
        let mut guards = 0usize;
        while self.peek(0) == b'#' {
            guards += 1;
            self.bump();
        }
        if self.peek(0) != b'"' {
            // `r#ident` raw identifier, not a raw string.
            self.ident(line);
            return;
        }
        self.bump(); // opening '"'
        let start = self.i;
        let end;
        loop {
            if self.i >= self.b.len() {
                end = self.i;
                break;
            }
            if self.peek(0) == b'"' && (1..=guards).all(|k| self.peek(k) == b'#') {
                end = self.i;
                self.bump(); // '"'
                for _ in 0..guards {
                    self.bump();
                }
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..end]).into_owned();
        self.push(TokKind::Str, text, line);
    }

    /// After a `'`: disambiguates char literals from lifetimes.
    fn char_or_lifetime(&mut self, line: u32) {
        // A lifetime is 'ident NOT followed by a closing quote.
        if is_ident_start(self.peek(1)) && self.peek(2) != b'\'' {
            self.bump(); // '\''
            let start = self.i;
            while self.i < self.b.len() && is_ident_continue(self.peek(0)) {
                self.bump();
            }
            let name = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
            self.push(TokKind::Lifetime, format!("'{name}"), line);
        } else {
            self.bump(); // '\''
            self.char_literal(line);
        }
    }

    /// Char literal body; the opening quote is consumed.
    fn char_literal(&mut self, line: u32) {
        let start = self.i;
        while self.i < self.b.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'\'' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.bump(); // closing '\''
        self.push(TokKind::Char, text, line);
    }

    fn ident(&mut self, line: u32) {
        let start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.peek(0)) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let start = self.i;
        while self.i < self.b.len() {
            let c = self.peek(0);
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else if c == b'.' && self.peek(1).is_ascii_digit() {
                // `1.5` continues the number; `1.max(2)` and `0..n` do not.
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.push(TokKind::Num, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let toks = lex("foo.bar()\nbaz!");
        assert_eq!(toks[0].text, "foo");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].kind, TokKind::Punct);
        assert_eq!(toks[5].text, "baz");
        assert_eq!(toks[5].line, 2);
        assert_eq!(toks[6].text, "!");
    }

    #[test]
    fn strings_swallow_code_like_text() {
        let toks = kinds(r#"let s = "a.unwrap() HashMap \" still";"#);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("unwrap"));
        // No identifier token leaked out of the string.
        assert!(!toks
            .iter()
            .any(|t| t.0 == TokKind::Ident && t.1 == "HashMap"));
    }

    #[test]
    fn raw_strings_with_guards() {
        let toks = kinds(r###"let s = r#"panic!("inner " quote")"#;"###);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains(r#"panic!("inner " quote")"#));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r##"(b"unwrap()", br#"HashMap"#, b'x')"##);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(toks.iter().any(|t| t.0 == TokKind::Char && t.1 == "x"));
        assert!(!toks.iter().any(|t| t.0 == TokKind::Ident));
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let toks = kinds("a /* outer /* inner unwrap() */ still */ b");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "a".into()),
                (
                    TokKind::Comment,
                    "/* outer /* inner unwrap() */ still */".into()
                ),
                (TokKind::Ident, "b".into()),
            ]
        );
    }

    #[test]
    fn line_comments_keep_their_text_for_pragmas() {
        let toks = lex("x // ppa-lint: allow(D001, reason = \"why\")\ny");
        let c = toks.iter().find(|t| t.kind == TokKind::Comment).unwrap();
        assert!(c.text.contains("allow(D001"));
        assert_eq!(c.line, 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(toks.iter().any(|t| t.0 == TokKind::Lifetime && t.1 == "'a"));
        assert!(toks.iter().any(|t| t.0 == TokKind::Char && t.1 == "x"));
    }

    #[test]
    fn escaped_chars_and_multiline_strings_track_lines() {
        let toks = lex("let a = '\\n';\nlet s = \"one\ntwo\";\nlast");
        let last = toks.iter().find(|t| t.text == "last").unwrap();
        assert_eq!(last.line, 4, "newline inside the string counts");
    }

    #[test]
    fn numbers_do_not_eat_method_calls_or_ranges() {
        let toks = kinds("1.5 + 1.max(2) + (0..10)");
        assert!(toks.iter().any(|t| t.0 == TokKind::Num && t.1 == "1.5"));
        assert!(toks.iter().any(|t| t.0 == TokKind::Ident && t.1 == "max"));
        assert!(toks.iter().any(|t| t.0 == TokKind::Num && t.1 == "10"));
    }
}
