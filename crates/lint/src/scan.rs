//! Workspace walking and per-file analysis: collect the lintable `.rs`
//! files, tokenize, run the rules, apply pragma suppressions.

use crate::baseline::{Baseline, Breach};
use crate::findings::{Finding, LintError};
use crate::lexer::lex;
use crate::pragma::parse_pragmas;
use crate::rules::check_file;
use std::fs;
use std::path::{Path, PathBuf};

/// Directory roots (relative to the workspace root) that are linted.
const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Path prefixes excluded from the scan:
/// * `crates/shims/` — vendored stand-ins for external crates (the `rand`
///   shim *implements* seeding, it does not consume it);
/// * `crates/lint/tests/fixtures/` — deliberate rule violations used as
///   the linter's own test corpus;
/// * `target/` — build output.
const EXCLUDE_PREFIXES: [&str; 3] = ["crates/shims/", "crates/lint/tests/fixtures/", "target/"];

/// Whether a workspace-relative path is in scope for linting. Bench
/// targets under `benches/` time wall-clock by design and are excluded.
pub fn in_scope(rel: &str) -> bool {
    rel.ends_with(".rs")
        && !EXCLUDE_PREFIXES.iter().any(|p| rel.starts_with(p))
        && !rel.contains("/benches/")
}

/// Recursively collects lintable files under `root`, returning sorted
/// workspace-relative paths (forward slashes) so every run and every
/// report lists files in the same order.
pub fn collect_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            walk(root, &path, out)?;
        } else if let Some(rel) = relative(root, &path) {
            if in_scope(&rel) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> Option<String> {
    let rel: PathBuf = path.strip_prefix(root).ok()?.to_path_buf();
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    Some(parts.join("/"))
}

/// Everything the analysis of one workspace produces.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Findings still active after pragma suppression, in (file, line,
    /// rule) order.
    pub findings: Vec<Finding>,
    /// Findings silenced by a scoped allow pragma (reported in `--json`
    /// for auditability, never gated on).
    pub suppressed: Vec<(Finding, String)>,
    /// Hard errors (malformed pragmas, unreadable files): always fail.
    pub errors: Vec<LintError>,
    /// Number of files analyzed.
    pub files: usize,
}

/// Analyzes one file's source. `rel` is the workspace-relative path the
/// rules scope on.
pub fn analyze_source(rel: &str, src: &str, analysis: &mut Analysis) {
    let toks = lex(src);
    let (pragmas, mut pragma_errors) = parse_pragmas(rel, &toks);
    analysis.errors.append(&mut pragma_errors);
    let mut suppressed_here: Vec<(Finding, String)> = Vec::new();
    for finding in check_file(rel, &toks) {
        match pragmas.iter().find(|p| p.covers(&finding)) {
            Some(p) => suppressed_here.push((finding, p.reason.clone())),
            None => analysis.findings.push(finding),
        }
    }
    analysis.files += 1;
    // Suppressions that never fire would silently rot; surface them.
    for p in &pragmas {
        if !suppressed_here.iter().any(|(f, _)| p.covers(f)) {
            analysis.errors.push(LintError {
                file: rel.to_string(),
                line: p.line,
                message: format!(
                    "allow pragma suppresses nothing (rules {}) — delete it",
                    p.rules
                        .iter()
                        .map(|r| r.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
    }
    analysis.suppressed.append(&mut suppressed_here);
}

/// Analyzes the whole workspace under `root`.
pub fn analyze_workspace(root: &Path) -> Result<Analysis, String> {
    let mut analysis = Analysis::default();
    for rel in collect_files(root)? {
        match fs::read_to_string(root.join(&rel)) {
            Ok(src) => analyze_source(&rel, &src, &mut analysis),
            Err(e) => analysis.errors.push(LintError {
                file: rel,
                line: 0,
                message: format!("cannot read file: {e}"),
            }),
        }
    }
    analysis
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(analysis)
}

/// The complete gate: analysis + baseline comparison. Passing means no
/// hard errors and no baseline breaches of either kind.
pub struct GateResult {
    pub analysis: Analysis,
    pub breaches: Vec<Breach>,
}

impl GateResult {
    pub fn passed(&self) -> bool {
        self.breaches.is_empty() && self.analysis.errors.is_empty()
    }
}

/// Runs the gate against `root` with the given baseline.
pub fn run_gate(root: &Path, baseline: &Baseline) -> Result<GateResult, String> {
    let analysis = analyze_workspace(root)?;
    let breaches = baseline.diff(&analysis.findings);
    Ok(GateResult { analysis, breaches })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_excludes_shims_fixtures_and_benches() {
        assert!(in_scope("crates/engine/src/feed.rs"));
        assert!(in_scope("tests/control_plane.rs"));
        assert!(in_scope("examples/quickstart.rs"));
        assert!(!in_scope("crates/shims/rand/src/lib.rs"));
        assert!(!in_scope("crates/lint/tests/fixtures/d001_pos.rs"));
        assert!(!in_scope("crates/bench/benches/fig07_single_failure.rs"));
        assert!(!in_scope("crates/engine/src/notes.md"));
    }

    #[test]
    fn suppressed_findings_do_not_gate() {
        let mut a = Analysis::default();
        analyze_source(
            "crates/engine/src/x.rs",
            "// ppa-lint: allow(D001, reason = \"membership only\")\nuse std::collections::HashSet;",
            &mut a,
        );
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        assert_eq!(a.suppressed.len(), 1);
        assert_eq!(a.suppressed[0].1, "membership only");
        assert!(a.errors.is_empty(), "{:?}", a.errors);
    }

    #[test]
    fn useless_pragma_is_an_error() {
        let mut a = Analysis::default();
        analyze_source(
            "crates/engine/src/x.rs",
            "// ppa-lint: allow(D001, reason = \"nothing here\")\nlet x = 1;",
            &mut a,
        );
        assert_eq!(a.errors.len(), 1);
        assert!(a.errors[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn trailing_pragma_covers_its_own_line() {
        let mut a = Analysis::default();
        analyze_source(
            "crates/engine/src/x.rs",
            "use std::collections::HashSet; // ppa-lint: allow(D001, reason = \"dedup only\")",
            &mut a,
        );
        assert!(a.findings.is_empty());
        assert_eq!(a.suppressed.len(), 1);
    }
}
