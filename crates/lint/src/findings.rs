//! Finding and rule-identifier types shared by the rules, the baseline
//! ratchet and the reporters.

use std::fmt;

/// Stable rule identifiers. The numeric namespace is `D` for
/// *determinism & robustness*; ids are load-bearing: they appear in
/// `lint-baseline.txt`, in `// ppa-lint: allow(...)` pragmas and in CI
/// output, so they must never be renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Nondeterministic iteration: `HashMap`/`HashSet` in code whose
    /// iteration order can escape into plans, reports or stdout.
    D001,
    /// Ambient wall-clock time (`SystemTime`/`Instant`) outside the
    /// sanctioned stopwatch module.
    D002,
    /// Ambient randomness: RNG construction not threaded from the seeded
    /// in-tree RNG.
    D003,
    /// Ambient concurrency primitives inside the deterministic crates.
    D004,
    /// `unwrap`/`expect`/`panic!` in the deterministic crates (the typed
    /// `EngineError` policy).
    D005,
    /// `{:?}` Debug formatting flowing into report/stdout paths.
    D006,
}

impl RuleId {
    pub const ALL: [RuleId; 6] = [
        RuleId::D001,
        RuleId::D002,
        RuleId::D003,
        RuleId::D004,
        RuleId::D005,
        RuleId::D006,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D001 => "D001",
            RuleId::D002 => "D002",
            RuleId::D003 => "D003",
            RuleId::D004 => "D004",
            RuleId::D005 => "D005",
            RuleId::D006 => "D006",
        }
    }

    /// Parses `"D001"`-style ids (as written in pragmas and baselines).
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.as_str() == s)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: RuleId,
    /// Workspace-relative path with forward slashes (stable across OSes —
    /// it is compared against `lint-baseline.txt` entries).
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A diagnostic about the lint apparatus itself (malformed pragma, an
/// unreadable file). Never baselined: any of these fails the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintError {
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: error: {}", self.file, self.line, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for id in RuleId::ALL {
            assert_eq!(RuleId::parse(id.as_str()), Some(id));
        }
        assert_eq!(RuleId::parse("D999"), None);
        assert_eq!(RuleId::parse("d001"), None, "ids are case-sensitive");
    }

    #[test]
    fn findings_render_grep_style() {
        let f = Finding {
            rule: RuleId::D005,
            file: "crates/engine/src/feed.rs".into(),
            line: 42,
            message: "`.unwrap()` in deterministic crate".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/engine/src/feed.rs:42: D005 `.unwrap()` in deterministic crate"
        );
    }
}
