//! The rule registry: six token-level rules targeting this workspace's
//! actual invariants (byte-identical stdout at any `--jobs` count, typed
//! errors in the engine, seeded randomness everywhere).
//!
//! Rules are scoped by path. The *deterministic crates* — `core`, `sim`,
//! `faults`, `engine`, `workloads` — carry the reproduction's correctness
//! guarantee; the `bench` harness owns wall-clock timing (stderr only)
//! and real threads (its worker pool), so some rules exempt it.

use crate::findings::{Finding, RuleId};
use crate::lexer::{Tok, TokKind};

/// Per-file context handed to every rule.
pub struct FileCx<'a> {
    /// Workspace-relative path, forward slashes.
    pub path: &'a str,
    /// Full token stream (rules usually iterate [`FileCx::sig`]).
    pub toks: &'a [Tok],
}

impl FileCx<'_> {
    /// Significant tokens: everything except comments.
    pub fn sig(&self) -> Vec<&Tok> {
        self.toks
            .iter()
            .filter(|t| t.kind != TokKind::Comment)
            .collect()
    }
}

/// One registered rule.
pub struct Rule {
    pub id: RuleId,
    /// One-line description for `--help` and the README catalog.
    pub summary: &'static str,
    pub check: fn(&FileCx) -> Vec<Finding>,
}

/// The rule registry, in id order.
pub fn registry() -> Vec<Rule> {
    vec![
        Rule {
            id: RuleId::D001,
            summary: "HashMap/HashSet iteration order can escape into plans, reports or stdout \
                      — use BTreeMap/BTreeSet or a sorted collect",
            check: d001_nondeterministic_iteration,
        },
        Rule {
            id: RuleId::D002,
            summary: "ambient wall-clock time (SystemTime/Instant) outside \
                      crates/bench/src/stopwatch.rs",
            check: d002_ambient_time,
        },
        Rule {
            id: RuleId::D003,
            summary: "ambient randomness (thread_rng/from_entropy/OsRng) not threaded from the \
                      seeded in-tree RNG",
            check: d003_ambient_randomness,
        },
        Rule {
            id: RuleId::D004,
            summary: "ambient concurrency (thread::spawn/scope, static mut, sync primitives) \
                      outside the sanctioned shard executor",
            check: d004_ambient_concurrency,
        },
        Rule {
            id: RuleId::D005,
            summary: "unwrap/expect/panic! in the deterministic crates — use typed errors \
                      (EngineError/CoreError/PlacementError) or Result-returning tests",
            check: d005_panic_paths,
        },
        Rule {
            id: RuleId::D006,
            summary: "{:?} Debug formatting in print!/println!/write!/writeln! — Debug output \
                      is not a stable format for reports or stdout",
            check: d006_debug_format,
        },
    ]
}

/// The crates whose behaviour must be bit-reproducible.
const DETERMINISTIC_CRATES: [&str; 7] = [
    "crates/core/src/",
    "crates/sim/src/",
    "crates/faults/src/",
    "crates/engine/src/",
    "crates/obs/src/",
    "crates/workloads/src/",
    "crates/chaos/src/",
];

fn in_deterministic_crate(path: &str) -> bool {
    DETERMINISTIC_CRATES.iter().any(|p| path.starts_with(p))
}

fn finding(rule: RuleId, cx: &FileCx, line: u32, message: impl Into<String>) -> Finding {
    Finding {
        rule,
        file: cx.path.to_string(),
        line,
        message: message.into(),
    }
}

/// D001 — `HashMap`/`HashSet` in the deterministic crates, the harness
/// and the facade. `RandomState` hashing makes every iteration order a
/// fresh coin flip per process; the only safe uses are membership-only
/// sets (annotate with an allow pragma explaining why order never
/// escapes) — anything iterated should be a B-tree or sorted first.
fn d001_nondeterministic_iteration(cx: &FileCx) -> Vec<Finding> {
    let scoped = in_deterministic_crate(cx.path)
        || cx.path.starts_with("crates/bench/src/")
        || cx.path.starts_with("src/");
    if !scoped {
        return Vec::new();
    }
    cx.sig()
        .iter()
        .filter(|t| t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet"))
        .map(|t| {
            finding(
                RuleId::D001,
                cx,
                t.line,
                format!(
                    "`{}` iteration order is randomized per process; use BTreeMap/BTreeSet or \
                     sort before iterating (allow only with a reason if order never escapes)",
                    t.text
                ),
            )
        })
        .collect()
}

/// D002 — `SystemTime`/`Instant` anywhere but the stopwatch module.
/// Simulated time (`SimTime`) drives every observable output; wall-clock
/// reads are for stderr diagnostics only and live in one sanctioned file.
fn d002_ambient_time(cx: &FileCx) -> Vec<Finding> {
    if cx.path == "crates/bench/src/stopwatch.rs" {
        return Vec::new();
    }
    cx.sig()
        .iter()
        .filter(|t| t.kind == TokKind::Ident && (t.text == "SystemTime" || t.text == "Instant"))
        .map(|t| {
            finding(
                RuleId::D002,
                cx,
                t.line,
                format!(
                    "ambient wall-clock `{}`; use SimTime for simulated time or route timing \
                     through crates/bench/src/stopwatch.rs",
                    t.text
                ),
            )
        })
        .collect()
}

/// Entropy-sourced RNG constructors. The workspace's only legitimate RNG
/// is the seeded shim (`StdRng::seed_from_u64`), threaded from each
/// scenario's seed.
const AMBIENT_RNG: [&str; 6] = [
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "SystemRandom",
];

/// D003 — RNG construction not threaded from the seeded in-tree RNG.
fn d003_ambient_randomness(cx: &FileCx) -> Vec<Finding> {
    cx.sig()
        .iter()
        .filter(|t| t.kind == TokKind::Ident && AMBIENT_RNG.contains(&t.text.as_str()))
        .map(|t| {
            finding(
                RuleId::D003,
                cx,
                t.line,
                format!(
                    "ambient randomness `{}`; thread a seeded StdRng (seed_from_u64) from the \
                     scenario instead",
                    t.text
                ),
            )
        })
        .collect()
}

/// Concurrency identifiers that have no business inside the
/// single-threaded deterministic event loop.
const SYNC_PRIMITIVES: [&str; 13] = [
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "mpsc",
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU32",
    "AtomicU64",
    "AtomicI32",
    "AtomicI64",
    "AtomicPtr",
];

/// D004 — ambient concurrency inside the deterministic crates: spawned
/// or scoped threads, `static mut`, or shared-state sync primitives. The
/// harness (`bench`) parallelizes *across* runs; inside a run, the one
/// sanctioned surface is the sharded event loop's worker module, whose
/// deterministic merge keeps output byte-identical at any shard count.
fn d004_ambient_concurrency(cx: &FileCx) -> Vec<Finding> {
    // The sanctioned concurrency surface: the shard executor behind the
    // deterministic merge (see its module docs and ppa-bench's
    // shard_determinism suite). Everything else stays single-threaded.
    if cx.path == "crates/engine/src/runtime/shard.rs" {
        return Vec::new();
    }
    if !in_deterministic_crate(cx.path) {
        return Vec::new();
    }
    let sig = cx.sig();
    let mut out = Vec::new();
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let msg = if (t.text == "spawn" || t.text == "scope") && path_prefix_is(&sig, i, "thread") {
            Some(format!("`thread::{}` in a deterministic crate", t.text))
        } else if t.text == "static" && next_ident_is(&sig, i, "mut") {
            Some("`static mut` shared state in a deterministic crate".to_string())
        } else if SYNC_PRIMITIVES.contains(&t.text.as_str()) {
            Some(format!(
                "sync primitive `{}` in a deterministic crate",
                t.text
            ))
        } else {
            None
        };
        if let Some(m) = msg {
            out.push(finding(
                RuleId::D004,
                cx,
                t.line,
                format!("{m}; runs must stay single-threaded and deterministic"),
            ));
        }
    }
    out
}

/// D005 — `.unwrap()`, `.expect(...)` and `panic!(...)` in the
/// deterministic crates. Engine code returns typed errors
/// (`EngineError`, `PlacementError`, `CoreError`); tests prefer
/// `Result`-returning functions with `?`. Legacy sites live in the
/// baseline and only ratchet down.
fn d005_panic_paths(cx: &FileCx) -> Vec<Finding> {
    if !in_deterministic_crate(cx.path) {
        return Vec::new();
    }
    let sig = cx.sig();
    let mut out = Vec::new();
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            // `.unwrap()` exactly — unwrap_or / unwrap_err etc. lex as
            // different identifiers and are fine.
            "unwrap" => {
                prev_is_punct(&sig, i, ".")
                    && next_is_punct(&sig, i, "(")
                    && nth_is_punct(&sig, i + 2, ")")
            }
            "expect" => prev_is_punct(&sig, i, ".") && next_is_punct(&sig, i, "("),
            "panic" => next_is_punct(&sig, i, "!"),
            _ => false,
        };
        if hit {
            out.push(finding(
                RuleId::D005,
                cx,
                t.line,
                format!(
                    "`{}` is a panic path; return a typed error (or a Result-returning test \
                     with `?`)",
                    match t.text.as_str() {
                        "unwrap" => ".unwrap()",
                        "expect" => ".expect(...)",
                        _ => "panic!",
                    }
                ),
            ));
        }
    }
    out
}

/// Macros whose first format argument feeds stdout or a written report.
/// (`eprintln!`/`eprint!` go to stderr — diagnostics may Debug-format.)
const OUTPUT_MACROS: [&str; 4] = ["print", "println", "write", "writeln"];

/// D006 — `{:?}` Debug specs in output-bound format strings. `Debug`
/// output is unstable across rustc versions and type changes; reports
/// and stdout must only carry hand-formatted (`Display`) values.
fn d006_debug_format(cx: &FileCx) -> Vec<Finding> {
    let sig = cx.sig();
    let mut out = Vec::new();
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokKind::Ident || !OUTPUT_MACROS.contains(&t.text.as_str()) {
            continue;
        }
        if !next_is_punct(&sig, i, "!") || !nth_is_punct(&sig, i + 2, "(") {
            continue;
        }
        // write!/writeln! take the writer first: their format string is
        // the first string literal after the first top-level comma.
        let needs_writer_skip = t.text.starts_with("write");
        if let Some(fmt) = format_string(&sig, i + 3, needs_writer_skip) {
            if let Some(spec) = first_debug_spec(&fmt.text) {
                // Anchor at the macro name, not the format string: the
                // invocation may wrap, and a pragma sits above the call.
                out.push(finding(
                    RuleId::D006,
                    cx,
                    t.line,
                    format!(
                        "`{{{spec}}}` Debug-formats into a {}! output path; implement or use \
                         Display formatting instead",
                        t.text
                    ),
                ));
            }
        }
    }
    out
}

/// Finds the format-string literal of a macro invocation whose argument
/// list starts at `start` (the token right after the opening paren).
fn format_string<'a>(sig: &[&'a Tok], start: usize, skip_writer: bool) -> Option<&'a Tok> {
    let mut depth = 1i32;
    let mut seen_comma = !skip_writer;
    for t in sig.iter().skip(start) {
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "(" | "[" | "{") => depth += 1,
            (TokKind::Punct, ")" | "]" | "}") => {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            }
            (TokKind::Punct, ",") if depth == 1 => seen_comma = true,
            (TokKind::Str, _) if depth == 1 && seen_comma => return Some(t),
            _ => {}
        }
    }
    None
}

/// Returns the first `{...:?...}` Debug spec inside a format string, if
/// any (`{:?}`, `{:#?}`, `{x:?}`, `{:>8.1?}` all count; `{{` escapes are
/// honoured).
fn first_debug_spec(fmt: &str) -> Option<String> {
    let bytes = fmt.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            if bytes.get(i + 1) == Some(&b'{') {
                i += 2; // escaped brace
                continue;
            }
            let end = fmt[i..].find('}').map(|e| i + e)?;
            let inner = &fmt[i + 1..end];
            if let Some(colon) = inner.find(':') {
                if inner[colon..].contains('?') {
                    return Some(inner.to_string());
                }
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    None
}

fn prev_is_punct(sig: &[&Tok], i: usize, p: &str) -> bool {
    i > 0 && sig[i - 1].kind == TokKind::Punct && sig[i - 1].text == p
}

fn next_is_punct(sig: &[&Tok], i: usize, p: &str) -> bool {
    nth_is_punct(sig, i + 1, p)
}

fn nth_is_punct(sig: &[&Tok], n: usize, p: &str) -> bool {
    sig.get(n)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
}

fn next_ident_is(sig: &[&Tok], i: usize, name: &str) -> bool {
    sig.get(i + 1)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
}

/// Whether `sig[i]` is preceded by `name ::` (e.g. `thread :: spawn`).
fn path_prefix_is(sig: &[&Tok], i: usize, name: &str) -> bool {
    i >= 3
        && nth_is_punct(sig, i - 1, ":")
        && nth_is_punct(sig, i - 2, ":")
        && sig[i - 3].kind == TokKind::Ident
        && sig[i - 3].text == name
}

/// Runs every registered rule over one tokenized file.
pub fn check_file(path: &str, toks: &[Tok]) -> Vec<Finding> {
    let cx = FileCx { path, toks };
    let mut out: Vec<Finding> = registry().iter().flat_map(|r| (r.check)(&cx)).collect();
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run_at(path: &str, src: &str) -> Vec<Finding> {
        check_file(path, &lex(src))
    }

    const ENGINE: &str = "crates/engine/src/x.rs";

    #[test]
    fn d001_flags_hash_collections_in_scope_only() {
        let src = "use std::collections::HashMap;\nlet s: HashSet<u32> = HashSet::new();";
        let f = run_at(ENGINE, src);
        assert_eq!(f.iter().filter(|f| f.rule == RuleId::D001).count(), 3);
        assert!(
            run_at("crates/lint/src/x.rs", src).is_empty(),
            "out of D001 scope"
        );
    }

    #[test]
    fn d002_flags_instant_everywhere_but_stopwatch() {
        let src = "let t = Instant::now(); let s = SystemTime::now();";
        assert_eq!(run_at("crates/bench/src/runner.rs", src).len(), 2);
        assert!(run_at("crates/bench/src/stopwatch.rs", src).is_empty());
    }

    #[test]
    fn d003_flags_entropy_rngs() {
        let f = run_at(ENGINE, "let mut rng = rand::thread_rng();");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::D003);
        assert!(run_at(ENGINE, "StdRng::seed_from_u64(7)").is_empty());
    }

    #[test]
    fn d004_flags_threads_and_sync_in_deterministic_crates() {
        let src = "std::thread::spawn(|| {}); static mut X: u32 = 0; let m = Mutex::new(0); \
                   thread::scope(|s| {});";
        let f = run_at("crates/sim/src/x.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == RuleId::D004).count(), 4);
        // The bench harness's worker pool is allowed to use threads.
        assert!(run_at("crates/bench/src/pool.rs", src).is_empty());
        // The shard executor is the one sanctioned in-run surface.
        assert!(run_at("crates/engine/src/runtime/shard.rs", src).is_empty());
    }

    #[test]
    fn d005_flags_exact_panic_shapes_only() {
        let f = run_at(
            ENGINE,
            "a.unwrap(); b.expect(\"x\"); panic!(\"boom\"); c.unwrap_or(0); d.unwrap_err();",
        );
        assert_eq!(f.iter().filter(|f| f.rule == RuleId::D005).count(), 3);
    }

    #[test]
    fn d005_ignores_comments_and_strings() {
        let src = "// calls .unwrap() internally\nlet s = \"panic!(never)\"; /* a.expect(1) */";
        assert!(run_at(ENGINE, src).is_empty());
    }

    #[test]
    fn d006_flags_debug_specs_in_output_macros() {
        let f = run_at(ENGINE, "println!(\"{:?}\", x);");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains(":?"));
        // Named and pretty specs count too; the writer arg is skipped.
        assert_eq!(run_at(ENGINE, "writeln!(w, \"{v:#?}\")").len(), 1);
        // Display formatting and stderr diagnostics are fine.
        assert!(run_at(ENGINE, "println!(\"{}\", x);").is_empty());
        assert!(run_at(ENGINE, "eprintln!(\"{:?}\", x);").is_empty());
        // Escaped braces are not specs.
        assert!(run_at(ENGINE, "println!(\"{{:?}}\");").is_empty());
    }

    #[test]
    fn findings_sorted_by_line_then_rule() {
        let f = run_at(ENGINE, "let x = Instant::now();\nlet m: HashMap<u8, u8>;");
        assert_eq!(f[0].rule, RuleId::D002);
        assert_eq!(f[1].rule, RuleId::D001);
    }
}
