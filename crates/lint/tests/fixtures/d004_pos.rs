// Fixture: D004 positives — ambient concurrency in a deterministic crate.
pub fn run() {
    std::thread::spawn(|| {});
    let _m = Mutex::new(0);
    let _a = AtomicU64::new(0);
}

static mut COUNTER: u32 = 0;
