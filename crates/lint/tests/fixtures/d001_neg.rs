// Fixture: D001 negatives — ordered collections, plus HashMap mentions
// that are only text (this comment and the string below must not count).
use std::collections::{BTreeMap, BTreeSet};

pub fn build() -> BTreeMap<u32, u32> {
    let _s: BTreeSet<u32> = BTreeSet::new();
    let _msg = "HashMap iteration order is randomized";
    BTreeMap::new()
}
