// Fixture: pragma suppression scope — a trailing pragma silences its
// own line, a standalone pragma the line below; line 7 stays active.
use std::collections::HashSet; // ppa-lint: allow(D001, reason = "trailing: covers its own line")

// ppa-lint: allow(D001, reason = "standalone: covers the next line")
pub fn dedup(far: HashSet<u32>) -> HashSet<u32> {
    let mut out = HashSet::new();
    out.extend(far);
    out
}
