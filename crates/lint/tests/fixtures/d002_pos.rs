// Fixture: D002 positives — ambient wall clock outside the stopwatch.
use std::time::{Instant, SystemTime};

pub fn now() {
    let _a = Instant::now();
    let _b = SystemTime::now();
}
