// Fixture: tokenizer stress — everything here is a near-miss except the
// single real site on line 15.
pub fn tricky() {
    let s1 = "a.unwrap() and panic!(boom) and HashMap";
    let s2 = r#"Instant::now() inside a raw "string" with # guards"#;
    let bs = b"thread_rng() in a byte string";
    /* nested /* block comment: Mutex::new(0).expect("x") */ still a comment */
    let c = 'x';
    let lifetime_ok: &'static str = "ok";
    let range = 0..10;
    let max = 1.max(2);
    let multi = "a string
that spans lines: SystemTime::now()";
    let real: Option<u32> = None;
    let _ = real.unwrap();
}
