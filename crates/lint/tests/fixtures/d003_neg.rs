// Fixture: D003 negative — the seeded in-tree RNG threaded from a
// scenario seed ("thread_rng" in the string below must not count).
pub fn rng(seed: u64) -> StdRng {
    let _doc = "do not reach for thread_rng here";
    StdRng::seed_from_u64(seed)
}
