// Fixture: D003 positives — entropy-sourced RNG constructors.
pub fn rngs() {
    let _a = rand::thread_rng();
    let _b = StdRng::from_entropy();
    let _c = OsRng;
}
