// Fixture: D006 positives — Debug specs escaping into stdout/reports.
pub fn report(w: &mut Writer, plan: &Plan, rows: &[Row]) {
    println!("{:?}", plan);
    print!("{plan:#?}");
    writeln!(w, "rows: {rows:?}").ok();
    write!(w, "{:>8.1?}", rows[0]).ok();
}
