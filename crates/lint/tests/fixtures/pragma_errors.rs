// Fixture: malformed pragmas — every pragma below is a hard error.
use std::collections::HashSet; // ppa-lint: allow(D001)
pub fn a(_x: HashSet<u32>) {} // ppa-lint: allow(D001, reason = "  ")
pub fn b() {} // ppa-lint: allow(D999, reason = "unknown rule id")
// ppa-lint: allow(D002, reason = "suppresses nothing below")
pub fn c() {}
