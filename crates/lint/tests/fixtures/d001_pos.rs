// Fixture: D001 positives — hash collections in a deterministic crate.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn build() {
    let m: HashMap<u32, u32> = HashMap::new();
    let s: HashSet<u32> = HashSet::new();
    for (k, v) in &m {
        let _ = (k, v, &s);
    }
}
