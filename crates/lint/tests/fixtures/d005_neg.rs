// Fixture: D005 negatives — unwrap-family methods that cannot panic,
// and panic shapes that are only text: .unwrap() in this comment.
pub fn safe(v: Option<u32>, r: Result<u32, Error>) -> u32 {
    let a = v.unwrap_or(0);
    let b = r.unwrap_err().code();
    let c = v.map(double).unwrap_or_else(|| 1);
    let _s = "call .unwrap() and panic!(now)";
    a + b + c
}
