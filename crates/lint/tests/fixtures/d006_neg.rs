// Fixture: D006 negatives — Display specs, stderr diagnostics, escaped
// braces, and a Debug spec that is only text in a plain string.
pub fn report(w: &mut Writer, plan: &Plan) {
    println!("{}", plan);
    eprintln!("debug view: {plan:?}");
    println!("a literal {{:?}} brace pair");
    let _fmt = "{:?}";
    writeln!(w, "{:>8.3}", plan.value).ok();
}
