// Fixture: D002 negative — simulated time only. An Instant mention in
// this comment (or the string below) must not count.
pub fn at(t: SimTime) -> SimTime {
    let _doc = "Instant::now() is banned outside the stopwatch";
    t
}
