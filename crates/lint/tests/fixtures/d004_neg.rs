// Fixture: D004 negatives — `spawn` off a non-thread path, an immutable
// static, and a sync primitive that is only text in a string.
pub fn spawn_task(pool: &Pool) {
    pool.spawn(|| {});
    let _s = "Mutex is banned in deterministic crates";
}

static LIMIT: u32 = 4;
