// Fixture: D005 positives — the three panic shapes.
pub fn panics(v: Option<u32>, r: Result<u32, Error>) -> u32 {
    let a = v.unwrap();
    let b = r.expect("should have parsed");
    if a + b == 0 {
        panic!("impossible");
    }
    a + b
}
