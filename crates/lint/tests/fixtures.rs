//! The fixture corpus: deliberate rule violations and near-misses under
//! `tests/fixtures/` (excluded from the workspace scan), each asserted
//! exactly — rule, line, and count — plus the gate run against the
//! repository itself with the committed baseline.

use ppa_lint::{analyze_source, Analysis, Baseline, RuleId};
use std::path::{Path, PathBuf};

/// Virtual path inside a deterministic crate: every rule is in scope.
const ENGINE: &str = "crates/engine/src/fixture.rs";

fn fixture_src(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

/// Analyzes a fixture as if it lived at `virtual_path` in the workspace.
fn analyze_at(name: &str, virtual_path: &str) -> Analysis {
    let mut a = Analysis::default();
    analyze_source(virtual_path, &fixture_src(name), &mut a);
    a
}

fn rule_lines(a: &Analysis) -> Vec<(RuleId, u32)> {
    a.findings.iter().map(|f| (f.rule, f.line)).collect()
}

fn assert_clean(a: &Analysis) {
    assert!(
        a.findings.is_empty(),
        "unexpected findings: {:?}",
        a.findings
    );
    assert!(a.errors.is_empty(), "unexpected errors: {:?}", a.errors);
    assert!(
        a.suppressed.is_empty(),
        "unexpected suppressions: {:?}",
        a.suppressed
    );
}

#[test]
fn d001_positives_flag_every_hash_collection_token() {
    use RuleId::D001;
    let a = analyze_at("d001_pos.rs", ENGINE);
    assert_eq!(
        rule_lines(&a),
        vec![
            (D001, 2),
            (D001, 3),
            (D001, 6),
            (D001, 6),
            (D001, 7),
            (D001, 7)
        ]
    );
    assert!(a.errors.is_empty());
}

#[test]
fn d001_negatives_and_out_of_scope_paths_are_clean() {
    assert_clean(&analyze_at("d001_neg.rs", ENGINE));
    // The same positives outside D001's scope produce nothing.
    assert_clean(&analyze_at("d001_pos.rs", "crates/lint/src/fixture.rs"));
}

#[test]
fn d002_positives_flag_instant_and_systemtime() {
    use RuleId::D002;
    let a = analyze_at("d002_pos.rs", ENGINE);
    assert_eq!(
        rule_lines(&a),
        vec![(D002, 2), (D002, 2), (D002, 5), (D002, 6)]
    );
}

#[test]
fn d002_sanctions_the_stopwatch_module_only() {
    assert_clean(&analyze_at("d002_pos.rs", "crates/bench/src/stopwatch.rs"));
    assert_clean(&analyze_at("d002_neg.rs", ENGINE));
}

#[test]
fn d003_positives_flag_entropy_rngs_everywhere() {
    use RuleId::D003;
    let a = analyze_at("d003_pos.rs", ENGINE);
    assert_eq!(rule_lines(&a), vec![(D003, 3), (D003, 4), (D003, 5)]);
    // D003 is workspace-wide, not crate-scoped.
    let b = analyze_at("d003_pos.rs", "crates/bench/src/fixture.rs");
    assert_eq!(rule_lines(&b), vec![(D003, 3), (D003, 4), (D003, 5)]);
}

#[test]
fn d003_seeded_rng_is_clean() {
    assert_clean(&analyze_at("d003_neg.rs", ENGINE));
}

#[test]
fn d004_positives_flag_threads_statics_and_sync() {
    use RuleId::D004;
    let a = analyze_at("d004_pos.rs", ENGINE);
    assert_eq!(
        rule_lines(&a),
        vec![(D004, 3), (D004, 4), (D004, 5), (D004, 8)]
    );
}

#[test]
fn d004_spares_the_bench_harness_and_near_misses() {
    // The harness's worker pool legitimately uses threads.
    assert_clean(&analyze_at("d004_pos.rs", "crates/bench/src/pool.rs"));
    assert_clean(&analyze_at("d004_neg.rs", ENGINE));
}

#[test]
fn d005_positives_flag_the_three_panic_shapes() {
    use RuleId::D005;
    let a = analyze_at("d005_pos.rs", ENGINE);
    assert_eq!(rule_lines(&a), vec![(D005, 3), (D005, 4), (D005, 6)]);
}

#[test]
fn d005_unwrap_family_near_misses_are_clean() {
    assert_clean(&analyze_at("d005_neg.rs", ENGINE));
    // Outside the deterministic crates, unwrap is the harness's business.
    assert_clean(&analyze_at("d005_pos.rs", "crates/bench/src/fixture.rs"));
}

#[test]
fn d006_positives_flag_debug_specs_in_output_macros() {
    use RuleId::D006;
    let a = analyze_at("d006_pos.rs", ENGINE);
    assert_eq!(
        rule_lines(&a),
        vec![(D006, 3), (D006, 4), (D006, 5), (D006, 6)]
    );
}

#[test]
fn d006_display_and_stderr_are_clean() {
    assert_clean(&analyze_at("d006_neg.rs", ENGINE));
}

#[test]
fn pragmas_suppress_their_own_line_and_the_line_below() {
    use RuleId::D001;
    let a = analyze_at("allow_pragma.rs", ENGINE);
    // Line 3 (trailing) and both line-6 sites (standalone above) are
    // suppressed; the bare `HashSet::new()` on line 7 stays active.
    assert_eq!(rule_lines(&a), vec![(D001, 7)]);
    let mut suppressed: Vec<(u32, &str)> = a
        .suppressed
        .iter()
        .map(|(f, reason)| (f.line, reason.as_str()))
        .collect();
    suppressed.sort();
    assert_eq!(
        suppressed,
        vec![
            (3, "trailing: covers its own line"),
            (6, "standalone: covers the next line"),
            (6, "standalone: covers the next line"),
        ]
    );
    assert!(a.errors.is_empty(), "{:?}", a.errors);
}

#[test]
fn malformed_and_useless_pragmas_are_hard_errors() {
    use RuleId::D001;
    let a = analyze_at("pragma_errors.rs", ENGINE);
    // The malformed pragmas suppress nothing, so their sites stay active.
    assert_eq!(rule_lines(&a), vec![(D001, 2), (D001, 3)]);
    let error_lines: Vec<u32> = a.errors.iter().map(|e| e.line).collect();
    assert_eq!(error_lines, vec![2, 3, 4, 5], "{:?}", a.errors);
    assert!(a.errors[0].message.contains("reason"), "{:?}", a.errors[0]);
    assert!(a.errors[2].message.contains("D999"), "{:?}", a.errors[2]);
    assert!(
        a.errors[3].message.contains("suppresses nothing"),
        "{:?}",
        a.errors[3]
    );
}

#[test]
fn tricky_tokenization_yields_exactly_one_finding() {
    let a = analyze_at("tricky_tokenization.rs", ENGINE);
    assert_eq!(
        rule_lines(&a),
        vec![(RuleId::D005, 15)],
        "strings, raw strings, byte strings, nested comments, chars, \
         lifetimes, ranges and float-method calls must all be inert: {:?}",
        a.findings
    );
}

/// The workspace root, two levels up from this crate.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn the_workspace_passes_the_gate_with_the_committed_baseline() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("lint-baseline.txt"))
        .expect("lint-baseline.txt is committed at the workspace root");
    let baseline = Baseline::parse(&text).expect("committed baseline parses");
    let gate = ppa_lint::run_gate(&root, &baseline).expect("workspace scan succeeds");
    let report: Vec<String> = gate
        .breaches
        .iter()
        .map(|b| b.to_string())
        .chain(gate.analysis.errors.iter().map(|e| e.to_string()))
        .collect();
    assert!(
        gate.passed(),
        "ppa-lint must be clean modulo the baseline:\n{}",
        report.join("\n")
    );
}
