//! The sharded span executor: the one sanctioned concurrency surface of
//! the deterministic crates (see `ppa-lint` rule D004, which bans ambient
//! threading everywhere else and names this module as the exception).
//!
//! [`run_lanes`] executes independent per-node lane jobs on up to
//! `shards` scoped worker threads. Determinism does not depend on the
//! thread schedule: jobs are split into contiguous chunks, every chunk's
//! results are collected in job order, and the caller merges per-event
//! effects by global span index afterwards — so the only thing the OS
//! scheduler can influence is wall-clock time.

use super::lane::LaneEvent;
use super::{Rt, TaskRt};
use crate::placement::NodeId;
use ppa_sim::SimTime;
use std::thread;

/// One lane's worth of work: the hosting node, its CPU horizon, the task
/// states moved out of the simulation for the span, and the lane's events
/// tagged with their global span indices.
pub(super) struct LaneJob {
    pub node: NodeId,
    pub busy: SimTime,
    /// Task states owned by this lane for the span's duration (moved out
    /// of `Simulation::tasks`, restored after the span).
    pub tasks: Vec<(Rt, TaskRt)>,
    /// `(global span index, slot, event)` in ascending index order.
    pub events: Vec<(usize, Rt, LaneEvent)>,
}

/// Runs `jobs` on up to `shards` worker threads and returns their results
/// in job order. `shards <= 1` (or a single job) runs everything inline
/// on the calling thread — the byte-identical sequential path with zero
/// thread overhead.
pub(super) fn run_lanes<J, R, F>(shards: usize, jobs: Vec<J>, run: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    let workers = shards.max(1).min(jobs.len());
    if workers <= 1 {
        return jobs.into_iter().map(run).collect();
    }
    // Contiguous chunks keep concatenation order == job order.
    let per_chunk = jobs.len().div_ceil(workers);
    let mut chunks: Vec<Vec<J>> = Vec::with_capacity(workers);
    let mut rest = jobs;
    while rest.len() > per_chunk {
        let tail = rest.split_off(per_chunk);
        chunks.push(rest);
        rest = tail;
    }
    chunks.push(rest);
    let run = &run;
    let chunk_results: Vec<Vec<R>> = thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(run).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(results) => results,
                // A worker panic is a bug in lane code (handlers are
                // written panic-free); surface it on the main thread.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    chunk_results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::run_lanes;

    #[test]
    fn preserves_job_order_at_any_shard_count() {
        let jobs: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = jobs.iter().map(|j| j * 3).collect();
        for shards in [0, 1, 2, 4, 8, 64] {
            let got = run_lanes(shards, jobs.clone(), |j| j * 3);
            assert_eq!(got, expected, "shards={shards}");
        }
    }

    #[test]
    fn runs_inline_for_single_jobs_and_empty_batches() {
        let got: Vec<usize> = run_lanes(8, Vec::<usize>::new(), |j| j);
        assert!(got.is_empty());
        let got = run_lanes(8, vec![41], |j| j + 1);
        assert_eq!(got, vec![42]);
    }
}
