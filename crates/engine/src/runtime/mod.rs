//! The simulated cluster runtime: batch dataflow, failure injection,
//! detection and the three recovery paths (active replica takeover,
//! checkpoint restore + replay, Storm-style source replay).
//!
//! One [`Simulation`] owns the whole cluster state and is driven by a
//! deterministic event loop (`ppa_sim::Scheduler`). Runtime slots `0..n`
//! hold the primary incarnation of each logical task (a checkpoint restore
//! reuses the slot, moving it to the standby node); slots `n..` hold active
//! replicas.
//!
//! Protocol summary (§V-B):
//! * every task ships exactly one `Data` message per (batch, downstream
//!   substream) — the message doubles as the batch-over punctuation;
//! * a batch is processed once every input substream has delivered it or
//!   had it closed by a master proxy punctuation; receivers drop batches
//!   below their substream cursor, which makes replica takeover and replay
//!   idempotent;
//! * upstream output buffers are trimmed by downstream checkpoints (and by
//!   primary→replica sync for replicas); checkpoints include the output
//!   buffer, so a restored task can re-serve its downstream immediately.

// The runtime's internal bookkeeping uses nested generic types whose shape
// is the documentation (batch id -> (payload, tentative), per-slot); naming
// each would add indirection without clarity.
#![allow(clippy::type_complexity)]

use crate::chaos::{ChaosError, ChaosKind, ChaosSpec};
use crate::config::{EngineConfig, FtMode};
use crate::control::{
    ActionOutcome, ActionRecord, ControlAction, ControlPolicy, DomainHealth, DriveReport,
    HealthView, StaticPolicy,
};
use crate::error::EngineError;
use crate::feed::FaultFeed;
use crate::placement::{move_counts, plan_evacuation, MoveRole, NodeId, Placement};
use crate::query::Query;
use crate::report::{
    CpuStats, Lifecycle, OutageRecord, RunReport, SinkBatch, TaskOutages, TaskRecovery,
};
use crate::tuple::Tuple;
use crate::udf::{SourceGen, Udf};
use ppa_core::model::{TaskGraph, TaskIndex};
use ppa_core::{AdaptivePlanner, StructureAwarePlanner, TaskSet};
use ppa_faults::FailureTrace;
use ppa_obs::metrics::LATENCY_BUCKETS_US;
use ppa_obs::{EngineEvent, MetricsRegistry, TraceSink};
use ppa_sim::{Scheduler, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

mod lane;
mod shard;

/// Spans smaller than this run inline on the simulation thread even when
/// `shards > 1`: below it, thread hand-off costs more than the work.
/// Has no observable effect besides wall-clock time — effects replay in
/// global span order either way.
const MIN_PARALLEL_SPAN: usize = 8;

/// A failure injection: the listed nodes die at `at`.
#[derive(Debug, Clone)]
pub struct FailureSpec {
    pub at: SimTime,
    pub nodes: Vec<NodeId>,
}

/// Runtime slot index (primaries: `0..n_tasks`; replicas: `n_tasks..`).
type Rt = usize;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Running,
    Dead,
    /// Checkpoint being loaded (or Storm restart pending).
    Restoring,
    /// Replaying the backlog until the pre-failure progress is reached.
    CatchingUp,
}

/// One downstream substream this task sends to.
#[derive(Debug, Clone)]
struct OutTarget {
    /// Output-stream index at the sender (one per downstream operator).
    stream: usize,
    /// Receiving logical task.
    to: TaskIndex,
    /// Flat substream index at the receiver identifying this sender.
    to_substream: usize,
}

/// Output buffered for one downstream substream.
type Buffered = (u64, Arc<Vec<Tuple>>, bool);

struct Checkpoint {
    /// `next_batch` at snapshot time.
    batch: u64,
    udf: Option<Box<dyn Udf>>,
    out_buffer: Vec<VecDeque<Buffered>>,
    closed: Vec<u64>,
    state_tuples: usize,
}

struct TaskRt {
    logical: TaskIndex,
    is_replica: bool,
    node: NodeId,
    status: Status,
    udf: Option<Box<dyn Udf>>,
    source: Option<Box<dyn SourceGen>>,
    /// (input-stream index, upstream logical task) per flat substream.
    sub_from: Vec<(usize, TaskIndex)>,
    /// Staged (not yet processed) data per flat substream.
    staged: Vec<BTreeMap<u64, (Arc<Vec<Tuple>>, bool)>>,
    /// Per substream: batches `< closed[s]` may be processed without data
    /// (closed by proxy punctuations).
    closed: Vec<u64>,
    /// Next batch to process (sources: next batch to generate).
    next_batch: u64,
    /// Whether processed batches are sent downstream (replicas start muted).
    outputs_enabled: bool,
    out_targets: Vec<OutTarget>,
    /// Precomputed route table over `out_targets`: one `(start, len)`
    /// span per output stream (targets of a stream are contiguous), so
    /// `emit` never re-derives the partition layout per batch.
    stream_spans: Vec<(usize, usize)>,
    out_buffer: Vec<VecDeque<Buffered>>,
    checkpoint: Option<Checkpoint>,
    /// Progress at the instant the hosting node failed.
    pre_failure_progress: Option<u64>,
    /// Sink outputs a muted replica produced; promoted at takeover so the
    /// record has no hole between the primary's death and the takeover.
    pending_sink: Vec<SinkBatch>,
    cpu: CpuStats,
    throughput: crate::report::TaskThroughput,
    /// Approximate mode: drift since the last shipped backup (idle — all
    /// zeros — under every other mode). Lane-local like the rest of the
    /// task state.
    divergence: crate::approx::DivergenceModel,
}

/// The per-stream `(start, len)` spans of a task's out-target list
/// (targets of one stream are contiguous by construction).
fn stream_spans_of(out_targets: &[OutTarget]) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < out_targets.len() {
        let stream = out_targets[i].stream;
        let start = i;
        while i < out_targets.len() && out_targets[i].stream == stream {
            i += 1;
        }
        spans.push((start, i - start));
    }
    spans
}

impl TaskRt {
    /// An inert, allocation-free placeholder left in a task slot while
    /// the real state is lent to a worker lane (see
    /// [`Simulation::run_span`]). Never executed: a slot is only lent to
    /// the one lane that will run its events.
    fn tombstone() -> TaskRt {
        TaskRt {
            logical: TaskIndex(usize::MAX),
            is_replica: false,
            node: 0,
            status: Status::Dead,
            udf: None,
            source: None,
            sub_from: Vec::new(),
            staged: Vec::new(),
            closed: Vec::new(),
            next_batch: 0,
            outputs_enabled: false,
            out_targets: Vec::new(),
            stream_spans: Vec::new(),
            out_buffer: Vec::new(),
            checkpoint: None,
            pre_failure_progress: None,
            pending_sink: Vec::new(),
            cpu: CpuStats::default(),
            throughput: crate::report::TaskThroughput::default(),
            divergence: crate::approx::DivergenceModel::default(),
        }
    }

    fn n_substreams(&self) -> usize {
        self.sub_from.len()
    }

    /// Current operator state size in tuples (0 for sources).
    fn state_tuples(&self) -> usize {
        self.udf.as_ref().map_or(0, |u| u.state_tuples())
    }

    /// Whether batch `b` can be processed.
    fn ready(&self, b: u64) -> bool {
        (0..self.n_substreams()).all(|s| self.staged[s].contains_key(&b) || self.closed[s] > b)
    }

    fn buffered_tuples(&self) -> usize {
        self.out_buffer
            .iter()
            .flat_map(|q| q.iter())
            .map(|(_, t, _)| t.len())
            .sum()
    }
}

enum Msg {
    Data {
        tuples: Arc<Vec<Tuple>>,
        degraded: bool,
        replay_for: Option<TaskIndex>,
    },
    /// Master-generated proxy punctuation closing batches `..=batch`.
    Proxy,
}

enum Event {
    SourceBatch {
        rt: Rt,
        batch: u64,
    },
    Deliver {
        to: Rt,
        substream: usize,
        batch: u64,
        msg: Msg,
    },
    Checkpoint {
        rt: Rt,
    },
    ReplicaSync,
    HeartbeatScan,
    Failure {
        idx: usize,
    },
    RestoreDone {
        rt: Rt,
    },
    TakeoverDone {
        logical: usize,
    },
    ProxyTick,
    /// Approximate mode: a task's drift crossed the error bound during
    /// batch processing; ship its state backup (staged by the lane, run
    /// solo because upstream buffer trims are global).
    ApproxShip {
        rt: Rt,
    },
    /// A registered chaos injection fires (index into `Simulation::chaos`).
    Chaos {
        idx: usize,
    },
}

/// The simulated cluster.
pub struct Simulation {
    graph: TaskGraph,
    placement: Placement,
    config: EngineConfig,
    sched: Scheduler<Event>,
    tasks: Vec<TaskRt>,
    /// Replica slot of each logical task, if actively replicated.
    replica_slot: Vec<Option<Rt>>,
    /// Node CPU horizon.
    node_busy: Vec<SimTime>,
    node_alive: Vec<bool>,
    failures: Vec<FailureSpec>,
    /// Per-task outage histories in first-failure order — the source of
    /// truth behind both the report's `outages` and its derived first-
    /// outage `recoveries` view.
    outages: Vec<TaskOutages>,
    /// Index into `outages` per logical task.
    outage_of: Vec<Option<usize>>,
    /// Lifecycle state of every logical task
    /// (`Healthy → Failed → Replaying → Recovered → ReFailed → …`).
    lifecycle: Vec<Lifecycle>,
    /// Monotone count of recovery setbacks: re-failures (a new outage
    /// record beyond a task's first), deaths that re-arm an open record
    /// mid-recovery, and pending takeovers lost to a muted replica's
    /// death. The policy-facing "something went backwards" signal —
    /// strictly more sensitive than comparing outage counts, which miss
    /// the re-arm cases.
    recovery_setbacks: usize,
    sink: Vec<SinkBatch>,
    events: u64,
    /// Tuples scheduled for delivery so far (replica copies included) —
    /// the denominator of the bench harness's tuples/sec figures.
    tuples_moved: u64,
    /// Portions of `events` / `tuples_moved` already flushed into the
    /// metrics registry (a repeated `drive` must not double-count).
    events_metered: u64,
    tuples_metered: u64,
    /// Fresh-UDF factories for Storm restarts, one per logical task.
    fresh_udf: Vec<Option<Box<dyn Fn() -> Box<dyn Udf>>>>,
    /// Spare source generators, one per source task — consumed when the
    /// control plane activates a source replica mid-run (generators are
    /// deterministic functions of the batch id, so a spare instance
    /// produces the identical stream).
    spare_sources: Vec<Option<Box<dyn SourceGen>>>,
    /// Storm-mode source buffer length in batches.
    storm_buffer_batches: Option<u64>,
    checkpoint_interval: Option<SimDuration>,
    /// Per-fault-domain time-decayed failure scores (when the placement
    /// carries a node → domain mapping) — the raw material of the
    /// control plane's [`HealthView`].
    domain_health: Option<DomainHealth>,
    /// The currently adopted active-replication plan (mutated by
    /// control-plane replans).
    active_plan: TaskSet,
    /// Whether the periodic replica-sync event is on the schedule.
    replica_sync_running: bool,
    /// Attached trace sink, if any; lifecycle transitions are recorded
    /// into it as typed [`EngineEvent`]s at their simulated instants.
    trace_sink: Option<Box<dyn TraceSink>>,
    /// Deterministic run metrics fed by the same transitions, snapshotted
    /// into the [`DriveReport`].
    metrics: MetricsRegistry,
    /// Per logical task: whether the currently open outage record has
    /// already produced tentative (proxied) output — the first proxy of a
    /// record emits `TentativeResumed`.
    proxied: Vec<bool>,
    /// Registered chaos injections (buggify points), fired by
    /// `Event::Chaos`. Empty for every non-chaos run.
    chaos: Vec<ChaosSpec>,
    /// Declared run horizon: when set, `inject*` and `inject_chaos`
    /// reject events scheduled past it (they would never fire).
    horizon: Option<SimTime>,
    /// Pending heartbeat-scan drops (armed by `ChaosKind::HeartbeatDrop`).
    heartbeat_drops: u32,
    /// Pending one-shot heartbeat delay (armed by
    /// `ChaosKind::HeartbeatDelay`): the next scan, and the cadence
    /// behind it, shifts by this much.
    heartbeat_delay: Option<SimDuration>,
    /// Per logical task: pending restore stall (armed by
    /// `ChaosKind::RestoreStall`), consumed by the task's next restore
    /// completion.
    restore_stall: Vec<Option<SimDuration>>,
    /// `FtMode::Approximate`'s error bound; `None` under every exact
    /// mode. Doubles as the gate on approximate-only metric flushes so
    /// exact runs stay byte-identical.
    approx_bound: Option<u64>,
    /// Portion of the tasks' skipped-backup counts already flushed into
    /// the metrics registry (same repeated-`drive` contract as
    /// `events_metered`).
    approx_skipped_metered: u64,
}

impl Simulation {
    /// Builds the cluster for `query` under `placement` and `config`.
    pub fn new(query: &Query, placement: Placement, config: EngineConfig) -> Self {
        let graph = TaskGraph::new(query.topology().clone());
        let n = graph.n_tasks();
        assert_eq!(
            placement.primary.len(),
            n,
            "placement must cover every task"
        );

        // Flat substream layout per receiving task.
        let sub_from: Vec<Vec<(usize, TaskIndex)>> = (0..n)
            .map(|t| {
                let mut subs = Vec::new();
                for (stream, istream) in graph.inputs(TaskIndex(t)).iter().enumerate() {
                    for &u in &istream.substreams {
                        subs.push((stream, u));
                    }
                }
                subs
            })
            .collect();

        // Out targets with precomputed receiver substream indices.
        let out_targets: Vec<Vec<OutTarget>> = (0..n)
            .map(|t| {
                let mut outs = Vec::new();
                for (stream, ostream) in graph.outputs(TaskIndex(t)).iter().enumerate() {
                    for &d in &ostream.targets {
                        let to_substream = sub_from[d.0]
                            .iter()
                            .position(|&(s, u)| {
                                u == TaskIndex(t) && graph.inputs(d)[s].edge == ostream.edge
                            })
                            .expect("substream layout mismatch");
                        outs.push(OutTarget {
                            stream,
                            to: d,
                            to_substream,
                        });
                    }
                }
                outs
            })
            .collect();

        let (plan, checkpoint_interval) = match &config.mode {
            FtMode::Ppa {
                plan,
                checkpoint_interval,
            } => (Some(plan.clone()), *checkpoint_interval),
            // Approximate ships backups on divergence, never on a timer.
            FtMode::Approximate { plan, .. } => (Some(plan.clone()), None),
            _ => (None, None),
        };
        let approx_bound = match &config.mode {
            FtMode::Approximate { error_bound, .. } => Some(*error_bound),
            _ => None,
        };
        let storm_buffer_batches = match &config.mode {
            FtMode::SourceReplay { buffer } => Some(config.batches_in(*buffer).max(1)),
            _ => None,
        };

        let mk_task = |t: usize, is_replica: bool, node: NodeId| -> TaskRt {
            let logical = TaskIndex(t);
            let op = graph.operator_of(logical);
            let local = graph.local_index(logical);
            let (udf, source): (Option<Box<dyn Udf>>, Option<Box<dyn SourceGen>>) =
                if query.is_source(op) {
                    (None, Some(query.make_source(op, local)))
                } else {
                    (Some(query.make_udf(op, local)), None)
                };
            TaskRt {
                logical,
                is_replica,
                node,
                status: Status::Running,
                udf,
                source,
                sub_from: sub_from[t].clone(),
                staged: vec![BTreeMap::new(); sub_from[t].len()],
                closed: vec![0; sub_from[t].len()],
                next_batch: 0,
                outputs_enabled: !is_replica,
                out_targets: out_targets[t].clone(),
                stream_spans: stream_spans_of(&out_targets[t]),
                out_buffer: vec![VecDeque::new(); out_targets[t].len()],
                checkpoint: None,
                pre_failure_progress: None,
                pending_sink: Vec::new(),
                cpu: CpuStats::default(),
                throughput: crate::report::TaskThroughput::default(),
                divergence: crate::approx::DivergenceModel::default(),
            }
        };

        let mut tasks: Vec<TaskRt> = (0..n)
            .map(|t| mk_task(t, false, placement.primary[t]))
            .collect();
        let mut replica_slot = vec![None; n];
        if let Some(plan) = &plan {
            for t in plan.iter() {
                let slot = tasks.len();
                tasks.push(mk_task(t.0, true, placement.standby[t.0]));
                replica_slot[t.0] = Some(slot);
            }
        }

        let fresh_udf: Vec<Option<Box<dyn Fn() -> Box<dyn Udf>>>> = (0..n)
            .map(|t| {
                let logical = TaskIndex(t);
                let op = graph.operator_of(logical);
                let local = graph.local_index(logical);
                if query.is_source(op) {
                    None
                } else {
                    // Rebuild a factory closure: Storm restarts need a fresh
                    // (empty-state) UDF. We capture one prototype snapshot;
                    // a fresh instance is a snapshot of the *initial* state.
                    let proto = query.make_udf(op, local);
                    Some(Box::new(move || proto.snapshot()) as Box<dyn Fn() -> Box<dyn Udf>>)
                }
            })
            .collect();

        // One spare generator per source task, for control-plane replica
        // activation (the query's factories are not storable, so spares
        // are instantiated up front; generation is pure per batch id).
        let spare_sources: Vec<Option<Box<dyn SourceGen>>> = (0..n)
            .map(|t| {
                let logical = TaskIndex(t);
                let op = graph.operator_of(logical);
                query
                    .is_source(op)
                    .then(|| query.make_source(op, graph.local_index(logical)))
            })
            .collect();

        let domain_health = placement
            .fault_domains()
            .map(|tree| DomainHealth::new(tree.n_domains(), config.health_half_life));
        let active_plan = plan.clone().unwrap_or_else(|| TaskSet::empty(n));

        let mut sim = Simulation {
            // The steady state keeps roughly one pending event per task
            // slot (plus periodic timers): pre-size the scheduler so the
            // heap and slot arena never grow mid-run.
            sched: Scheduler::with_capacity(2 * tasks.len() + 16),
            node_busy: vec![SimTime::ZERO; placement.n_nodes()],
            node_alive: vec![true; placement.n_nodes()],
            failures: Vec::new(),
            outages: Vec::new(),
            outage_of: vec![None; n],
            lifecycle: vec![Lifecycle::Healthy; n],
            recovery_setbacks: 0,
            sink: Vec::new(),
            events: 0,
            tuples_moved: 0,
            events_metered: 0,
            tuples_metered: 0,
            tasks,
            replica_slot,
            graph,
            placement,
            fresh_udf,
            spare_sources,
            storm_buffer_batches,
            checkpoint_interval,
            domain_health,
            active_plan,
            replica_sync_running: false,
            trace_sink: None,
            metrics: MetricsRegistry::new(),
            proxied: vec![false; n],
            chaos: Vec::new(),
            horizon: None,
            heartbeat_drops: 0,
            heartbeat_delay: None,
            restore_stall: vec![None; n],
            approx_bound,
            approx_skipped_metered: 0,
            config,
        };
        sim.bootstrap();
        sim
    }

    fn bootstrap(&mut self) {
        let b = self.config.batch_interval;
        // First batch of every source task materializes at t = B.
        for t in 0..self.graph.n_tasks() {
            if self.tasks[t].source.is_some() {
                self.sched
                    .at(SimTime::ZERO + b, Event::SourceBatch { rt: t, batch: 0 });
                if let Some(slot) = self.replica_slot[t] {
                    self.sched
                        .at(SimTime::ZERO + b, Event::SourceBatch { rt: slot, batch: 0 });
                }
            }
        }
        // Heartbeat scans.
        self.sched.at(
            SimTime::ZERO + self.config.heartbeat_interval,
            Event::HeartbeatScan,
        );
        // Proxy ticks (only meaningful in PPA with tentative outputs).
        if self.config.tentative_outputs {
            self.sched.at(SimTime::ZERO + b, Event::ProxyTick);
        }
        // Checkpoints, staggered per task so correlated recovery sees
        // asynchronous checkpoint ages (§V-B's synchronization effect).
        if let Some(interval) = self.checkpoint_interval {
            for t in 0..self.graph.n_tasks() {
                let offset = SimDuration::from_micros(
                    (t as u64).wrapping_mul(2_654_435_761) % interval.as_micros().max(1),
                );
                self.sched.at(
                    SimTime::ZERO + interval + offset,
                    Event::Checkpoint { rt: t },
                );
            }
        }
        // Replica syncs.
        if self.replica_slot.iter().any(Option::is_some) {
            self.sched.at(
                SimTime::ZERO + self.config.replica_sync_interval,
                Event::ReplicaSync,
            );
            self.replica_sync_running = true;
        }
    }

    /// Registers a failure injection (before or during a run). Malformed
    /// specs — a node the cluster does not have, an instant before the
    /// simulation's current time, a node that is already dead at injection
    /// time (e.g. the node an activated replica died on) — surface as
    /// typed [`EngineError`]s instead of panicking deep inside the event
    /// loop or silently short-circuiting at fire time. (Events injected
    /// while their nodes are still alive may still find them dead when
    /// they fire — an earlier event killed them first — and those are
    /// skipped, so replayed traces with overlapping kill sets stay valid.)
    pub fn inject(&mut self, spec: FailureSpec) -> Result<(), EngineError> {
        let now = self.sched.now();
        if spec.at < now {
            return Err(EngineError::EventInPast { at: spec.at, now });
        }
        if let Some(horizon) = self.horizon {
            if spec.at > horizon {
                return Err(EngineError::EventPastHorizon {
                    at: spec.at,
                    horizon,
                });
            }
        }
        let n_nodes = self.placement.n_nodes();
        if let Some(&node) = spec.nodes.iter().find(|&&n| n >= n_nodes) {
            return Err(EngineError::NodeOutOfRange { node, n_nodes });
        }
        if let Some(&node) = spec.nodes.iter().find(|&&n| !self.node_alive[n]) {
            return Err(EngineError::NodeAlreadyDead { node });
        }
        let at = spec.at;
        self.failures.push(spec);
        let idx = self.failures.len() - 1;
        self.sched.at(at, Event::Failure { idx });
        Ok(())
    }

    /// Registers the failure of a whole fault domain at `at`: the kill set
    /// is expanded through the placement's own node → domain mapping, so
    /// callers name the blast radius (a rack, a zone) instead of
    /// pre-expanding node lists. `Err` if the placement carries no
    /// fault-domain hierarchy.
    pub fn inject_domain(
        &mut self,
        at: SimTime,
        domain: ppa_faults::DomainId,
    ) -> Result<(), EngineError> {
        let nodes = self.placement.nodes_in_domain(domain)?;
        self.inject(FailureSpec { at, nodes })
    }

    /// Registers every event of a failure trace — the replay half of the
    /// `ppa-faults` subsystem. A trace is just an ordered, normalized
    /// sequence of [`FailureSpec`]-shaped events, so replaying the same
    /// trace twice yields identical runs.
    pub fn inject_trace(&mut self, trace: &FailureTrace) -> Result<(), EngineError> {
        for event in trace.events() {
            self.inject(FailureSpec {
                at: event.at,
                nodes: event.nodes.clone(),
            })?;
        }
        Ok(())
    }

    /// Declares the run's horizon: from here on, `inject*` and
    /// [`Simulation::inject_chaos`] reject events scheduled past it with
    /// [`EngineError::EventPastHorizon`] instead of silently accepting
    /// events that would never fire. Opt-in — harnesses that extend a
    /// run with repeated `drive` calls leave it unset.
    pub fn set_horizon(&mut self, horizon: SimTime) {
        self.horizon = Some(horizon);
    }

    /// Registers a chaos injection (buggify point). The same validation
    /// discipline as [`Simulation::inject`]: malformed specs — an instant
    /// before the current virtual time or past the declared horizon, a
    /// task the query does not have — surface as typed [`ChaosError`]s at
    /// injection time. A run whose chaos schedule is empty is
    /// byte-identical to a run made before this subsystem existed.
    pub fn inject_chaos(&mut self, spec: ChaosSpec) -> Result<(), ChaosError> {
        let now = self.sched.now();
        if spec.at < now {
            return Err(EngineError::EventInPast { at: spec.at, now }.into());
        }
        if let Some(horizon) = self.horizon {
            if spec.at > horizon {
                return Err(EngineError::EventPastHorizon {
                    at: spec.at,
                    horizon,
                }
                .into());
            }
        }
        let n_tasks = self.graph.n_tasks();
        if let Some(task) = spec.kind.task() {
            if task >= n_tasks {
                return Err(ChaosError::TaskOutOfRange { task, n_tasks });
            }
        }
        let at = spec.at;
        self.chaos.push(spec);
        let idx = self.chaos.len() - 1;
        self.sched.at(at, Event::Chaos { idx });
        Ok(())
    }

    /// Fires one registered chaos injection: arms the targeted buggify
    /// state (consumed by the heartbeat / restore paths) or perturbs the
    /// run directly.
    fn on_chaos(&mut self, idx: usize) {
        self.metrics.inc("engine.chaos.fired");
        match self.chaos[idx].kind.clone() {
            ChaosKind::HeartbeatDrop { scans } => {
                self.heartbeat_drops = self.heartbeat_drops.saturating_add(scans);
            }
            ChaosKind::HeartbeatDelay { by } => {
                let total = self.heartbeat_delay.unwrap_or(SimDuration::ZERO) + by;
                self.heartbeat_delay = Some(total);
            }
            ChaosKind::HeartbeatDuplicate => {
                // An extra scan outside the cadence: detection must be
                // idempotent under it.
                self.heartbeat_scan();
            }
            ChaosKind::RestoreStall { task, by } => {
                let stall = self.restore_stall[task].unwrap_or(SimDuration::ZERO) + by;
                self.restore_stall[task] = Some(stall);
            }
            ChaosKind::RestoreVoid { task } => {
                // Losing the restore target mid-load is exactly a death
                // of the restoring incarnation: the open outage is
                // re-armed (detection void, setback counted) and the
                // stale scheduled completion will find the task no
                // longer `Restoring` and void itself.
                if self.tasks[task].status == Status::Restoring {
                    let now = self.sched.now();
                    self.tasks[task].status = Status::Dead;
                    self.open_outage(task, now);
                }
            }
        }
    }

    /// Runs the simulation until virtual time `until` and returns the report.
    pub fn run_until(&mut self, until: SimTime) -> RunReport {
        while self.step_until(until).is_some() {}
        self.report_at(until)
    }

    /// The report of everything measured so far, ended at `until`.
    fn report_at(&self, until: SimTime) -> RunReport {
        RunReport {
            // The backward-compatible one-failure-per-task view: each
            // task's FIRST outage, in first-failure order (identical to
            // the historical `recoveries` for single-failure runs).
            recoveries: self
                .outages
                .iter()
                .map(|o| {
                    let first = &o.records[0];
                    TaskRecovery {
                        task: o.task,
                        via_replica: first.via_replica,
                        failed_at: first.failed_at,
                        detected_at: first.detected_at,
                        recovered_at: first.recovered_at,
                    }
                })
                .collect(),
            outages: self.outages.clone(),
            sink: self.sink.clone(),
            cpu: self.tasks[..self.graph.n_tasks()]
                .iter()
                .map(|t| t.cpu)
                .collect(),
            throughput: self.tasks[..self.graph.n_tasks()]
                .iter()
                .map(|t| t.throughput)
                .collect(),
            events: self.events,
            tuples_moved: self.tuples_moved,
            ended_at: until,
        }
    }

    /// Convenience: build, inject, run. A thin wrapper over
    /// [`Simulation::drive`] with a [`StaticPolicy`] (parity-tested
    /// byte-identical to the historical direct implementation).
    pub fn run(
        query: &Query,
        placement: Placement,
        config: EngineConfig,
        failures: Vec<FailureSpec>,
        duration: SimDuration,
    ) -> RunReport {
        let mut sim = Simulation::new(query, placement, config);
        sim.drive(
            &FaultFeed::from_specs(failures),
            &mut StaticPolicy,
            SimTime::ZERO + duration,
        )
        .expect("failure specs must name nodes of this cluster")
        .report
    }

    /// Convenience: build, replay a failure trace, run. A thin wrapper
    /// over [`Simulation::drive`] with a [`StaticPolicy`].
    pub fn run_trace(
        query: &Query,
        placement: Placement,
        config: EngineConfig,
        trace: &FailureTrace,
        duration: SimDuration,
    ) -> RunReport {
        let mut sim = Simulation::new(query, placement, config);
        sim.drive(
            &FaultFeed::from_trace(trace.clone()),
            &mut StaticPolicy,
            SimTime::ZERO + duration,
        )
        .expect("trace events must name nodes of this cluster")
        .report
    }

    /// The control-plane run loop: resolves `feed` against the placement
    /// into one ordered failure trace, injects it, and runs the event
    /// loop until `until` with `policy` in the loop — its failure hook
    /// fires right after every failure event, its epoch hook at every
    /// `epoch_interval` boundary, and the returned [`ControlAction`]s are
    /// applied immediately (migration/activation state shipping is
    /// charged at the hook's virtual time).
    ///
    /// With a [`StaticPolicy`] (no hooks, no actions) the produced
    /// [`RunReport`] is byte-identical to the legacy `run`/`run_trace`
    /// paths — the policy sits outside the event stream until it acts.
    pub fn drive(
        &mut self,
        feed: &FaultFeed,
        policy: &mut dyn ControlPolicy,
        until: SimTime,
    ) -> Result<DriveReport, EngineError> {
        let trace = feed.resolve(&self.placement)?;
        self.inject_trace(&trace)?;
        let mut actions: Vec<ActionRecord> = Vec::new();
        let mut control_cpu = SimDuration::ZERO;
        // A zero interval could never advance past `until`; treat it as
        // "no epoch hook" rather than hanging the loop.
        let epoch = policy.epoch_interval().filter(|e| !e.is_zero());
        let mut next_epoch = epoch.map(|e| SimTime::ZERO + e);
        loop {
            let deadline = match next_epoch {
                Some(e) if e < until => e,
                _ => until,
            };
            while let Some(failure) = self.step_until(deadline) {
                if failure {
                    let now = self.sched.now();
                    let acts = policy.on_failure(&self.health_view(now));
                    self.apply_actions(now, acts, &mut actions, &mut control_cpu);
                }
            }
            match next_epoch {
                Some(e) if e < until => {
                    let scores: Vec<(usize, f64)> = self
                        .domain_health
                        .as_ref()
                        .map(|h| h.snapshot(e).into_iter().enumerate().collect())
                        .unwrap_or_default();
                    self.note(e, EngineEvent::EpochHealthSnapshot { scores });
                    let acts = policy.on_epoch(&self.health_view(e));
                    self.apply_actions(e, acts, &mut actions, &mut control_cpu);
                    next_epoch = Some(e + epoch.expect("next_epoch implies an interval"));
                }
                _ => break,
            }
        }
        // Flush throughput counters into the metrics registry as deltas,
        // so a repeated drive over the same simulation never double-adds.
        self.metrics
            .add("engine.events.processed", self.events - self.events_metered);
        self.events_metered = self.events;
        self.metrics.add(
            "engine.tuples.moved",
            self.tuples_moved - self.tuples_metered,
        );
        self.tuples_metered = self.tuples_moved;
        // Approximate-only: flush the tasks' skipped-backup tallies. Gated
        // on the mode so exact runs never grow a zero-valued extra metric
        // (their DriveReports must stay byte-identical to pre-approximate
        // builds).
        if self.approx_bound.is_some() {
            let skipped: u64 = self.tasks.iter().map(|t| t.divergence.skipped()).sum();
            self.metrics.add(
                "engine.approx.backups_skipped",
                skipped - self.approx_skipped_metered,
            );
            self.approx_skipped_metered = skipped;
        }
        Ok(DriveReport {
            report: self.report_at(until),
            actions,
            control_cpu,
            metrics: self.metrics.snapshot(),
            trace,
        })
    }

    /// The cluster's health as a policy sees it at `at`: the placement's
    /// fault-domain tree, every domain's time-decayed failure score, and
    /// every task's lifecycle state + outage count — so policies observe
    /// re-failures as first-class events, not just node deaths.
    pub fn health_view(&self, at: SimTime) -> HealthView<'_> {
        HealthView::new(
            at,
            self.placement.fault_domains(),
            self.domain_health
                .as_ref()
                .map(|h| h.snapshot(at))
                .unwrap_or_default(),
            self.lifecycle.clone(),
            self.outage_of
                .iter()
                .map(|o| o.map_or(0, |i| self.outages[i].records.len()))
                .collect(),
            self.recovery_setbacks,
        )
    }

    /// The currently adopted active-replication plan.
    pub fn active_plan(&self) -> &TaskSet {
        &self.active_plan
    }

    /// The lifecycle state of every logical task, indexed by task.
    pub fn lifecycles(&self) -> &[Lifecycle] {
        &self.lifecycle
    }

    /// Attaches a trace sink: every subsequent lifecycle transition is
    /// recorded into it as a typed [`EngineEvent`] at its simulated
    /// instant. Replaces any previously attached sink.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace_sink = Some(sink);
    }

    /// Detaches and returns the attached trace sink, if any — the way a
    /// harness gets its buffered events back after a drive.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace_sink.take()
    }

    /// A name-ordered snapshot of the run's metrics so far.
    pub fn metrics_snapshot(&self) -> ppa_obs::MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Records one lifecycle transition: always into the metrics
    /// registry, and into the trace sink when one is attached. `at` is
    /// the transition's *semantic* instant — a recovery completes at a
    /// CPU horizon that can run ahead of the event-loop clock.
    fn note(&mut self, at: SimTime, event: EngineEvent) {
        match &event {
            EngineEvent::FailureInjected { nodes } => {
                self.metrics.inc("engine.failures.waves");
                self.metrics
                    .add("engine.failures.nodes_killed", nodes.len() as u64);
            }
            EngineEvent::OutageOpened { refail, .. } => {
                self.metrics.inc("engine.outages.opened");
                if *refail {
                    self.metrics.inc("engine.outages.refails");
                    self.metrics.inc("engine.recovery.setbacks");
                }
            }
            EngineEvent::RecoverySetback { .. } => {
                self.metrics.inc("engine.recovery.setbacks");
            }
            EngineEvent::OutageDetected { .. } => self.metrics.inc("engine.outages.detected"),
            EngineEvent::RestoreStarted { .. } => self.metrics.inc("engine.restores.started"),
            EngineEvent::RestoreDone { .. } => self.metrics.inc("engine.recoveries.via_restore"),
            EngineEvent::RestoreVoided { .. } => self.metrics.inc("engine.restores.voided"),
            EngineEvent::ReplicaActivated { .. } => {
                self.metrics.inc("engine.recoveries.via_replica");
            }
            EngineEvent::TentativeResumed { .. } => self.metrics.inc("engine.tentative.resumed"),
            EngineEvent::ApproxBackupShipped { .. } => {
                self.metrics.inc("engine.approx.backups_shipped");
            }
            EngineEvent::ApproxRecovery { divergence, .. } => {
                self.metrics
                    .add("engine.approx.divergence_at_recovery", *divergence);
            }
            EngineEvent::ReplanAdopted { plan_size, .. } => {
                self.metrics.inc("engine.control.replans");
                self.metrics
                    .set_gauge("engine.plan.active_replicas", *plan_size as f64);
            }
            EngineEvent::MigrationScheduled { .. } => self.metrics.inc("engine.control.migrations"),
            EngineEvent::ControlNoEffect { .. } => self.metrics.inc("engine.control.no_effect"),
            EngineEvent::EpochHealthSnapshot { scores } => {
                self.metrics.inc("engine.epochs");
                for &(_, score) in scores {
                    self.metrics
                        .max_gauge("engine.health.max_domain_score", score);
                }
            }
        }
        if let Some(sink) = self.trace_sink.as_mut() {
            sink.record(at, &event);
        }
    }

    // ------------------------------------------------------------------
    // Outage bookkeeping: the replica lifecycle state machine
    // ------------------------------------------------------------------

    /// The current (most recent) outage record of task `t`.
    fn current_outage(&self, t: usize) -> Option<&OutageRecord> {
        self.outage_of[t].and_then(|i| self.outages[i].records.last())
    }

    fn current_outage_mut(&mut self, t: usize) -> Option<&mut OutageRecord> {
        let i = self.outage_of[t]?;
        self.outages[i].records.last_mut()
    }

    /// Opens (or re-arms) an outage for task `t`: a healthy or recovered
    /// task gets a fresh record (`Failed` / `ReFailed`); a task dying
    /// again mid-recovery keeps its open record but loses its detection —
    /// the master must re-detect and restart the recovery path.
    fn open_outage(&mut self, t: usize, now: SimTime) {
        let idx = match self.outage_of[t] {
            Some(i) => i,
            None => {
                let i = self.outages.len();
                self.outages.push(TaskOutages {
                    task: TaskIndex(t),
                    records: Vec::new(),
                });
                self.outage_of[t] = Some(i);
                i
            }
        };
        let records = &mut self.outages[idx].records;
        let (rearmed, refail) = match records.last_mut() {
            Some(last) if last.open() => {
                // Died again mid-recovery: the outage continues, but the
                // recovery path (and any pending takeover) is void.
                last.detected_at = SimTime::MAX;
                last.via_replica = false;
                (true, false)
            }
            _ => {
                records.push(OutageRecord {
                    via_replica: false,
                    failed_at: now,
                    detected_at: SimTime::MAX,
                    recovered_at: None,
                    fidelity_floor: None,
                });
                (false, records.len() > 1)
            }
        };
        let n_records = records.len();
        if rearmed || refail {
            self.recovery_setbacks += 1;
        }
        self.lifecycle[t] = if n_records > 1 {
            Lifecycle::ReFailed
        } else {
            Lifecycle::Failed
        };
        if rearmed {
            self.note(now, EngineEvent::RecoverySetback { task: t });
        } else {
            // A fresh record: its first proxied output is still to come.
            self.proxied[t] = false;
            self.note(now, EngineEvent::OutageOpened { task: t, refail });
        }
    }

    /// Marks task `t`'s current outage recovered at `at` (idempotent per
    /// outage) and moves its lifecycle to `Recovered`. The single funnel
    /// every recovery path closes through, so exactly one closing event
    /// (`ReplicaActivated` or `RestoreDone`) is recorded per record.
    fn mark_recovered(&mut self, t: usize, at: SimTime) {
        let mut closed = None;
        if let Some(rec) = self.current_outage_mut(t) {
            if rec.recovered_at.is_none() {
                rec.recovered_at = Some(at);
                closed = Some((rec.via_replica, rec.failed_at));
            }
            self.lifecycle[t] = Lifecycle::Recovered;
        }
        if let Some((via_replica, failed_at)) = closed {
            self.metrics.observe(
                "engine.recovery.latency_us",
                LATENCY_BUCKETS_US,
                at.since(failed_at).as_micros(),
            );
            let event = if via_replica {
                EngineEvent::ReplicaActivated { task: t }
            } else {
                EngineEvent::RestoreDone { task: t }
            };
            self.note(at, event);
        }
    }

    /// The task graph the simulation runs.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// The placement the cluster currently runs under — control-plane
    /// migrations rewrite it, so mid-`drive` this reflects where tasks
    /// actually are (including the node → fault-domain mapping).
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    // ------------------------------------------------------------------
    // Control plane: applying policy actions
    // ------------------------------------------------------------------

    fn apply_actions(
        &mut self,
        at: SimTime,
        acts: Vec<ControlAction>,
        out: &mut Vec<ActionRecord>,
        control_cpu: &mut SimDuration,
    ) {
        for act in acts {
            let outcome = match act {
                ControlAction::Replan { budget } => self.apply_replan(budget, at, control_cpu),
                ControlAction::MigrateTasks { domains } => {
                    self.apply_migration(&domains, at, control_cpu)
                }
            };
            if let ActionOutcome::NoEffect { action, reason } = &outcome {
                let (action, reason) = (*action, *reason);
                self.note(at, EngineEvent::ControlNoEffect { action, reason });
            }
            out.push(ActionRecord { at, outcome });
        }
    }

    /// Reserves control-plane work on `node` starting no earlier than the
    /// acting hook's virtual time `at` (an epoch boundary can lie between
    /// events, past the scheduler clock — the shipped state must not
    /// complete before the decision that ordered it).
    fn reserve_from(&mut self, node: NodeId, work: SimDuration, at: SimTime) -> SimTime {
        let start = self.node_busy[node].max(self.sched.now()).max(at);
        let finish = start + work;
        self.node_busy[node] = finish;
        finish
    }

    /// Re-plans active replication through `AdaptivePlanner::step` (§V-C
    /// hysteresis) against a context derived from the placement's
    /// *current* node → domain mapping, then reconciles running replicas
    /// with the adopted plan: replicas that fell out are torn down, and
    /// every planned task without a live replica gets one established —
    /// including re-establishing replicas the failures destroyed, which
    /// is what lets a drive recover tasks whose primary *and* standby
    /// died together.
    fn apply_replan(
        &mut self,
        budget: usize,
        at: SimTime,
        control_cpu: &mut SimDuration,
    ) -> ActionOutcome {
        if !matches!(
            self.config.mode,
            FtMode::Ppa { .. } | FtMode::Approximate { .. }
        ) {
            return ActionOutcome::NoEffect {
                action: "replan",
                reason: "replication plans only exist under FtMode::Ppa",
            };
        }
        let cx = match self.placement.plan_context(self.graph.topology()) {
            Ok(cx) => cx,
            Err(_) => {
                return ActionOutcome::NoEffect {
                    action: "replan",
                    reason: "placement carries no fault-domain mapping to plan against",
                }
            }
        };
        // Live health enters the objective: alongside the hypothetical
        // per-domain failure sets, the *currently dead* tasks form one
        // more candidate set — a plan that abandons an already-down task
        // is scored as losing it, so replans keep covering the actual
        // outage while re-hedging the surviving domains. A task in an
        // open outage counts as dead even while its restore is replaying:
        // a re-failed task (its activated replica died) is in exactly
        // this position, and the replan is what re-establishes its way
        // back.
        let n = self.graph.n_tasks();
        let dead = TaskSet::from_tasks(
            n,
            (0..n)
                .filter(|&t| {
                    self.tasks[t].status == Status::Dead
                        || self.current_outage(t).is_some_and(OutageRecord::open)
                })
                .map(TaskIndex),
        );
        let cx = if dead.is_empty() {
            cx
        } else {
            let mut sets = cx.failure_sets().unwrap_or_default().to_vec();
            sets.push(dead.clone());
            cx.with_failure_sets(sets)
        };
        let planner = AdaptivePlanner::new(StructureAwarePlanner::default());
        let step = match planner.step(&cx, &self.active_plan, budget) {
            Ok(step) => step,
            Err(_) => {
                return ActionOutcome::NoEffect {
                    action: "replan",
                    reason: "planner rejected the placement-derived context",
                }
            }
        };
        let mut adopted = step.plan.tasks;
        let mut deactivated = 0;
        for t in step.deactivate.iter() {
            if self.deactivate_replica(t.0) {
                deactivated += 1;
            } else if self.replica_slot[t.0].is_some() {
                // Kept (e.g. a dead task's only way back): the adopted
                // plan must reflect what actually runs.
                adopted.insert(t);
            }
        }
        let mut activated = 0;
        for t in adopted.iter() {
            if self.activate_replica(t.0, at, control_cpu) {
                activated += 1;
            }
        }
        self.active_plan = adopted;
        self.note(
            at,
            EngineEvent::ReplanAdopted {
                activated,
                deactivated,
                plan_size: self.active_plan.len(),
            },
        );
        ActionOutcome::Replanned {
            activated,
            deactivated,
        }
    }

    /// Evacuates primaries and standbys off `domains` per
    /// [`plan_evacuation`], rewiring the running tasks and charging each
    /// move's state ship to the destination node.
    fn apply_migration(
        &mut self,
        domains: &[ppa_faults::DomainId],
        at: SimTime,
        control_cpu: &mut SimDuration,
    ) -> ActionOutcome {
        let moves = match plan_evacuation(&self.placement, domains, &self.node_alive) {
            Ok(moves) => moves,
            Err(_) => {
                return ActionOutcome::NoEffect {
                    action: "migrate",
                    reason: "placement carries no fault-domain mapping to evacuate",
                }
            }
        };
        let (planned_primaries, planned_standbys) = move_counts(&moves);
        let mut primaries = 0;
        let mut standbys = 0;
        for m in moves {
            let t = m.task.0;
            match m.role {
                MoveRole::Primary => {
                    // Only live incarnations move; a dead task's comeback
                    // is the recovery path's job.
                    if matches!(self.tasks[t].status, Status::Dead | Status::Restoring) {
                        continue;
                    }
                    let work = self.state_ship_work(self.tasks[t].state_tuples());
                    self.reserve_from(m.to, work, at);
                    *control_cpu += work;
                    self.tasks[t].node = m.to;
                    self.placement.primary[t] = m.to;
                    primaries += 1;
                }
                MoveRole::Standby => {
                    self.placement.standby[t] = m.to;
                    standbys += 1;
                    // A live muted replica follows its standby slot.
                    if let Some(slot) = self.replica_slot[t] {
                        if self.tasks[slot].status == Status::Running
                            && self.tasks[slot].node == m.from
                        {
                            let work = self.state_ship_work(self.tasks[slot].state_tuples());
                            self.reserve_from(m.to, work, at);
                            *control_cpu += work;
                            self.tasks[slot].node = m.to;
                        }
                    }
                }
            }
        }
        self.note(
            at,
            EngineEvent::MigrationScheduled {
                planned_primaries,
                planned_standbys,
                moved_primaries: primaries,
                moved_standbys: standbys,
            },
        );
        ActionOutcome::Migrated {
            primaries,
            standbys,
        }
    }

    /// CPU to ship `state` tuples of operator state to another node.
    fn state_ship_work(&self, state: usize) -> SimDuration {
        self.config.costs.state_load_per_tuple * state as u64 + self.config.costs.batch_overhead
    }

    /// Establishes an active replica for task `t` on its standby node,
    /// initialized from the live primary (state ship) or, when the
    /// primary is down, from its last checkpoint. Returns whether a new
    /// replica was created — `false` when one is already live or the
    /// standby node is dead.
    fn activate_replica(&mut self, t: usize, at: SimTime, control_cpu: &mut SimDuration) -> bool {
        let old_slot = self.replica_slot[t];
        if let Some(slot) = old_slot {
            if self.tasks[slot].status != Status::Dead {
                return false; // already live
            }
        }
        let standby = self.placement.standby[t];
        if !self.node_alive[standby] {
            return false;
        }
        let is_source = self.tasks[t].source.is_some();
        let source = if is_source {
            // The spare generator, or the one trapped in a previous
            // replica slot that died with its node (generation is a pure
            // function of the batch id, so reuse is safe).
            match self.spare_sources[t]
                .take()
                .or_else(|| old_slot.and_then(|slot| self.tasks[slot].source.take()))
            {
                Some(s) => Some(s),
                None => return false,
            }
        } else {
            None
        };

        // State to seed the replica with: the live primary's snapshot
        // (replica sync), else the last checkpoint (the §V-C "initialized
        // from their checkpoints" path), else a fresh empty UDF.
        let primary_alive = matches!(self.tasks[t].status, Status::Running | Status::CatchingUp);
        let (udf, next_batch, closed) = if is_source {
            // A source replica must pick up exactly where the stream
            // last materialized: a dead primary's in-flight batch would
            // otherwise be a permanent hole downstream (the task counts
            // as recovered, so nothing proxies the missing punctuation).
            let start = if primary_alive {
                self.tasks[t].next_batch
            } else {
                self.tasks[t]
                    .pre_failure_progress
                    .unwrap_or_else(|| self.current_batch())
            };
            (None, start, Vec::new())
        } else if primary_alive {
            let task = &self.tasks[t];
            (
                task.udf.as_ref().map(|u| u.snapshot()),
                task.next_batch,
                task.closed.clone(),
            )
        } else if let Some(cp) = &self.tasks[t].checkpoint {
            (
                cp.udf.as_ref().map(|u| u.snapshot()),
                cp.batch,
                cp.closed.clone(),
            )
        } else {
            (
                self.fresh_udf[t].as_ref().map(|f| f()),
                0,
                vec![0; self.tasks[t].n_substreams()],
            )
        };

        let state = udf.as_ref().map_or(0, |u| u.state_tuples());
        let work = self.state_ship_work(state);
        let finish = self.reserve_from(standby, work, at);
        *control_cpu += work;

        let logical = TaskIndex(t);
        let replica = TaskRt {
            logical,
            is_replica: true,
            node: standby,
            status: Status::Running,
            udf,
            source,
            sub_from: self.tasks[t].sub_from.clone(),
            staged: vec![BTreeMap::new(); self.tasks[t].n_substreams()],
            closed: if is_source { Vec::new() } else { closed },
            next_batch,
            outputs_enabled: false,
            out_targets: self.tasks[t].out_targets.clone(),
            stream_spans: self.tasks[t].stream_spans.clone(),
            out_buffer: vec![VecDeque::new(); self.tasks[t].out_targets.len()],
            checkpoint: None,
            pre_failure_progress: None,
            pending_sink: Vec::new(),
            cpu: CpuStats::default(),
            throughput: crate::report::TaskThroughput::default(),
            divergence: crate::approx::DivergenceModel::default(),
        };
        let slot = self.tasks.len();
        self.tasks.push(replica);
        self.replica_slot[t] = Some(slot);

        if is_source {
            // Regenerate the backlog immediately (deterministic per
            // batch id, muted into the output buffer — the takeover
            // flush re-serves it), then join the cadence at the next
            // batch boundary.
            let current = self.current_batch();
            for b in next_batch..current {
                self.generate_source_batch(slot, b, true);
            }
            let b = current.max(next_batch);
            let due = SimTime::ZERO + self.config.batch_interval * (b + 1);
            self.sched.at(
                due.max(self.sched.now()).max(at),
                Event::SourceBatch { rt: slot, batch: b },
            );
        } else {
            // Ask live upstreams to re-serve everything at or past the
            // replica's cursor so it can catch up (downstream primaries
            // deduplicate the copies they also receive).
            let at = finish + self.config.costs.network_latency;
            let upstreams: Vec<TaskIndex> =
                self.tasks[slot].sub_from.iter().map(|&(_, u)| u).collect();
            for u in upstreams {
                let sender = self.active_slot(u.0);
                if matches!(
                    self.tasks[sender].status,
                    Status::Running | Status::CatchingUp
                ) {
                    self.resend_buffered(sender, logical, next_batch, at);
                }
            }
        }

        // Keep the replica-sync trims flowing.
        if !self.replica_sync_running {
            self.sched
                .after(self.config.replica_sync_interval, Event::ReplicaSync);
            self.replica_sync_running = true;
        }

        // A replica established for a dead, already-detected task is a
        // late takeover: schedule it once the state ship lands. This also
        // covers a task whose *previous* activated replica died — its
        // current (re-failure) outage, once detected, is closed by this
        // replica's takeover. A not-yet-detected outage waits for the
        // heartbeat scan, whose start_recovery finds this replica running.
        if self.tasks[t].status == Status::Dead
            && self.current_outage(t).is_some_and(OutageRecord::detected)
        {
            self.sched.at(finish, Event::TakeoverDone { logical: t });
        }
        true
    }

    /// Tears down task `t`'s muted replica (a replica that already took
    /// over is the task's active incarnation and is left alone, as is
    /// the muted replica of a dead primary — it is the task's only way
    /// back). Returns whether a replica was removed.
    fn deactivate_replica(&mut self, t: usize) -> bool {
        let Some(slot) = self.replica_slot[t] else {
            return false;
        };
        if self.tasks[slot].outputs_enabled {
            return false; // serving as the active incarnation
        }
        if self.tasks[t].status == Status::Dead && self.tasks[slot].status == Status::Running {
            return false; // the dead primary's pending takeover path
        }
        let task = &mut self.tasks[slot];
        task.status = Status::Dead;
        for s in &mut task.staged {
            s.clear();
        }
        for q in &mut task.out_buffer {
            q.clear();
        }
        task.pending_sink.clear();
        if let Some(source) = task.source.take() {
            self.spare_sources[t] = Some(source);
        }
        self.replica_slot[t] = None;
        true
    }

    // ------------------------------------------------------------------
    // CPU accounting
    // ------------------------------------------------------------------

    /// Reserves `work` on `node` starting no earlier than now; returns the
    /// completion instant.
    fn reserve(&mut self, node: NodeId, work: SimDuration) -> SimTime {
        let start = self.node_busy[node].max(self.sched.now());
        let finish = start + work;
        self.node_busy[node] = finish;
        finish
    }

    // ------------------------------------------------------------------
    // Lane execution: the sharded event loop
    // ------------------------------------------------------------------

    /// The read-only context lane handlers run against, frozen at the
    /// current scheduler instant.
    fn lane_ctx(&self) -> lane::LaneCtx<'_> {
        lane::LaneCtx {
            graph: &self.graph,
            config: &self.config,
            replica_slot: &self.replica_slot,
            storm_buffer_batches: self.storm_buffer_batches,
            now: self.sched.now(),
        }
    }

    /// Runs one data-plane event inline through the lane handlers and
    /// applies its staged effects immediately — the sequential execution
    /// path, shared with every solo caller (restore, replica activation).
    fn run_lane(&mut self, rt: Rt, ev: lane::LaneEvent) {
        let node = self.tasks[rt].node;
        let mut fx = lane::LaneEffects::default();
        let cx = lane::LaneCtx {
            graph: &self.graph,
            config: &self.config,
            replica_slot: &self.replica_slot,
            storm_buffer_batches: self.storm_buffer_batches,
            now: self.sched.now(),
        };
        lane::handle(
            &cx,
            rt,
            &mut self.tasks[rt],
            &mut self.node_busy[node],
            ev,
            &mut fx,
        );
        self.apply_effects(fx);
    }

    /// Applies one event's staged effects. Scheduling in call order keeps
    /// sequence numbers — and with them every same-instant tie-break —
    /// identical to the single-threaded loop.
    fn apply_effects(&mut self, fx: lane::LaneEffects) {
        let lane::LaneEffects {
            scheduled,
            sink,
            recovered,
            tuples_moved,
        } = fx;
        for (at, ev) in scheduled {
            self.sched.at(at, ev);
        }
        self.sink.extend(sink);
        for (t, at) in recovered {
            self.mark_recovered(t, at);
        }
        self.tuples_moved += tuples_moved;
    }

    /// Fires the next event (or same-instant span of events) at or before
    /// `deadline`. Returns `None` when nothing fires, else whether a
    /// failure event fired (the control-plane hook trigger).
    fn step_until(&mut self, deadline: SimTime) -> Option<bool> {
        if self.config.shards <= 1 {
            // The legacy path, bit-for-bit: one event per step.
            let (_, ev) = self.sched.next_until(deadline)?;
            self.events += 1;
            let failure = matches!(ev, Event::Failure { .. });
            self.handle(ev);
            return Some(failure);
        }
        // Eligible for lane execution: data-plane events whose handler
        // only touches the receiving task and its node. Deliveries to a
        // catching-up task are excluded because finishing a catch-up
        // closes the (global) outage books. Everything else — timers,
        // failures, master actions — runs solo, carried after the span.
        let tasks = &self.tasks;
        let span = self.sched.pop_span(deadline, |ev| match *ev {
            Event::SourceBatch { rt, .. } => Some(tasks[rt].node),
            Event::Deliver { to, .. } if tasks[to].status != Status::CatchingUp => {
                Some(tasks[to].node)
            }
            _ => None,
        })?;
        self.events += span.events.len() as u64;
        self.run_span(span.at, span.events);
        let mut failure = false;
        if let Some(ev) = span.carried {
            self.events += 1;
            failure = matches!(ev, Event::Failure { .. });
            self.handle(ev);
        }
        Some(failure)
    }

    /// Executes a same-instant span of eligible events: groups them into
    /// per-node lanes, runs the lanes on the shard executor, then applies
    /// every event's staged effects in global span order — reproducing
    /// the sequential execution exactly (see `crates/sim/src/lane.rs`).
    fn run_span(&mut self, at: SimTime, events: Vec<(ppa_sim::ShardId, Event)>) {
        if events.len() < MIN_PARALLEL_SPAN {
            for (_, ev) in events {
                self.handle(ev);
            }
            return;
        }
        let lanes = ppa_sim::group_lanes(events);
        // Lend each lane its tasks' state (tombstones hold the slots) and
        // a copy of its node's CPU horizon.
        let mut jobs: Vec<shard::LaneJob> = Vec::with_capacity(lanes.len());
        for l in lanes {
            let node = l.shard;
            let mut tasks: Vec<(Rt, TaskRt)> = Vec::new();
            let mut events: Vec<(usize, Rt, lane::LaneEvent)> = Vec::with_capacity(l.events.len());
            for (global, ev) in l.events {
                let (rt, lev) = match ev {
                    Event::SourceBatch { rt, batch } => (rt, lane::LaneEvent::Source { batch }),
                    Event::Deliver {
                        to,
                        substream,
                        batch,
                        msg,
                    } => (
                        to,
                        lane::LaneEvent::Deliver {
                            substream,
                            batch,
                            msg,
                        },
                    ),
                    _ => {
                        debug_assert!(false, "ineligible event classified into a span");
                        continue;
                    }
                };
                if !tasks.iter().any(|&(r, _)| r == rt) {
                    tasks.push((
                        rt,
                        std::mem::replace(&mut self.tasks[rt], TaskRt::tombstone()),
                    ));
                }
                events.push((global, rt, lev));
            }
            jobs.push(shard::LaneJob {
                node,
                busy: self.node_busy[node],
                tasks,
                events,
            });
        }
        let cx = lane::LaneCtx {
            graph: &self.graph,
            config: &self.config,
            replica_slot: &self.replica_slot,
            storm_buffer_batches: self.storm_buffer_batches,
            now: at,
        };
        let results = shard::run_lanes(self.config.shards, jobs, |mut job: shard::LaneJob| {
            let mut out: Vec<(usize, lane::LaneEffects)> = Vec::with_capacity(job.events.len());
            for (global, rt, ev) in std::mem::take(&mut job.events) {
                let mut fx = lane::LaneEffects::default();
                let Some(slot) = job.tasks.iter_mut().find(|t| t.0 == rt) else {
                    debug_assert!(false, "lane event without its task state");
                    continue;
                };
                lane::handle(&cx, rt, &mut slot.1, &mut job.busy, ev, &mut fx);
                out.push((global, fx));
            }
            (job, out)
        });
        // Return the lent state, then replay effects in global order.
        let mut effects: Vec<(usize, lane::LaneEffects)> = Vec::new();
        for (job, out) in results {
            self.node_busy[job.node] = job.busy;
            for (rt, task) in job.tasks {
                self.tasks[rt] = task;
            }
            effects.extend(out);
        }
        effects.sort_by_key(|&(global, _)| global);
        for (_, fx) in effects {
            self.apply_effects(fx);
        }
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::SourceBatch { rt, batch } => self.on_source_batch(rt, batch),
            Event::Deliver {
                to,
                substream,
                batch,
                msg,
            } => self.on_deliver(to, substream, batch, msg),
            Event::Checkpoint { rt } => self.on_checkpoint(rt),
            Event::ReplicaSync => self.on_replica_sync(),
            Event::HeartbeatScan => self.on_heartbeat(),
            Event::Failure { idx } => self.on_failure(idx),
            Event::RestoreDone { rt } => self.on_restore_done(rt),
            Event::TakeoverDone { logical } => self.on_takeover_done(logical),
            Event::ProxyTick => self.on_proxy_tick(),
            Event::ApproxShip { rt } => self.on_approx_ship(rt),
            Event::Chaos { idx } => self.on_chaos(idx),
        }
    }

    // ------------------------------------------------------------------
    // Sources
    // ------------------------------------------------------------------

    fn on_source_batch(&mut self, rt: Rt, batch: u64) {
        self.run_lane(rt, lane::LaneEvent::Source { batch });
    }

    /// Generates one source batch; `regen` marks catch-up regeneration.
    fn generate_source_batch(&mut self, rt: Rt, batch: u64, regen: bool) {
        self.run_lane(rt, lane::LaneEvent::Generate { batch, regen });
    }

    // ------------------------------------------------------------------
    // Output emission
    // ------------------------------------------------------------------

    /// Schedules a Data delivery to the primary slot and replica slot (if
    /// any) of a logical task.
    #[allow(clippy::too_many_arguments)]
    fn deliver_to_incarnations(
        &mut self,
        to: TaskIndex,
        substream: usize,
        batch: u64,
        tuples: Arc<Vec<Tuple>>,
        degraded: bool,
        replay_for: Option<TaskIndex>,
        at: SimTime,
    ) {
        let mut fx = lane::LaneEffects::default();
        let cx = self.lane_ctx();
        lane::deliver_to(
            &cx, &mut fx, to, substream, batch, tuples, degraded, replay_for, at,
        );
        self.apply_effects(fx);
    }

    // ------------------------------------------------------------------
    // Delivery + processing
    // ------------------------------------------------------------------

    fn on_deliver(&mut self, to: Rt, substream: usize, batch: u64, msg: Msg) {
        self.run_lane(
            to,
            lane::LaneEvent::Deliver {
                substream,
                batch,
                msg,
            },
        );
    }

    /// Logical tasks with a path to `t` (the replay cone), excluding `t`.
    fn upstream_cone(&self, t: TaskIndex) -> Vec<bool> {
        lane::upstream_cone(&self.graph, t)
    }

    /// Processes as many consecutive ready batches as possible.
    fn try_process(&mut self, rt: Rt) {
        self.run_lane(rt, lane::LaneEvent::TryProcess);
    }

    // ------------------------------------------------------------------
    // Checkpoints
    // ------------------------------------------------------------------

    fn on_checkpoint(&mut self, rt: Rt) {
        if let Some(interval) = self.checkpoint_interval {
            self.sched.after(interval, Event::Checkpoint { rt });
        }
        if self.tasks[rt].status != Status::Running {
            return;
        }
        self.ship_state_backup(rt);
    }

    /// Approximate mode: a lane observed the task's drift crossing the
    /// error bound at a batch boundary and staged this ship. A ship that
    /// arrives after the task died (or after an earlier ship already
    /// consumed the arm) is stale and must *not* fire — the unconsumed
    /// drift is exactly the divergence a lossy recovery will forfeit.
    fn on_approx_ship(&mut self, rt: Rt) {
        if self.tasks[rt].status != Status::Running || !self.tasks[rt].divergence.is_armed() {
            return;
        }
        self.ship_state_backup(rt);
        let drift = self.tasks[rt].divergence.shipped();
        let task = self.tasks[rt].logical.0;
        self.note(
            self.sched.now(),
            EngineEvent::ApproxBackupShipped {
                task,
                divergence: drift,
            },
        );
    }

    /// Bills and takes one state backup of slot `rt`: the body shared by
    /// interval checkpoints and divergence-triggered approximate ships
    /// (same CPU charge, same snapshot contents, same upstream trims).
    fn ship_state_backup(&mut self, rt: Rt) {
        let state_tuples = self.tasks[rt].udf.as_ref().map_or(0, |u| u.state_tuples());
        // Delta checkpoints serialize only what changed since the last
        // snapshot; a sliding window turns over ~interval×rate tuples, so
        // the billable size is the state growth plus churn, capped by the
        // full state.
        let billable = if self.config.costs.delta_checkpoints {
            let prev = self.tasks[rt]
                .checkpoint
                .as_ref()
                .map_or(0, |cp| cp.state_tuples);
            let interval_batches = self
                .checkpoint_interval
                .map_or(1, |i| self.config.batches_in(i).max(1));
            // Mean per-batch inflow from the task's own throughput counter.
            let batches = self.tasks[rt].next_batch.max(1);
            let per_batch = self.tasks[rt].throughput.tuples_in / batches;
            let churn = (per_batch * interval_batches) as usize;
            state_tuples.min(state_tuples.saturating_sub(prev) + churn)
        } else {
            state_tuples
        };
        let work = self.config.costs.checkpoint_base
            + self.config.costs.checkpoint_per_state_tuple * billable as u64;
        let node = self.tasks[rt].node;
        let _finish = self.reserve(node, work);
        self.tasks[rt].cpu.checkpoint += work;

        let task = &self.tasks[rt];
        let cp = Checkpoint {
            batch: task.next_batch,
            udf: task.udf.as_ref().map(|u| u.snapshot()),
            out_buffer: task.out_buffer.clone(),
            closed: task.closed.clone(),
            state_tuples,
        };
        let ack_batch = task.next_batch;
        let logical = task.logical;
        self.tasks[rt].checkpoint = Some(cp);

        // Upstream buffer trimming: everything this checkpoint covers can be
        // dropped from the buffers feeding this task (§V-B).
        let upstreams: Vec<TaskIndex> = self.tasks[rt].sub_from.iter().map(|&(_, u)| u).collect();
        for u in upstreams {
            self.trim_buffers_for(u.0, logical, ack_batch);
            if let Some(slot) = self.replica_slot[u.0] {
                self.trim_buffers_for(slot, logical, ack_batch);
            }
        }
    }

    /// Drops `target`-bound buffered batches below `ack_batch` on slot `rt`.
    fn trim_buffers_for(&mut self, rt: Rt, target: TaskIndex, ack_batch: u64) {
        let task = &mut self.tasks[rt];
        for (k, tgt) in task.out_targets.iter().enumerate() {
            if tgt.to != target {
                continue;
            }
            while let Some((b, _, _)) = task.out_buffer[k].front() {
                if *b < ack_batch {
                    task.out_buffer[k].pop_front();
                } else {
                    break;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Replica sync
    // ------------------------------------------------------------------

    fn on_replica_sync(&mut self) {
        self.sched
            .after(self.config.replica_sync_interval, Event::ReplicaSync);
        for t in 0..self.graph.n_tasks() {
            let Some(slot) = self.replica_slot[t] else {
                continue;
            };
            if self.tasks[t].status != Status::Running
                || self.tasks[slot].status != Status::Running
                || self.tasks[slot].outputs_enabled
            {
                continue; // primary dead / replica activated: no more trims
            }
            // The primary's sent progress lets the replica trim its muted
            // output buffer (§V-B "Active Replication").
            let ack = self.tasks[t].next_batch;
            let task = &mut self.tasks[slot];
            for q in &mut task.out_buffer {
                while let Some((b, _, _)) = q.front() {
                    if *b < ack {
                        q.pop_front();
                    } else {
                        break;
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Failure, detection, recovery
    // ------------------------------------------------------------------

    fn on_failure(&mut self, idx: usize) {
        let now = self.sched.now();
        // Only nodes actually killed by *this* event enter the record —
        // nodes an earlier trace event already took down are not listed.
        let killed: Vec<NodeId> = self.failures[idx]
            .nodes
            .clone()
            .into_iter()
            .filter(|&n| self.node_alive[n])
            .collect();
        if killed.is_empty() {
            return;
        }
        self.note(
            now,
            EngineEvent::FailureInjected {
                nodes: killed.clone(),
            },
        );
        for node in killed {
            self.node_alive[node] = false;
            self.record_domain_failure(node, now);
            for rt in 0..self.tasks.len() {
                if self.tasks[rt].node != node || self.tasks[rt].status == Status::Dead {
                    continue;
                }
                let progress = {
                    let task = &mut self.tasks[rt];
                    task.status = Status::Dead;
                    task.pre_failure_progress = Some(task.next_batch);
                    for s in &mut task.staged {
                        s.clear();
                    }
                    task.next_batch
                };
                let logical = self.tasks[rt].logical.0;
                if !self.tasks[rt].is_replica {
                    // The primary incarnation died: a first failure, a
                    // checkpoint-restored task dying again (fresh
                    // outage), or a death mid-restore (the open outage
                    // is re-armed for re-detection).
                    self.open_outage(logical, now);
                } else if self.replica_slot[logical] == Some(rt) {
                    if self.tasks[rt].outputs_enabled {
                        // An *activated* replica died: the logical task
                        // is headless again. Open a fresh outage measured
                        // against the replica's progress — re-detection,
                        // re-proxying and a fresh recovery latency follow
                        // instead of the task silently counting as
                        // recovered forever.
                        self.tasks[logical].pre_failure_progress = Some(progress);
                        self.open_outage(logical, now);
                    } else if self.tasks[logical].status == Status::Dead
                        && self
                            .current_outage(logical)
                            .is_some_and(|rec| rec.open() && rec.detected())
                    {
                        // A muted replica with a pending takeover died
                        // mid-recovery (the primary is still down and no
                        // restore is in flight): fall straight back to
                        // the passive path — the scheduled takeover will
                        // find the slot dead and do nothing.
                        if let Some(rec) = self.current_outage_mut(logical) {
                            rec.via_replica = false;
                        }
                        self.recovery_setbacks += 1;
                        self.note(now, EngineEvent::RecoverySetback { task: logical });
                        self.start_recovery(logical);
                    }
                }
            }
        }
    }

    /// Bumps the time-decayed failure score of every proper fault domain
    /// containing `node` (no-op without a node → domain mapping).
    fn record_domain_failure(&mut self, node: NodeId, at: SimTime) {
        let Some(health) = &mut self.domain_health else {
            return;
        };
        let Some(tree) = self.placement.fault_domains() else {
            return;
        };
        let mut domain = tree.domain_of(node);
        while let Some(d) = domain {
            if tree.parent_of(d).is_none() {
                break; // the root is not a proper domain
            }
            health.record(d, at);
            domain = tree.parent_of(d);
        }
    }

    fn on_heartbeat(&mut self) {
        // Buggify: a delayed master shifts this scan (and the cadence
        // behind it); a dropped scan keeps the cadence but skips the
        // scan body — detection of any open outage arrives late.
        if let Some(by) = self.heartbeat_delay.take() {
            self.sched.after(by, Event::HeartbeatScan);
            return;
        }
        self.sched
            .after(self.config.heartbeat_interval, Event::HeartbeatScan);
        if self.heartbeat_drops > 0 {
            self.heartbeat_drops -= 1;
            return;
        }
        self.heartbeat_scan();
    }

    /// The scan body: detect every task whose current outage is still
    /// undetected and start its recovery. Idempotent, so a duplicated
    /// scan (`ChaosKind::HeartbeatDuplicate`) is safe by construction.
    fn heartbeat_scan(&mut self) {
        let now = self.sched.now();
        for t in 0..self.graph.n_tasks() {
            if self.tasks[t].status != Status::Dead {
                continue;
            }
            // Detect the task's *current* outage — a re-failed task (its
            // activated replica died) re-enters here with a fresh record.
            let undetected = self
                .current_outage(t)
                .is_some_and(|rec| rec.open() && !rec.detected());
            if !undetected {
                continue; // never failed, already detected, or recovered
            }
            let mut failed_at = None;
            if let Some(rec) = self.current_outage_mut(t) {
                rec.detected_at = now;
                failed_at = Some(rec.failed_at);
            }
            if let Some(failed) = failed_at {
                self.metrics.observe(
                    "engine.outage.detection_us",
                    LATENCY_BUCKETS_US,
                    now.since(failed).as_micros(),
                );
            }
            self.note(now, EngineEvent::OutageDetected { task: t });
            self.start_recovery(t);
        }
    }

    fn start_recovery(&mut self, t: usize) {
        match &self.config.mode {
            FtMode::None => { /* stays dead */ }
            // Approximate recovers through the same machinery: replica
            // takeover when a live replica exists (lossless), else a
            // restore of the last shipped snapshot on the standby —
            // identical load cost; the completion path diverges in
            // `on_restore_done` (no replay, lossy jump to the frontier).
            FtMode::Ppa { .. } | FtMode::Approximate { .. } => {
                // Replica takeover if a live replica exists.
                if let Some(slot) = self.replica_slot[t] {
                    if self.tasks[slot].status == Status::Running {
                        let buffered = self.tasks[slot].buffered_tuples();
                        let work = self.config.costs.resend_per_tuple * buffered as u64
                            + self.config.costs.batch_overhead;
                        let node = self.tasks[slot].node;
                        let finish = self.reserve(node, work);
                        if let Some(rec) = self.current_outage_mut(t) {
                            rec.via_replica = true;
                        }
                        self.lifecycle[t] = Lifecycle::Replaying;
                        self.sched.at(finish, Event::TakeoverDone { logical: t });
                        return;
                    }
                }
                // Checkpoint restore on the standby node.
                if !self.config.passive_recovery {
                    return; // held down for steady-state tentative sampling
                }
                let Some(standby) = self.recovery_node(t) else {
                    return; // nowhere alive to restore — the outage stays open
                };
                let state = self.tasks[t]
                    .checkpoint
                    .as_ref()
                    .map_or(0, |cp| cp.state_tuples);
                let work = self.config.costs.state_load_per_tuple * state as u64
                    + self.config.costs.batch_overhead;
                self.tasks[t].status = Status::Restoring;
                self.tasks[t].node = standby;
                self.lifecycle[t] = Lifecycle::Replaying;
                let finish = self.reserve(standby, work);
                self.sched.at(finish, Event::RestoreDone { rt: t });
                let now = self.sched.now();
                self.note(
                    now,
                    EngineEvent::RestoreStarted {
                        task: t,
                        node: standby,
                    },
                );
            }
            FtMode::SourceReplay { .. } => {
                if !self.config.passive_recovery {
                    return;
                }
                let Some(standby) = self.recovery_node(t) else {
                    return; // nowhere alive to restart — the outage stays open
                };
                self.tasks[t].status = Status::Restoring;
                self.tasks[t].node = standby;
                self.lifecycle[t] = Lifecycle::Replaying;
                let work = self.config.costs.batch_overhead;
                let finish = self.reserve(standby, work);
                self.sched.at(finish, Event::RestoreDone { rt: t });
                let now = self.sched.now();
                self.note(
                    now,
                    EngineEvent::RestoreStarted {
                        task: t,
                        node: standby,
                    },
                );
            }
        }
    }

    /// The node a passive recovery restores task `t` onto: its configured
    /// standby, or — when the standby is dead too (e.g. it hosted the
    /// activated replica that just died) — the least-loaded *alive*
    /// standby-range node, standing in for the master re-assigning the
    /// task. `None` when every candidate is dead: the outage stays open
    /// instead of the task "recovering" on a dead machine (which would
    /// also make it unkillable for the rest of the run).
    fn recovery_node(&self, t: usize) -> Option<NodeId> {
        let standby = self.placement.standby[t];
        if self.node_alive[standby] {
            return Some(standby);
        }
        (self.placement.n_workers..self.placement.n_nodes())
            .filter(|&n| self.node_alive[n])
            .min_by_key(|&n| (self.node_busy[n], n))
    }

    fn on_restore_done(&mut self, rt: Rt) {
        // Buggify: a stalled state load hangs the completion; the task
        // stays `Restoring` (and its outage open) for the stall.
        if self.tasks[rt].status == Status::Restoring {
            let logical = self.tasks[rt].logical.0;
            if let Some(by) = self.restore_stall[logical].take() {
                self.sched.after(by, Event::RestoreDone { rt });
                return;
            }
        }
        // A restore whose target died again mid-load is void — the open
        // outage was re-armed and the re-detection path owns the task now
        // (resurrecting it here would run it on a dead node).
        if self.tasks[rt].status != Status::Restoring {
            let logical = self.tasks[rt].logical.0;
            let now = self.sched.now();
            self.note(now, EngineEvent::RestoreVoided { task: logical });
            return;
        }
        match &self.config.mode {
            FtMode::Ppa { .. } => self.restore_from_checkpoint(rt),
            FtMode::Approximate { .. } => self.restore_approximate(rt),
            FtMode::SourceReplay { .. } => self.restore_storm(rt),
            FtMode::None => {}
        }
    }

    fn restore_from_checkpoint(&mut self, rt: Rt) {
        let now = self.sched.now();
        let is_source = self.tasks[rt].source.is_some();
        {
            let task = &mut self.tasks[rt];
            match task.checkpoint.clone_parts() {
                Some((batch, udf, out_buffer, closed)) => {
                    task.next_batch = batch;
                    if let Some(u) = udf {
                        task.udf = Some(u);
                    }
                    task.out_buffer = out_buffer;
                    task.closed = closed;
                }
                None => {
                    // Never checkpointed: restart from scratch.
                    task.next_batch = 0;
                    for q in &mut task.out_buffer {
                        q.clear();
                    }
                    for c in &mut task.closed {
                        *c = 0;
                    }
                    if let Some(f) = &self.fresh_udf[task.logical.0] {
                        task.udf = Some(f());
                    }
                }
            }
            for s in &mut task.staged {
                s.clear();
            }
            task.status = Status::CatchingUp;
        }

        if is_source {
            // Regenerate every missed batch (deterministic per batch id),
            // then the task is caught up.
            let current = self.current_batch();
            let from = self.tasks[rt].next_batch;
            for b in from..current {
                self.generate_source_batch(rt, b, true);
            }
            self.tasks[rt].status = Status::Running;
            let logical = self.tasks[rt].logical;
            let at = self.node_busy[self.tasks[rt].node].max(now);
            self.mark_recovered(logical.0, at);
            return;
        }

        // Re-serve downstream from the restored output buffer.
        self.flush_out_buffer(rt, now + self.config.costs.network_latency);

        // Ask live upstream incarnations to replay everything at or past our
        // restore cursor; dead upstreams will re-serve on their own restore.
        let logical = self.tasks[rt].logical;
        let cursor = self.tasks[rt].next_batch;
        let upstreams: Vec<TaskIndex> = self.tasks[rt].sub_from.iter().map(|&(_, u)| u).collect();
        for u in upstreams {
            let sender = self.active_slot(u.0);
            if self.tasks[sender].status == Status::Running
                || self.tasks[sender].status == Status::CatchingUp
            {
                self.resend_buffered(
                    sender,
                    logical,
                    cursor,
                    now + self.config.costs.network_latency,
                );
            }
        }
        self.try_process(rt);
    }

    /// Approximate mode's lossy restore: load the last shipped snapshot
    /// (already billed when `RestoreDone` was scheduled), then jump
    /// straight to the stream frontier *without* replaying the gap. The
    /// batches between the snapshot and the frontier are forfeited; one
    /// cumulative proxy per out-edge closes them downstream so healthy
    /// consumers never stall waiting for output that will never come.
    /// The forfeited fidelity is quantified into the outage record's
    /// `fidelity_floor` and an `ApproxRecovery` event before the
    /// `RestoreDone` that closes the outage.
    fn restore_approximate(&mut self, rt: Rt) {
        let now = self.sched.now();
        let is_source = self.tasks[rt].source.is_some();
        {
            let task = &mut self.tasks[rt];
            match task.checkpoint.clone_parts() {
                Some((batch, udf, out_buffer, closed)) => {
                    task.next_batch = batch;
                    if let Some(u) = udf {
                        task.udf = Some(u);
                    }
                    task.out_buffer = out_buffer;
                    task.closed = closed;
                }
                None => {
                    // Never shipped: restart from scratch (the whole
                    // prefix is the forfeited gap).
                    task.next_batch = 0;
                    for q in &mut task.out_buffer {
                        q.clear();
                    }
                    for c in &mut task.closed {
                        *c = 0;
                    }
                    if let Some(f) = &self.fresh_udf[task.logical.0] {
                        task.udf = Some(f());
                    }
                }
            }
            for s in &mut task.staged {
                s.clear();
            }
            task.status = Status::CatchingUp;
        }

        if is_source {
            // Sources are deterministic per batch id: regeneration *is*
            // exact, so they recover precisely like the exact path and
            // forfeit nothing.
            let current = self.current_batch();
            let from = self.tasks[rt].next_batch;
            for b in from..current {
                self.generate_source_batch(rt, b, true);
            }
            self.tasks[rt].status = Status::Running;
            self.tasks[rt].divergence.reset();
            let logical = self.tasks[rt].logical;
            let at = self.node_busy[self.tasks[rt].node].max(now);
            self.mark_recovered(logical.0, at);
            return;
        }

        let logical = self.tasks[rt].logical;
        let frontier = self.current_batch();
        let snapshot_batch = self.tasks[rt].next_batch;
        let skipped = frontier.saturating_sub(snapshot_batch);
        {
            let task = &mut self.tasks[rt];
            task.next_batch = task.next_batch.max(frontier);
            // The forfeited gap will never arrive from upstream either:
            // close it so `ready` never waits on it.
            for c in &mut task.closed {
                *c = (*c).max(frontier);
            }
            task.status = Status::Running;
        }
        let divergence = self.tasks[rt].divergence.pending();
        self.tasks[rt].divergence.reset();

        // Re-serve downstream from the restored output buffer (batches the
        // snapshot still covers; dedup makes this idempotent), and close
        // the forfeited gap with one cumulative proxy per out-edge —
        // `Msg::Proxy` at batch `frontier - 1` unblocks consumers through
        // the frontier.
        let deliver_at = now + self.config.costs.network_latency;
        self.flush_out_buffer(rt, deliver_at);
        if frontier > 0 {
            let targets: Vec<(TaskIndex, usize)> = self.tasks[rt]
                .out_targets
                .iter()
                .map(|tgt| (tgt.to, tgt.to_substream))
                .collect();
            for (to, substream) in targets {
                self.sched.at(
                    deliver_at,
                    Event::Deliver {
                        to: to.0,
                        substream,
                        batch: frontier - 1,
                        msg: Msg::Proxy,
                    },
                );
                if let Some(slot) = self.replica_slot[to.0] {
                    self.sched.at(
                        deliver_at,
                        Event::Deliver {
                            to: slot,
                            substream,
                            batch: frontier - 1,
                            msg: Msg::Proxy,
                        },
                    );
                }
            }
        }

        // Live upstreams re-serve from the frontier on: the jump needs no
        // older input, only what the resumed task will actually process.
        let upstreams: Vec<TaskIndex> = self.tasks[rt].sub_from.iter().map(|&(_, u)| u).collect();
        for u in upstreams {
            let sender = self.active_slot(u.0);
            if self.tasks[sender].status == Status::Running
                || self.tasks[sender].status == Status::CatchingUp
            {
                self.resend_buffered(sender, logical, frontier, deliver_at);
            }
        }

        // Quantify the loss: of the batch intervals the outage spans, the
        // forfeited gap is the part whose exact output is gone for good.
        // Conservative floor in permille — the realized fidelity can only
        // be higher.
        let failed_batch = self
            .current_outage(logical.0)
            .map_or(0, |rec| rec.failed_at.as_micros())
            / self.config.batch_interval.as_micros();
        let total = frontier.saturating_sub(failed_batch).max(1);
        let forfeited = skipped.min(total);
        let floor = (1000 * (total - forfeited) / total) as u16;
        if let Some(rec) = self.current_outage_mut(logical.0) {
            rec.fidelity_floor = Some(floor);
        }
        self.note(
            now,
            EngineEvent::ApproxRecovery {
                task: logical.0,
                divergence,
                skipped_batches: skipped,
                fidelity_floor: floor,
            },
        );
        // `now` is the restore's own CPU-reserved completion instant, and
        // the frontier jump is pure bookkeeping: progress dominates here,
        // not after whatever other restores are queued on this standby.
        self.mark_recovered(logical.0, now);
        self.try_process(rt);
    }

    fn restore_storm(&mut self, rt: Rt) {
        let now = self.sched.now();
        let w = self.storm_buffer_batches.unwrap_or(1);
        let logical = self.tasks[rt].logical;
        let is_source = self.tasks[rt].source.is_some();
        {
            let task = &mut self.tasks[rt];
            let pre = task.pre_failure_progress.unwrap_or(0);
            task.next_batch = pre.saturating_sub(w);
            for q in &mut task.out_buffer {
                q.clear();
            }
            for s in &mut task.staged {
                s.clear();
            }
            for c in &mut task.closed {
                *c = task.next_batch;
            }
            if let Some(f) = &self.fresh_udf[logical.0] {
                task.udf = Some(f());
            }
            task.status = Status::CatchingUp;
        }
        if is_source {
            let current = self.current_batch();
            let from = self.tasks[rt].next_batch;
            for b in from..current {
                self.generate_source_batch(rt, b, true);
            }
            self.tasks[rt].status = Status::Running;
            let at = self.node_busy[self.tasks[rt].node].max(now);
            self.mark_recovered(logical.0, at);
            return;
        }
        // Sources replay their buffered window through the topology toward
        // this task; hops forward with reprocessing charges.
        let cone = self.upstream_cone(logical);
        let cursor = self.tasks[rt].next_batch;
        let deliver_at = now + self.config.costs.network_latency;
        for s in 0..self.graph.n_tasks() {
            if !cone[s] || self.tasks[s].source.is_none() {
                continue;
            }
            if self.tasks[s].status == Status::Dead || self.tasks[s].status == Status::Restoring {
                continue;
            }
            self.resend_buffered_replay(s, logical, cursor, deliver_at, &cone);
        }
    }

    /// Re-sends slot `rt`'s buffered batches `>= cursor` addressed to
    /// `target` (normal replay after checkpoint restore).
    fn resend_buffered(&mut self, rt: Rt, target: TaskIndex, cursor: u64, at: SimTime) {
        let mut sends: Vec<(usize, u64, Arc<Vec<Tuple>>, bool)> = Vec::new();
        {
            let task = &self.tasks[rt];
            for (k, tgt) in task.out_targets.iter().enumerate() {
                if tgt.to != target {
                    continue;
                }
                for (b, tuples, degraded) in task.out_buffer[k].iter() {
                    if *b >= cursor {
                        sends.push((tgt.to_substream, *b, tuples.clone(), *degraded));
                    }
                }
            }
        }
        for (substream, b, tuples, degraded) in sends {
            self.deliver_to_incarnations(target, substream, b, tuples, degraded, None, at);
        }
    }

    /// Storm replay: re-send buffered batches `>= cursor` along every edge
    /// inside the cone (or directly to the target), flagged `replay_for`.
    fn resend_buffered_replay(
        &mut self,
        rt: Rt,
        target: TaskIndex,
        cursor: u64,
        at: SimTime,
        cone: &[bool],
    ) {
        let mut sends: Vec<(TaskIndex, usize, u64, Arc<Vec<Tuple>>)> = Vec::new();
        {
            let task = &self.tasks[rt];
            for (k, tgt) in task.out_targets.iter().enumerate() {
                if tgt.to != target && !cone[tgt.to.0] {
                    continue;
                }
                for (b, tuples, _) in task.out_buffer[k].iter() {
                    if *b >= cursor {
                        sends.push((tgt.to, tgt.to_substream, *b, tuples.clone()));
                    }
                }
            }
        }
        for (to, substream, b, tuples) in sends {
            self.deliver_to_incarnations(to, substream, b, tuples, false, Some(target), at);
        }
    }

    /// Flushes a slot's entire output buffer downstream (dedup makes this
    /// idempotent); used at replica takeover and checkpoint restore.
    fn flush_out_buffer(&mut self, rt: Rt, at: SimTime) {
        let mut sends: Vec<(TaskIndex, usize, u64, Arc<Vec<Tuple>>, bool)> = Vec::new();
        {
            let task = &self.tasks[rt];
            for (k, tgt) in task.out_targets.iter().enumerate() {
                for (b, tuples, degraded) in task.out_buffer[k].iter() {
                    sends.push((tgt.to, tgt.to_substream, *b, tuples.clone(), *degraded));
                }
            }
        }
        for (to, substream, b, tuples, degraded) in sends {
            self.deliver_to_incarnations(to, substream, b, tuples, degraded, None, at);
        }
    }

    fn on_takeover_done(&mut self, logical: usize) {
        let Some(slot) = self.replica_slot[logical] else {
            return;
        };
        if self.tasks[slot].status != Status::Running {
            return; // replica died in the meantime
        }
        let now = self.sched.now();
        self.tasks[slot].outputs_enabled = true;
        self.flush_out_buffer(slot, now + self.config.costs.network_latency);
        // Backfill sink records the muted replica produced after the
        // primary stopped recording.
        let cut = self.tasks[logical].pre_failure_progress.unwrap_or(0);
        let pending = std::mem::take(&mut self.tasks[slot].pending_sink);
        self.sink
            .extend(pending.into_iter().filter(|s| s.batch >= cut));
        if let Some(rec) = self.current_outage_mut(logical) {
            rec.via_replica = true;
        }
        self.mark_recovered(logical, now);
    }

    // ------------------------------------------------------------------
    // Tentative outputs (proxy punctuations)
    // ------------------------------------------------------------------

    fn on_proxy_tick(&mut self) {
        self.sched
            .after(self.config.batch_interval, Event::ProxyTick);
        if !matches!(
            self.config.mode,
            FtMode::Ppa { .. } | FtMode::Approximate { .. }
        ) {
            return;
        }
        let frontier = self.current_batch().saturating_sub(1);
        let at = self.sched.now() + self.config.costs.network_latency;
        for t in 0..self.graph.n_tasks() {
            // Proxy only failed, detected, not-yet-recovered tasks without a
            // live activated replica.
            if self.tasks[t].status == Status::Running {
                continue;
            }
            if let Some(slot) = self.replica_slot[t] {
                if self.tasks[slot].status == Status::Running {
                    continue; // replica continues the stream
                }
            }
            // Proxy the task's *current* outage: a re-failed task (its
            // activated replica died) is proxied again once re-detected,
            // exactly like a first failure.
            let Some(rec) = self.current_outage(t) else {
                continue;
            };
            if !rec.detected() || !rec.open() {
                continue;
            }
            let targets: Vec<(TaskIndex, usize)> = self.tasks[t]
                .out_targets
                .iter()
                .map(|tgt| (tgt.to, tgt.to_substream))
                .collect();
            if !self.proxied[t] && !targets.is_empty() {
                // The first proxy of this outage record: tentative
                // (degraded) output starts flowing downstream.
                self.proxied[t] = true;
                let now = self.sched.now();
                self.note(now, EngineEvent::TentativeResumed { task: t });
            }
            for (to, substream) in targets {
                self.sched.at(
                    at,
                    Event::Deliver {
                        to: to.0,
                        substream,
                        batch: frontier,
                        msg: Msg::Proxy,
                    },
                );
                if let Some(slot) = self.replica_slot[to.0] {
                    self.sched.at(
                        at,
                        Event::Deliver {
                            to: slot,
                            substream,
                            batch: frontier,
                            msg: Msg::Proxy,
                        },
                    );
                }
            }
        }
    }

    /// The most recent batch id whose interval has fully elapsed.
    fn current_batch(&self) -> u64 {
        self.sched.now().as_micros() / self.config.batch_interval.as_micros()
    }

    /// The slot currently acting for a logical task (an activated replica,
    /// or the primary slot otherwise).
    fn active_slot(&self, logical: usize) -> Rt {
        if let Some(slot) = self.replica_slot[logical] {
            if self.tasks[slot].outputs_enabled && self.tasks[slot].status == Status::Running {
                return slot;
            }
        }
        logical
    }
}

/// Helper on `Option<Checkpoint>` to clone its parts without fighting the
/// borrow checker inside `restore_from_checkpoint`.
trait CheckpointParts {
    #[allow(clippy::type_complexity)]
    fn clone_parts(&self)
        -> Option<(u64, Option<Box<dyn Udf>>, Vec<VecDeque<Buffered>>, Vec<u64>)>;
}

impl CheckpointParts for Option<Checkpoint> {
    fn clone_parts(
        &self,
    ) -> Option<(u64, Option<Box<dyn Udf>>, Vec<VecDeque<Buffered>>, Vec<u64>)> {
        self.as_ref().map(|cp| {
            (
                cp.batch,
                cp.udf.as_ref().map(|u| u.snapshot()),
                cp.out_buffer.clone(),
                cp.closed.clone(),
            )
        })
    }
}

impl Clone for Checkpoint {
    fn clone(&self) -> Self {
        Checkpoint {
            batch: self.batch,
            udf: self.udf.as_ref().map(|u| u.snapshot()),
            out_buffer: self.out_buffer.clone(),
            closed: self.closed.clone(),
            state_tuples: self.state_tuples,
        }
    }
}

#[cfg(test)]
mod tests;
