//! End-to-end protocol tests for the simulated cluster: dataflow, batch
//! gating, checkpoint restore, replica takeover, Storm replay, tentative
//! outputs, determinism.

use super::*;
use crate::config::{CostModel, EngineConfig, FtMode};
use crate::placement::Placement;
use crate::query::{Query, QueryBuilder};
use crate::udf::{BatchCtx, CountingSource, InputBatch, Udf, WindowBuffer};
use ppa_core::model::{OperatorSpec, Partitioning};
use ppa_core::TaskSet;
use std::error::Error;

type TestResult = Result<(), Box<dyn Error>>;

/// A stateful pass-through holding a sliding window of its input — the
/// shape of the paper's synthetic operators (state grows with window×rate).
#[derive(Clone)]
struct WindowedPass {
    window_batches: u64,
    buf: WindowBuffer,
}

impl WindowedPass {
    fn new(window_batches: u64) -> Self {
        WindowedPass {
            window_batches,
            buf: WindowBuffer::new(),
        }
    }
}

impl Udf for WindowedPass {
    fn on_batch(&mut self, ctx: &BatchCtx, inputs: &[InputBatch<'_>], out: &mut Vec<Tuple>) {
        let mut all = Vec::new();
        for i in inputs {
            all.extend_from_slice(i.tuples);
        }
        out.extend(all.iter().cloned());
        self.buf.push(ctx.batch, all, self.window_batches);
    }

    fn snapshot(&self) -> Box<dyn Udf> {
        Box::new(self.clone())
    }

    fn state_tuples(&self) -> usize {
        self.buf.len_tuples()
    }
}

/// source(2 tasks) -> mid(2, one-to-one) -> sink(1, merge).
fn chain_query(per_batch: usize, window_batches: u64) -> Result<Query, Box<dyn Error>> {
    let mut q = QueryBuilder::new();
    let s = q.add_source(
        OperatorSpec::source("src", 2, per_batch as f64),
        move |task| {
            Box::new(CountingSource {
                per_batch,
                seed: 1000 + task as u64,
                key_space: 256,
            })
        },
    );
    let m = q.add_operator(OperatorSpec::map("mid", 2, 1.0), move |_| {
        Box::new(WindowedPass::new(window_batches))
    });
    let k = q.add_operator(OperatorSpec::map("sink", 1, 1.0), move |_| {
        Box::new(WindowedPass::new(window_batches))
    });
    q.connect(s, m, Partitioning::OneToOne)?;
    q.connect(m, k, Partitioning::Merge)?;
    Ok(q.build()?)
}

/// source(12) -> mid(12, one-to-one) -> sink(1, merge): twelve identical
/// stateful mids, for aggregate-migration accounting.
fn wide_query(per_batch: usize, window_batches: u64) -> Result<Query, Box<dyn Error>> {
    let mut q = QueryBuilder::new();
    let s = q.add_source(
        OperatorSpec::source("src", 12, per_batch as f64),
        move |task| {
            Box::new(CountingSource {
                per_batch,
                seed: 2000 + task as u64,
                key_space: 256,
            })
        },
    );
    let m = q.add_operator(OperatorSpec::map("mid", 12, 1.0), move |_| {
        Box::new(WindowedPass::new(window_batches))
    });
    let k = q.add_operator(OperatorSpec::map("sink", 1, 1.0), move |_| {
        Box::new(WindowedPass::new(window_batches))
    });
    q.connect(s, m, Partitioning::OneToOne)?;
    q.connect(m, k, Partitioning::Merge)?;
    Ok(q.build()?)
}

fn one_task_per_node(q: &Query) -> Result<Placement, Box<dyn Error>> {
    let graph = ppa_core::model::TaskGraph::new(q.topology().clone());
    let n = graph.n_tasks();
    Ok(Placement::explicit(
        (0..n).collect(),
        (n..2 * n).collect(),
        n,
        n,
    )?)
}

fn base_config(mode: FtMode) -> EngineConfig {
    EngineConfig {
        mode,
        ..EngineConfig::default()
    }
}

/// Node hosting the primary of task `t` under one-task-per-node placement.
fn node_of(t: usize) -> usize {
    t
}

#[test]
fn data_flows_to_the_sink() -> TestResult {
    let q = chain_query(100, 5)?;
    let report = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::None),
        vec![],
        SimDuration::from_secs(10),
    );
    assert!(!report.sink.is_empty());
    // Every sink batch merges both sources via the two mids: 200 tuples.
    for s in &report.sink {
        assert_eq!(s.tuples.len(), 200, "batch {}", s.batch);
        assert!(!s.tentative);
    }
    // Batches are recorded in order without gaps.
    let batches: Vec<u64> = report.sink.iter().map(|s| s.batch).collect();
    let expect: Vec<u64> = (0..batches.len() as u64).collect();
    assert_eq!(batches, expect);
    Ok(())
}

#[test]
fn runs_are_deterministic() -> TestResult {
    let digest = |rep: &RunReport| -> Vec<(u64, usize, bool)> {
        rep.sink
            .iter()
            .map(|s| (s.batch, s.tuples.len(), s.tentative))
            .collect()
    };
    let q = chain_query(50, 5)?;
    let a = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::checkpoint(5, SimDuration::from_secs(5))),
        vec![FailureSpec {
            at: SimTime::from_secs(12),
            nodes: vec![node_of(2)],
        }],
        SimDuration::from_secs(40),
    );
    let q2 = chain_query(50, 5)?;
    let b = Simulation::run(
        &q2,
        one_task_per_node(&q2)?,
        base_config(FtMode::checkpoint(5, SimDuration::from_secs(5))),
        vec![FailureSpec {
            at: SimTime::from_secs(12),
            nodes: vec![node_of(2)],
        }],
        SimDuration::from_secs(40),
    );
    assert_eq!(digest(&a), digest(&b));
    assert_eq!(a.events, b.events);
    Ok(())
}

#[test]
fn checkpoint_recovery_restores_progress() -> TestResult {
    let q = chain_query(100, 10)?;
    // Kill the node hosting mid task 0 (task index 2) at t=14s.
    let report = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::checkpoint(5, SimDuration::from_secs(5))),
        vec![FailureSpec {
            at: SimTime::from_secs(14),
            nodes: vec![node_of(2)],
        }],
        SimDuration::from_secs(60),
    );
    assert_eq!(report.recoveries.len(), 1);
    let r = &report.recoveries[0];
    assert_eq!(r.task, TaskIndex(2));
    assert!(!r.via_replica);
    // Detection on the next 5s heartbeat boundary after the failure.
    assert_eq!(r.detected_at, SimTime::from_secs(15));
    let latency = r.latency().ok_or("must recover within the run")?;
    assert!(latency > SimDuration::ZERO);
    assert!(
        latency < SimDuration::from_secs(30),
        "recovery took {latency} — replay backlog too slow"
    );
    // After full recovery the sink produces complete batches again.
    let recovered_at = r.recovered_at.ok_or("recovered within the run")?;
    let late: Vec<_> = report
        .sink
        .iter()
        .filter(|s| s.at > recovered_at + SimDuration::from_secs(10))
        .collect();
    assert!(!late.is_empty());
    assert!(late.iter().all(|s| s.tuples.len() == 200 && !s.tentative));
    Ok(())
}

#[test]
fn tentative_outputs_flow_during_recovery() -> TestResult {
    let q = chain_query(100, 10)?;
    let report = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::checkpoint(5, SimDuration::from_secs(15))),
        vec![FailureSpec {
            at: SimTime::from_secs(21),
            nodes: vec![node_of(2)],
        }],
        SimDuration::from_secs(80),
    );
    // Between detection and recovery the sink keeps producing, flagged
    // tentative and with only half the data (one mid lost).
    let tentative: Vec<_> = report.sink.iter().filter(|s| s.tentative).collect();
    assert!(
        !tentative.is_empty(),
        "proxy punctuations must unblock the sink"
    );
    for s in &tentative {
        assert_eq!(s.tuples.len(), 100, "half the input is missing");
    }
    // The first tentative output arrives quickly after detection (≪ full
    // recovery — the conclusion's headline effect).
    let detected = report.recoveries[0].detected_at;
    let first_tentative = report
        .first_tentative_after(detected)
        .ok_or("tentative output after detection")?;
    let recovered = report.recoveries[0]
        .recovered_at
        .ok_or("recovered within the run")?;
    assert!(first_tentative < recovered);
    assert!(first_tentative.since(detected) < SimDuration::from_secs(3));
    Ok(())
}

#[test]
fn no_tentative_outputs_when_disabled() -> TestResult {
    let q = chain_query(100, 10)?;
    let mut config = base_config(FtMode::checkpoint(5, SimDuration::from_secs(15)));
    config.tentative_outputs = false;
    let report = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        config,
        vec![FailureSpec {
            at: SimTime::from_secs(21),
            nodes: vec![node_of(2)],
        }],
        SimDuration::from_secs(80),
    );
    assert!(report.sink.iter().all(|s| !s.tentative));
    // The sink simply stalls until the mid recovers, then catches up with
    // complete batches.
    assert!(report.sink.iter().all(|s| s.tuples.len() == 200));
    Ok(())
}

#[test]
fn replica_takeover_is_fast() -> TestResult {
    let q = chain_query(100, 10)?;
    let n = 5;
    let report = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::active(n)),
        vec![FailureSpec {
            at: SimTime::from_secs(14),
            nodes: vec![node_of(2)],
        }],
        SimDuration::from_secs(40),
    );
    let r = &report.recoveries[0];
    assert!(r.via_replica);
    let active_latency = r.latency().ok_or("takeover completes")?;
    assert!(
        active_latency < SimDuration::from_secs(1),
        "takeover should be near-instant, got {active_latency}"
    );
    // The sink never misses a batch: the replica backfills.
    let batches: Vec<u64> = {
        let mut b: Vec<u64> = report.sink.iter().map(|s| s.batch).collect();
        b.sort_unstable();
        b.dedup();
        b
    };
    let last = batches.last().copied().ok_or("sink produced batches")?;
    let expect: Vec<u64> = (0..last + 1).collect();
    assert_eq!(batches, expect, "no sink gaps across the takeover");
    Ok(())
}

#[test]
fn active_beats_checkpoint_on_latency() -> TestResult {
    let q = chain_query(100, 10)?;
    let active = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::active(5)),
        vec![FailureSpec {
            at: SimTime::from_secs(14),
            nodes: vec![node_of(2)],
        }],
        SimDuration::from_secs(60),
    );
    let q2 = chain_query(100, 10)?;
    let passive = Simulation::run(
        &q2,
        one_task_per_node(&q2)?,
        base_config(FtMode::checkpoint(5, SimDuration::from_secs(15))),
        vec![FailureSpec {
            at: SimTime::from_secs(14),
            nodes: vec![node_of(2)],
        }],
        SimDuration::from_secs(60),
    );
    let a = active.recoveries[0].latency().ok_or("active recovers")?;
    let p = passive.recoveries[0].latency().ok_or("passive recovers")?;
    assert!(a < p, "active {a} must beat passive {p}");
    Ok(())
}

#[test]
fn longer_checkpoint_interval_slows_recovery() -> TestResult {
    let lat = |interval: u64| -> Result<SimDuration, Box<dyn Error>> {
        let q = chain_query(100, 10)?;
        let rep = Simulation::run(
            &q,
            one_task_per_node(&q)?,
            base_config(FtMode::checkpoint(5, SimDuration::from_secs(interval))),
            vec![FailureSpec {
                at: SimTime::from_secs(33),
                nodes: vec![node_of(2)],
            }],
            SimDuration::from_secs(120),
        );
        Ok(rep.recoveries[0].latency().ok_or("recovers")?)
    };
    let fast = lat(5)?;
    let slow = lat(30)?;
    assert!(
        slow > fast,
        "30s checkpoints ({slow}) must recover slower than 5s ({fast})"
    );
    Ok(())
}

#[test]
fn checkpoint_cpu_ratio_grows_with_frequency() -> TestResult {
    let ratio = |interval: u64| -> Result<f64, Box<dyn Error>> {
        let q = chain_query(200, 20)?;
        let rep = Simulation::run(
            &q,
            one_task_per_node(&q)?,
            base_config(FtMode::checkpoint(5, SimDuration::from_secs(interval))),
            vec![],
            SimDuration::from_secs(60),
        );
        // Mid task 0 (task 2) is a stateful windowed op.
        Ok(rep.cpu[2].checkpoint_ratio())
    };
    let frequent = ratio(1)?;
    let rare = ratio(15)?;
    assert!(
        frequent > rare,
        "1s interval ({frequent}) must cost more than 15s ({rare})"
    );
    assert!(frequent > 0.0 && rare > 0.0);
    Ok(())
}

#[test]
fn storm_source_replay_recovers() -> TestResult {
    let q = chain_query(100, 8)?;
    let report = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::SourceReplay {
            buffer: SimDuration::from_secs(10),
        }),
        vec![FailureSpec {
            at: SimTime::from_secs(22),
            nodes: vec![node_of(2)],
        }],
        SimDuration::from_secs(80),
    );
    let r = &report.recoveries[0];
    assert!(r.recovered_at.is_some(), "storm replay must complete");
    assert!(!r.via_replica);
    // After recovery the sink is whole again.
    let recovered = r.recovered_at.ok_or("storm replay completes")?;
    let late: Vec<_> = report
        .sink
        .iter()
        .filter(|s| s.at > recovered + SimDuration::from_secs(10))
        .collect();
    assert!(!late.is_empty());
    assert!(late.iter().all(|s| s.tuples.len() == 200));
    Ok(())
}

#[test]
fn storm_replay_reaches_deep_tasks_through_hops() -> TestResult {
    // Kill the sink: replay must cascade source -> mid -> sink.
    let q = chain_query(100, 8)?;
    let report = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::SourceReplay {
            buffer: SimDuration::from_secs(10),
        }),
        vec![FailureSpec {
            at: SimTime::from_secs(22),
            nodes: vec![node_of(4)],
        }],
        SimDuration::from_secs(80),
    );
    let r = &report.recoveries[0];
    assert_eq!(r.task, TaskIndex(4));
    assert!(
        r.recovered_at.is_some(),
        "deep task must recover via hop forwarding"
    );
    Ok(())
}

#[test]
fn correlated_failure_recovers_all_tasks() -> TestResult {
    let q = chain_query(100, 10)?;
    // Kill all three non-source nodes simultaneously.
    let report = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::checkpoint(5, SimDuration::from_secs(5))),
        vec![FailureSpec {
            at: SimTime::from_secs(14),
            nodes: vec![node_of(2), node_of(3), node_of(4)],
        }],
        SimDuration::from_secs(120),
    );
    assert_eq!(report.recoveries.len(), 3);
    for r in &report.recoveries {
        assert!(r.recovered_at.is_some(), "task {:?} stuck", r.task);
    }
    // Downstream recovery is gated by upstream regeneration: the sink's
    // completion can be no earlier than its upstream mid's.
    let rec_of = |t: usize| -> Result<SimTime, Box<dyn Error>> {
        report
            .recoveries
            .iter()
            .find(|r| r.task == TaskIndex(t))
            .and_then(|r| r.recovered_at)
            .ok_or_else(|| format!("task {t} did not recover").into())
    };
    assert!(rec_of(4)? >= rec_of(2)?.min(rec_of(3)?));
    Ok(())
}

#[test]
fn correlated_recovery_is_slower_than_single() -> TestResult {
    let single = {
        let q = chain_query(100, 10)?;
        Simulation::run(
            &q,
            one_task_per_node(&q)?,
            base_config(FtMode::checkpoint(5, SimDuration::from_secs(15))),
            vec![FailureSpec {
                at: SimTime::from_secs(33),
                nodes: vec![node_of(2)],
            }],
            SimDuration::from_secs(150),
        )
    };
    let correlated = {
        let q = chain_query(100, 10)?;
        Simulation::run(
            &q,
            one_task_per_node(&q)?,
            base_config(FtMode::checkpoint(5, SimDuration::from_secs(15))),
            vec![FailureSpec {
                at: SimTime::from_secs(33),
                nodes: vec![node_of(2), node_of(3), node_of(4)],
            }],
            SimDuration::from_secs(150),
        )
    };
    let s = single.mean_recovery_latency().ok_or("single recovers")?;
    let c = correlated
        .mean_recovery_latency()
        .ok_or("correlated recovers")?;
    assert!(c > s, "correlated ({c}) must exceed single ({s})");
    Ok(())
}

#[test]
fn partial_plan_recovers_replicated_tasks_first() -> TestResult {
    let q = chain_query(100, 10)?;
    // Replicate the sink-side MC-tree: source 0, mid 0, sink.
    let plan = TaskSet::from_tasks(5, [TaskIndex(0), TaskIndex(2), TaskIndex(4)]);
    let report = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::ppa(plan, SimDuration::from_secs(15))),
        vec![FailureSpec {
            at: SimTime::from_secs(33),
            nodes: vec![node_of(2), node_of(3), node_of(4)],
        }],
        SimDuration::from_secs(150),
    );
    let by_task = |t: usize| report.recoveries.iter().find(|r| r.task == TaskIndex(t));
    let (mid0, mid1, sink) = (
        by_task(2).ok_or("task 2 record")?,
        by_task(3).ok_or("task 3 record")?,
        by_task(4).ok_or("task 4 record")?,
    );
    assert!(mid0.via_replica);
    assert!(sink.via_replica);
    assert!(!mid1.via_replica);
    assert!(mid0.latency().ok_or("task 2 recovers")? < mid1.latency().ok_or("task 3 recovers")?);
    // Tentative outputs during mid-1's passive recovery carry only the
    // replicated half.
    let tentative: Vec<_> = report.sink.iter().filter(|s| s.tentative).collect();
    assert!(!tentative.is_empty());
    assert!(tentative.iter().all(|s| s.tuples.len() == 100));
    Ok(())
}

#[test]
fn failed_source_recovers_by_regeneration() -> TestResult {
    let q = chain_query(100, 10)?;
    let report = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::checkpoint(5, SimDuration::from_secs(5))),
        vec![FailureSpec {
            at: SimTime::from_secs(14),
            nodes: vec![node_of(0)],
        }],
        SimDuration::from_secs(60),
    );
    let r = &report.recoveries[0];
    assert_eq!(r.task, TaskIndex(0));
    assert!(r.recovered_at.is_some());
    // Sink is whole again at the end.
    let last = report.sink.last().ok_or("sink produced output")?;
    assert_eq!(last.tuples.len(), 200);
    Ok(())
}

#[test]
fn cost_model_sanity_under_load() -> TestResult {
    // Even at 2000 tuples/s per source the pipeline keeps up: sink batch b
    // arrives within a few batch intervals of (b+1)·B.
    let q = chain_query(2000, 10)?;
    let report = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::checkpoint(5, SimDuration::from_secs(5))),
        vec![],
        SimDuration::from_secs(30),
    );
    for s in &report.sink {
        let deadline = SimTime::from_secs(s.batch + 4);
        assert!(
            s.at <= deadline,
            "batch {} emitted at {} — pipeline cannot keep up",
            s.batch,
            s.at
        );
    }
    let _ = CostModel::default();
    Ok(())
}

#[test]
fn delta_checkpoints_cut_checkpoint_cpu() -> TestResult {
    let ratio = |delta: bool| -> Result<f64, Box<dyn Error>> {
        let q = chain_query(400, 30)?; // long window: big full-state snapshots
        let mut config = base_config(FtMode::checkpoint(5, SimDuration::from_secs(1)));
        config.costs.delta_checkpoints = delta;
        let rep = Simulation::run(
            &q,
            one_task_per_node(&q)?,
            config,
            vec![],
            SimDuration::from_secs(60),
        );
        Ok(rep.cpu[2].checkpoint_ratio())
    };
    let full = ratio(false)?;
    let delta = ratio(true)?;
    assert!(
        delta < full * 0.5,
        "delta checkpoints must slash the 1s-interval cost: {delta} vs {full}"
    );
    assert!(delta > 0.0);
    Ok(())
}

#[test]
fn trace_replay_matches_spec_injection() -> TestResult {
    // Replaying a FailureTrace through inject_trace must be observably
    // identical to injecting the equivalent FailureSpecs by hand — the
    // degenerate-trace refactor of the §VI-A experiments rests on this.
    let digest = |rep: &RunReport| {
        (
            rep.events,
            rep.sink
                .iter()
                .map(|s| (s.batch, s.tuples.len(), s.tentative))
                .collect::<Vec<_>>(),
            rep.recoveries
                .iter()
                .map(|r| (r.task, r.detected_at, r.recovered_at))
                .collect::<Vec<_>>(),
        )
    };
    let q = chain_query(100, 5)?;
    let mode = || FtMode::Ppa {
        plan: TaskSet::empty(5),
        checkpoint_interval: Some(SimDuration::from_secs(5)),
    };
    let specs = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        base_config(mode()),
        vec![
            FailureSpec {
                at: SimTime::from_secs(14),
                nodes: vec![node_of(2)],
            },
            FailureSpec {
                at: SimTime::from_secs(20),
                nodes: vec![node_of(3)],
            },
        ],
        SimDuration::from_secs(60),
    );
    let mut trace = FailureTrace::new();
    trace.push(SimTime::from_secs(20), vec![node_of(3)]);
    trace.push(SimTime::from_secs(14), vec![node_of(2)]);
    let traced = Simulation::run_trace(
        &q,
        one_task_per_node(&q)?,
        base_config(mode()),
        &trace,
        SimDuration::from_secs(60),
    );
    assert_eq!(digest(&specs), digest(&traced));
    Ok(())
}

#[test]
fn domain_injection_matches_expanded_kill_set() -> TestResult {
    // Killing a fault domain through the placement's node → domain mapping
    // must be observably identical to injecting the expanded node list by
    // hand — `inject_domain` is sugar over the mapping, not a new path.
    let digest = |rep: &RunReport| {
        (
            rep.events,
            rep.sink
                .iter()
                .map(|s| (s.batch, s.tuples.len(), s.tentative))
                .collect::<Vec<_>>(),
            rep.recoveries
                .iter()
                .map(|r| (r.task, r.detected_at, r.recovered_at))
                .collect::<Vec<_>>(),
        )
    };
    let q = chain_query(100, 5)?;
    let mode = || FtMode::Ppa {
        plan: TaskSet::empty(5),
        checkpoint_interval: Some(SimDuration::from_secs(5)),
    };
    // Racks of 2 over all 10 nodes; the rack holding nodes 2-3 hosts the
    // primaries of tasks 2 and 3.
    let placed = || -> Result<Placement, Box<dyn Error>> {
        Ok(
            one_task_per_node(&q)?.with_fault_domains(ppa_faults::FaultDomainTree::racks(
                &(0..10).collect::<Vec<_>>(),
                2,
            ))?,
        )
    };
    let expanded = Simulation::run(
        &q,
        placed()?,
        base_config(mode()),
        vec![FailureSpec {
            at: SimTime::from_secs(14),
            nodes: vec![node_of(2), node_of(3)],
        }],
        SimDuration::from_secs(60),
    );
    let mut sim = Simulation::new(&q, placed()?, base_config(mode()));
    let rack = sim
        .placement()
        .domain_of(node_of(2))
        .ok_or("node 2 is in a rack")?;
    sim.inject_domain(SimTime::from_secs(14), rack)?;
    let by_domain = sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    assert_eq!(digest(&expanded), digest(&by_domain));

    // Without a domain mapping the call surfaces the typed error.
    let mut bare = Simulation::new(&q, one_task_per_node(&q)?, base_config(mode()));
    assert!(matches!(
        bare.inject_domain(SimTime::from_secs(14), rack),
        Err(crate::error::EngineError::Placement(
            crate::placement::PlacementError::NoFaultDomains
        ))
    ));
    Ok(())
}

/// Full observable digest of a run (sink payloads included) for
/// byte-identity assertions.
fn full_digest(rep: &RunReport) -> (u64, Vec<(u64, Vec<Tuple>, bool)>, Vec<(TaskIndex, SimTime)>) {
    (
        rep.events,
        rep.sink
            .iter()
            .map(|s| (s.batch, s.tuples.clone(), s.tentative))
            .collect(),
        rep.recoveries
            .iter()
            .map(|r| (r.task, r.detected_at))
            .collect(),
    )
}

#[test]
fn drive_with_static_policy_matches_legacy_run() -> TestResult {
    let q = chain_query(100, 5)?;
    let failures = vec![FailureSpec {
        at: SimTime::from_secs(14),
        nodes: vec![node_of(2), node_of(3)],
    }];
    let legacy = {
        // The historical `run` body: inject specs, run the plain loop.
        let mut sim = Simulation::new(
            &q,
            one_task_per_node(&q)?,
            base_config(FtMode::checkpoint(5, SimDuration::from_secs(5))),
        );
        for f in failures.clone() {
            sim.inject(f)?;
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(60))
    };
    let mut sim = Simulation::new(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::checkpoint(5, SimDuration::from_secs(5))),
    );
    let driven = sim.drive(
        &FaultFeed::from_specs(failures),
        &mut crate::control::StaticPolicy,
        SimTime::from_secs(60),
    )?;
    assert_eq!(full_digest(&legacy), full_digest(&driven.report));
    assert!(driven.actions.is_empty(), "static policy never acts");
    assert!(driven.control_cpu.is_zero());
    assert_eq!(driven.trace.killed_nodes(), vec![node_of(2), node_of(3)]);
    Ok(())
}

#[test]
fn drive_feed_unifies_domains_and_specs() -> TestResult {
    // A feed mixing a domain entry and a spec entry must behave exactly
    // like the pre-expanded spec list.
    let q = chain_query(100, 5)?;
    let tree = || ppa_faults::FaultDomainTree::racks(&(0..10).collect::<Vec<_>>(), 2);
    let placed = || -> Result<Placement, Box<dyn Error>> {
        Ok(one_task_per_node(&q)?.with_fault_domains(tree())?)
    };
    let mode = || FtMode::checkpoint(5, SimDuration::from_secs(5));
    let expanded = Simulation::run(
        &q,
        placed()?,
        base_config(mode()),
        vec![
            FailureSpec {
                at: SimTime::from_secs(14),
                nodes: vec![2, 3],
            },
            FailureSpec {
                at: SimTime::from_secs(20),
                nodes: vec![4],
            },
        ],
        SimDuration::from_secs(60),
    );
    let mut sim = Simulation::new(&q, placed()?, base_config(mode()));
    let rack = sim.placement().domain_of(2).ok_or("node 2 is in a rack")?;
    let feed = FaultFeed::new()
        .with_domain(SimTime::from_secs(14), rack)
        .with_spec(FailureSpec {
            at: SimTime::from_secs(20),
            nodes: vec![4],
        });
    let driven = sim.drive(
        &feed,
        &mut crate::control::StaticPolicy,
        SimTime::from_secs(60),
    )?;
    assert_eq!(full_digest(&expanded), full_digest(&driven.report));
    Ok(())
}

#[test]
fn inject_rejects_malformed_specs_with_typed_errors() -> TestResult {
    let q = chain_query(50, 5)?;
    let mut sim = Simulation::new(&q, one_task_per_node(&q)?, base_config(FtMode::None));
    assert_eq!(
        sim.inject(FailureSpec {
            at: SimTime::from_secs(5),
            nodes: vec![0, 99],
        })
        .unwrap_err(),
        crate::error::EngineError::NodeOutOfRange {
            node: 99,
            n_nodes: 10
        }
    );
    // Advance time, then try to rewrite history.
    let _ = sim.run_until(SimTime::from_secs(10));
    assert_eq!(
        sim.inject(FailureSpec {
            at: SimTime::from_secs(5),
            nodes: vec![0],
        })
        .unwrap_err(),
        crate::error::EngineError::EventInPast {
            at: SimTime::from_secs(5),
            now: SimTime::from_secs(10),
        }
    );
    // A valid late injection still works.
    sim.inject(FailureSpec {
        at: SimTime::from_secs(15),
        nodes: vec![0],
    })?;
    Ok(())
}

#[test]
fn replan_reestablishes_replicas_lost_with_their_standbys() -> TestResult {
    // Task 2's primary (node 2) and its replica's standby (node 7) share
    // a fault domain that dies as one unit. With passive recovery held
    // down, a static run loses the task for good; a DomainHealthPolicy
    // re-homes the standby off the dead domain and re-plans, which
    // re-establishes the replica from the checkpoint and lets the task
    // take over late.
    let tree = || {
        let mut t = ppa_faults::FaultDomainTree::new(&["cluster", "unit"]);
        let a = t.add_domain(t.root());
        t.assign(a, 2);
        t.assign(a, 7);
        let b = t.add_domain(t.root());
        for n in [0, 1, 3, 4, 5, 6, 8, 9] {
            t.assign(b, n);
        }
        t
    };
    let q = chain_query(100, 5)?;
    let placed = || -> Result<Placement, Box<dyn Error>> {
        Ok(one_task_per_node(&q)?.with_fault_domains(tree())?)
    };
    let config = || {
        let mut c = base_config(FtMode::Ppa {
            plan: TaskSet::full(5),
            checkpoint_interval: Some(SimDuration::from_secs(5)),
        });
        c.passive_recovery = false;
        c
    };
    let feed = || {
        FaultFeed::from_specs(vec![FailureSpec {
            at: SimTime::from_secs(20),
            nodes: vec![2, 7],
        }])
    };
    let until = SimTime::from_secs(80);

    let mut static_sim = Simulation::new(&q, placed()?, config());
    let static_run = static_sim.drive(&feed(), &mut crate::control::StaticPolicy, until)?;
    let rec_of = |rep: &RunReport, t: usize| {
        rep.recoveries
            .iter()
            .find(|r| r.task == TaskIndex(t))
            .cloned()
    };
    assert!(
        rec_of(&static_run.report, 2)
            .ok_or("recovery record")?
            .recovered_at
            .is_none(),
        "static: task 2 lost primary + replica and passive recovery is off"
    );

    let mut adaptive_sim = Simulation::new(&q, placed()?, config());
    let mut policy = crate::control::DomainHealthPolicy::new(Some(5));
    policy.migrate_radius = 0; // the only sibling is "everything else"
    let adaptive_run = adaptive_sim.drive(&feed(), &mut policy, until)?;
    let r = rec_of(&adaptive_run.report, 2).ok_or("recovery record")?;
    assert!(
        r.recovered_at.is_some(),
        "adaptive: re-established replica must take over: {r:?}"
    );
    assert!(r.via_replica);
    assert!(
        adaptive_run.tasks_migrated() >= 1,
        "the standby must have been re-homed: {:?}",
        adaptive_run.actions
    );
    assert!(
        adaptive_run.replicas_activated() >= 1,
        "the replica must have been re-established: {:?}",
        adaptive_run.actions
    );
    assert!(!adaptive_run.control_cpu.is_zero());
    // The re-homed standby is visible through the live placement.
    assert_ne!(adaptive_sim.placement().standby[2], 7);
    Ok(())
}

#[test]
fn migration_evacuates_live_primaries_before_the_next_ring() -> TestResult {
    // 8 workers + 8 standbys in racks of 2; the 5 tasks sit on nodes
    // 0..5 with workers 5..8 free. Rack {2,3} dies at t=20. A policy
    // with migrate_radius 1 evacuates the neighbouring racks {0,1} and
    // {4,5} immediately — so when rack {4,5} dies 4 s later, the sink
    // task (node 4) has already moved and keeps running.
    let q = chain_query(100, 5)?;
    let placed = || -> Result<Placement, Box<dyn Error>> {
        Ok(
            Placement::explicit((0..5).collect(), (8..13).collect(), 8, 8)?.with_fault_domains(
                ppa_faults::FaultDomainTree::racks(&(0..16).collect::<Vec<_>>(), 2),
            )?,
        )
    };
    let config = || {
        let mut c = base_config(FtMode::checkpoint(5, SimDuration::from_secs(5)));
        c.passive_recovery = false;
        c
    };
    let feed = || {
        FaultFeed::new()
            .with_spec(FailureSpec {
                at: SimTime::from_secs(20),
                nodes: vec![2, 3],
            })
            .with_spec(FailureSpec {
                at: SimTime::from_secs(24),
                nodes: vec![4, 5],
            })
    };
    let until = SimTime::from_secs(60);

    let mut static_sim = Simulation::new(&q, placed()?, config());
    let static_run = static_sim.drive(&feed(), &mut crate::control::StaticPolicy, until)?;
    // Static: the sink (task 4, node 4) dies in the second ring and the
    // run records its failure.
    assert!(static_run
        .report
        .recoveries
        .iter()
        .any(|r| r.task == TaskIndex(4)));

    let mut adaptive_sim = Simulation::new(&q, placed()?, config());
    let mut policy = crate::control::DomainHealthPolicy::new(None);
    let adaptive_run = adaptive_sim.drive(&feed(), &mut policy, until)?;
    assert!(
        adaptive_run
            .report
            .recoveries
            .iter()
            .all(|r| r.task != TaskIndex(4)),
        "sink must have been evacuated before its rack died: {:?}",
        adaptive_run.report.recoveries
    );
    assert!(adaptive_run.tasks_migrated() >= 1);
    assert_ne!(adaptive_sim.placement().primary[4], 4, "sink moved");
    Ok(())
}

#[test]
fn source_generator_is_reclaimed_from_a_dead_replica_slot() -> TestResult {
    // A control-plane-activated source replica consumes the task's spare
    // generator. If that replica's node later dies, re-activation must
    // reclaim the generator from the dead slot — otherwise the source
    // could never be replicated again for the rest of the run.
    let q = chain_query(50, 5)?;
    let mut config = base_config(FtMode::ppa(TaskSet::empty(5), SimDuration::from_secs(5)));
    config.passive_recovery = false;
    let mut sim = Simulation::new(&q, one_task_per_node(&q)?, config);
    let mut cpu = SimDuration::ZERO;
    let _ = sim.run_until(SimTime::from_secs(10));
    assert!(
        sim.activate_replica(0, sim.sched.now(), &mut cpu),
        "first activation uses the spare generator"
    );
    // Kill the replica's standby node (node 5 under one-task-per-node).
    sim.inject(FailureSpec {
        at: SimTime::from_secs(12),
        nodes: vec![5],
    })?;
    let _ = sim.run_until(SimTime::from_secs(20));
    // Re-home the standby and re-activate: the generator must come back
    // out of the dead slot.
    sim.placement.standby[0] = 6;
    assert!(
        sim.activate_replica(0, sim.sched.now(), &mut cpu),
        "re-activation reclaims the generator trapped in the dead slot"
    );
    // The re-established replica carries the task through a primary kill.
    sim.inject(FailureSpec {
        at: SimTime::from_secs(25),
        nodes: vec![node_of(0)],
    })?;
    let report = sim.run_until(SimTime::from_secs(60));
    let r = report
        .recoveries
        .iter()
        .find(|r| r.task == TaskIndex(0))
        .ok_or("source failure recorded")?;
    assert!(r.via_replica, "{r:?}");
    assert!(r.recovered_at.is_some(), "{r:?}");
    Ok(())
}

/// Policy that orders one whole-domain evacuation at its first epoch.
struct EvacuateOnce {
    domain: ppa_faults::DomainId,
    fired: bool,
}

impl crate::control::ControlPolicy for EvacuateOnce {
    fn name(&self) -> &'static str {
        "evacuate-once"
    }

    fn epoch_interval(&self) -> Option<SimDuration> {
        Some(SimDuration::from_secs(20))
    }

    fn on_epoch(
        &mut self,
        _view: &crate::control::HealthView<'_>,
    ) -> Vec<crate::control::ControlAction> {
        if self.fired {
            return Vec::new();
        }
        self.fired = true;
        vec![crate::control::ControlAction::MigrateTasks {
            domains: vec![self.domain],
        }]
    }
}

#[test]
fn whole_domain_evacuation_charges_unbounded_aggregate_state_ship() -> TestResult {
    // Executable expectation for the ROADMAP's migration-admission-control
    // follow-on: when a whole 12-node domain evacuates in one epoch, the
    // engine charges the aggregate state-ship CPU of every hosted task in
    // that same epoch — exactly 6x the 2-node evacuation of the identical
    // layout. Nothing bounds the per-epoch total today; an admission
    // control would cap it and spread the excess across epochs (flipping
    // the equality below into a `<`).
    let evacuate = |rack_size: usize| -> Result<crate::control::DriveReport, Box<dyn Error>> {
        let q = wide_query(100, 5)?;
        let n = 25;
        // Sources on nodes 12..24, the twelve mids on nodes 0..12 (the
        // domain under test), sink on node 24; standbys one per task.
        let primary: Vec<usize> = (0..n)
            .map(|t| match t {
                t if t < 12 => 12 + t,
                t if t < 24 => t - 12,
                _ => 24,
            })
            .collect();
        let standby: Vec<usize> = (0..n).map(|t| 25 + t).collect();
        let placement = Placement::explicit(primary, standby, 25, 25)?.with_fault_domains(
            ppa_faults::FaultDomainTree::racks(&(0..12).collect::<Vec<_>>(), rack_size),
        )?;
        let mut sim = Simulation::new(
            &q,
            placement,
            base_config(FtMode::checkpoint(n, SimDuration::from_secs(5))),
        );
        let domain = sim.placement().domain_of(0).ok_or("node 0 is in a rack")?;
        let mut policy = EvacuateOnce {
            domain,
            fired: false,
        };
        Ok(sim.drive(&FaultFeed::new(), &mut policy, SimTime::from_secs(40))?)
    };
    let whole = evacuate(12)?;
    let pair = evacuate(2)?;
    assert_eq!(whole.tasks_migrated(), 12, "{:?}", whole.actions);
    assert_eq!(pair.tasks_migrated(), 2, "{:?}", pair.actions);
    // Identical mids evacuated at the same epoch: the aggregate CPU is
    // exactly linear in the domain size — unbounded by anything.
    assert_eq!(
        whole.control_cpu.as_micros(),
        6 * pair.control_cpu.as_micros(),
        "whole {} vs pair {}",
        whole.control_cpu,
        pair.control_cpu
    );
    // And every move shipped real window state on top of its overhead.
    let floor = EngineConfig::default().costs.batch_overhead.as_micros() * 12;
    assert!(
        whole.control_cpu.as_micros() > floor,
        "12 moves must ship state beyond {floor}µs of overhead, got {}",
        whole.control_cpu
    );
    Ok(())
}

#[test]
fn replica_death_after_takeover_opens_second_outage() -> TestResult {
    // Kill a primary, let its replica take over, then kill the replica's
    // node: the task must re-enter the outage path with a second
    // OutageRecord — re-detection, re-proxying, and a fresh recovery via
    // checkpoint fallback — instead of silently counting as recovered.
    let q = chain_query(100, 10)?;
    let mut sim = Simulation::new(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::Ppa {
            plan: TaskSet::full(5),
            checkpoint_interval: Some(SimDuration::from_secs(5)),
        }),
    );
    // Task 2's primary is on node 2; its replica on standby node 7.
    sim.inject(FailureSpec {
        at: SimTime::from_secs(14),
        nodes: vec![node_of(2)],
    })?;
    sim.inject(FailureSpec {
        at: SimTime::from_secs(31),
        nodes: vec![7],
    })?;
    let report = sim.run_until(SimTime::from_secs(90));

    let outages = report.outages_of(TaskIndex(2));
    assert_eq!(outages.len(), 2, "two distinct outages: {outages:?}");
    assert_eq!(report.refail_count(), 1);
    let (first, second) = (&outages[0], &outages[1]);
    // First outage: replica takeover, near-instant.
    assert!(first.via_replica);
    assert_eq!(first.failed_at, SimTime::from_secs(14));
    assert_eq!(first.detected_at, SimTime::from_secs(15));
    let first_latency = first.latency().ok_or("first outage recovered")?;
    // Second outage: the activated replica died — checkpoint fallback.
    assert!(
        !second.via_replica,
        "replica died; passive path: {second:?}"
    );
    assert_eq!(second.failed_at, SimTime::from_secs(31));
    assert_eq!(second.detected_at, SimTime::from_secs(35));
    let second_latency = second.latency().ok_or("second outage recovered")?;
    assert_ne!(
        first_latency, second_latency,
        "each outage carries its own recovery latency"
    );
    assert!(
        second_latency > first_latency,
        "checkpoint replay ({second_latency}) must be slower than takeover \
         ({first_latency})"
    );
    // Per-record ordering invariant.
    for rec in outages {
        assert!(rec.failed_at <= rec.detected_at);
        assert!(rec.recovered_at.ok_or("outage recovered")? >= rec.detected_at);
    }
    // The backward-compatible view exposes exactly the FIRST outage.
    let r = report
        .recoveries
        .iter()
        .find(|r| r.task == TaskIndex(2))
        .ok_or("task 2 recovery record")?;
    assert_eq!(r.detected_at, first.detected_at);
    assert_eq!(r.recovered_at, first.recovered_at);
    assert!(r.via_replica);

    // During the second outage the sink keeps producing degraded output:
    // half the volume (mid 2 lost again), flagged tentative — the lost
    // share is honestly missing, not papered over by a stalled sink.
    let second_recovered = second.recovered_at.ok_or("second outage recovered")?;
    let tentative: Vec<_> = report
        .sink
        .iter()
        .filter(|s| s.tentative && s.at >= second.detected_at && s.at <= second_recovered)
        .collect();
    assert!(
        !tentative.is_empty(),
        "re-detected task must be re-proxied: tentative output flows again"
    );
    assert!(tentative.iter().all(|s| s.tuples.len() == 100));
    assert_eq!(
        report
            .first_tentative_after(second.detected_at)
            .ok_or("tentative output after re-detection")?,
        tentative[0].at
    );
    assert!(tentative[0].at < second_recovered);
    Ok(())
}

#[test]
fn refailed_task_recovers_via_reestablished_replica() -> TestResult {
    // The control-plane variant of the second recovery: passive recovery
    // held down, so a re-failed task comes back only if the policy
    // re-homes its dead standby and re-establishes the replica.
    let q = chain_query(100, 5)?;
    // Every node is its own rack, so the policy reacts to exactly the
    // failed node's domain.
    let placed = || -> Result<Placement, Box<dyn Error>> {
        Ok(
            one_task_per_node(&q)?.with_fault_domains(ppa_faults::FaultDomainTree::racks(
                &(0..10).collect::<Vec<_>>(),
                1,
            ))?,
        )
    };
    let config = || {
        let mut c = base_config(FtMode::Ppa {
            plan: TaskSet::full(5),
            checkpoint_interval: Some(SimDuration::from_secs(5)),
        });
        c.passive_recovery = false;
        c
    };
    let feed = || {
        FaultFeed::new()
            .with_spec(FailureSpec {
                at: SimTime::from_secs(20),
                nodes: vec![node_of(2)],
            })
            .with_spec(FailureSpec {
                at: SimTime::from_secs(40),
                nodes: vec![7], // the activated replica's node
            })
    };
    let until = SimTime::from_secs(90);

    // Static: the second outage stays open — honest, not papered over.
    let mut static_sim = Simulation::new(&q, placed()?, config());
    let static_run = static_sim.drive(&feed(), &mut crate::control::StaticPolicy, until)?;
    let outages = static_run.report.outages_of(TaskIndex(2));
    assert_eq!(outages.len(), 2, "{outages:?}");
    assert!(outages[0].via_replica && !outages[0].open());
    assert!(
        outages[1].open(),
        "static + no passive recovery: the re-failure stays down: {outages:?}"
    );
    assert!(outages[1].detected(), "but it IS re-detected");
    assert_eq!(
        static_sim.lifecycles()[2],
        crate::report::Lifecycle::ReFailed
    );

    // Domain-health: re-home the dead standby, re-establish the replica,
    // close the second outage via a late takeover.
    let mut adaptive_sim = Simulation::new(&q, placed()?, config());
    let mut policy = crate::control::DomainHealthPolicy::new(Some(5));
    policy.migrate_radius = 0;
    let adaptive_run = adaptive_sim.drive(&feed(), &mut policy, until)?;
    let outages = adaptive_run.report.outages_of(TaskIndex(2));
    assert_eq!(outages.len(), 2, "{outages:?}");
    let second = &outages[1];
    assert!(
        second.recovered_at.is_some(),
        "re-established replica must close the second outage: {second:?}"
    );
    assert!(second.via_replica, "{second:?}");
    assert_ne!(adaptive_sim.placement().standby[2], 7, "standby re-homed");
    assert!(adaptive_run.replicas_activated() >= 1);
    assert_eq!(
        adaptive_sim.lifecycles()[2],
        crate::report::Lifecycle::Recovered
    );
    Ok(())
}

#[test]
fn inject_rejects_nodes_already_dead() -> TestResult {
    // After an activated replica dies on node 7, injecting another
    // failure naming node 7 used to short-circuit silently at fire time;
    // it now surfaces the typed error at injection time.
    let q = chain_query(50, 5)?;
    let mut sim = Simulation::new(&q, one_task_per_node(&q)?, base_config(FtMode::active(5)));
    sim.inject(FailureSpec {
        at: SimTime::from_secs(10),
        nodes: vec![node_of(2)],
    })?;
    sim.inject(FailureSpec {
        at: SimTime::from_secs(20),
        nodes: vec![7],
    })?;
    let _ = sim.run_until(SimTime::from_secs(30));
    assert_eq!(
        sim.inject(FailureSpec {
            at: SimTime::from_secs(40),
            nodes: vec![7],
        })
        .unwrap_err(),
        crate::error::EngineError::NodeAlreadyDead { node: 7 }
    );
    // A domain kill expanding to a dead node is rejected the same way.
    // (Node 2 died with the primary; its rack is half dead.)
    assert_eq!(
        sim.inject(FailureSpec {
            at: SimTime::from_secs(40),
            nodes: vec![8, 2],
        })
        .unwrap_err(),
        crate::error::EngineError::NodeAlreadyDead { node: 2 }
    );
    // Alive nodes still inject fine.
    sim.inject(FailureSpec {
        at: SimTime::from_secs(40),
        nodes: vec![8],
    })?;
    Ok(())
}

#[test]
fn dead_replica_falls_back_to_checkpoint_recovery() -> TestResult {
    // Kill the primary's node AND its replica's standby node: recovery must
    // fall back to the passive path and still complete.
    let q = chain_query(100, 10)?;
    let report = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::Ppa {
            plan: TaskSet::full(5),
            checkpoint_interval: Some(SimDuration::from_secs(5)),
        }),
        vec![FailureSpec {
            at: SimTime::from_secs(14),
            // task 2's primary node and its standby (one-task-per-node
            // placement puts the replica of task t on node n + t).
            nodes: vec![2, 5 + 2],
        }],
        SimDuration::from_secs(60),
    );
    let r = &report.recoveries[0];
    assert_eq!(r.task, TaskIndex(2));
    assert!(!r.via_replica, "replica died with its node");
    assert!(r.recovered_at.is_some(), "checkpoint fallback must recover");
    Ok(())
}

// ----------------------------------------------------------------------
// Approximate fault tolerance (divergence-bounded backups, lossy restore)
// ----------------------------------------------------------------------

#[test]
fn approximate_ships_on_divergence_and_skips_within_bound() -> TestResult {
    // Mids absorb 100 tuples per batch: a bound of 300 ships roughly every
    // third batch and skips the two in between — both counters must show
    // up in the drive's metrics, and only under the approximate mode.
    let ships = |bound: u64| -> Result<(u64, u64), Box<dyn Error>> {
        let q = chain_query(100, 10)?;
        let mut sim = Simulation::new(
            &q,
            one_task_per_node(&q)?,
            base_config(FtMode::approximate(5, SimDuration::from_secs(5), bound)),
        );
        let driven = sim.drive(
            &FaultFeed::from_specs(Vec::new()),
            &mut crate::control::StaticPolicy,
            SimTime::from_secs(60),
        )?;
        Ok((
            driven.metrics.counter("engine.approx.backups_shipped"),
            driven.metrics.counter("engine.approx.backups_skipped"),
        ))
    };
    let (shipped, skipped) = ships(300)?;
    assert!(shipped > 0, "drift crossings must ship backups");
    assert!(skipped > 0, "within-bound batches must be skipped");
    // Monotone in the bound: a tighter bound never ships fewer backups.
    let (tight, _) = ships(100)?;
    let (loose, _) = ships(900)?;
    assert!(
        tight >= shipped && shipped >= loose,
        "{tight} {shipped} {loose}"
    );
    Ok(())
}

#[test]
fn approximate_recovery_skips_replay_and_records_the_floor() -> TestResult {
    let q = chain_query(100, 10)?;
    let kill = || {
        vec![FailureSpec {
            at: SimTime::from_secs(14),
            nodes: vec![node_of(2)],
        }]
    };
    let exact = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::checkpoint(5, SimDuration::from_secs(5))),
        kill(),
        SimDuration::from_secs(60),
    );
    let approx = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::approximate(5, SimDuration::from_secs(5), 300)),
        kill(),
        SimDuration::from_secs(60),
    );
    let lat = |rep: &RunReport| rep.recoveries[0].latency().ok_or("must recover");
    assert!(
        lat(&approx)? < lat(&exact)?,
        "lossy restore must beat restore+replay: {} vs {}",
        lat(&approx)?,
        lat(&exact)?
    );
    // The forfeited fidelity is quantified on the outage record — and only
    // on the lossy family's records.
    let rec = &approx.outages[0].records[0];
    let floor = rec
        .fidelity_floor
        .ok_or("lossy recovery must record a floor")?;
    assert!(floor <= 1000);
    assert!(
        floor < 1000,
        "a 16s gap against a 5s-stale snapshot forfeits batches"
    );
    assert!(exact.outages[0].records[0].fidelity_floor.is_none());
    // Downstream is not stalled by the jump: the sink keeps producing
    // complete, non-tentative batches after the recovery.
    let recovered_at = approx.recoveries[0].recovered_at.ok_or("recovered")?;
    let late: Vec<_> = approx
        .sink
        .iter()
        .filter(|s| s.at > recovered_at + SimDuration::from_secs(10))
        .collect();
    assert!(
        !late.is_empty(),
        "sink must keep flowing after a lossy jump"
    );
    assert!(late.iter().all(|s| s.tuples.len() == 200 && !s.tentative));
    Ok(())
}

#[test]
fn approximate_recovery_emits_the_loss_before_closing() -> TestResult {
    let q = chain_query(100, 10)?;
    let mut sim = Simulation::new(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::approximate(5, SimDuration::from_secs(5), 300)),
    );
    sim.set_trace_sink(Box::new(ppa_obs::VecSink::new()));
    let driven = sim.drive(
        &FaultFeed::from_specs(vec![FailureSpec {
            at: SimTime::from_secs(14),
            nodes: vec![node_of(2)],
        }]),
        &mut crate::control::StaticPolicy,
        SimTime::from_secs(60),
    )?;
    let events = sim.take_trace_sink().ok_or("sink attached")?.take_events();
    let pos =
        |pred: &dyn Fn(&ppa_obs::EngineEvent) -> bool| events.iter().position(|(_, e)| pred(e));
    let ship = pos(&|e| matches!(e, ppa_obs::EngineEvent::ApproxBackupShipped { task: 2, .. }))
        .ok_or("task 2 must ship at least one backup before dying")?;
    let loss = pos(&|e| matches!(e, ppa_obs::EngineEvent::ApproxRecovery { task: 2, .. }))
        .ok_or("lossy recovery must be quantified")?;
    let done = pos(&|e| matches!(e, ppa_obs::EngineEvent::RestoreDone { task: 2 }))
        .ok_or("outage must close via RestoreDone")?;
    assert!(ship < loss && loss < done, "{ship} {loss} {done}");
    if let ppa_obs::EngineEvent::ApproxRecovery {
        divergence,
        skipped_batches,
        fidelity_floor,
        ..
    } = &events[loss].1
    {
        assert!(*skipped_batches > 0, "the replay gap is what gets skipped");
        assert!(*fidelity_floor < 1000);
        // The drift forfeited at recovery stayed within one bound: the
        // crossing batch armed a ship that the failure then voided, so at
        // most bound-1 + one batch of drift is ever pending.
        assert!(*divergence <= 300 + 100, "forfeited drift {divergence}");
    }
    // The registry agrees with the event stream.
    assert_eq!(
        driven.metrics.counter("engine.approx.backups_shipped"),
        events
            .iter()
            .filter(|(_, e)| matches!(e, ppa_obs::EngineEvent::ApproxBackupShipped { .. }))
            .count() as u64
    );
    Ok(())
}

#[test]
fn approximate_zero_bound_matches_checkpoint_byte_for_byte() -> TestResult {
    let q = chain_query(100, 10)?;
    let kill = || {
        vec![FailureSpec {
            at: SimTime::from_secs(14),
            nodes: vec![node_of(2), node_of(3)],
        }]
    };
    let cp = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::checkpoint(5, SimDuration::from_secs(5))),
        kill(),
        SimDuration::from_secs(60),
    );
    let zero = Simulation::run(
        &q,
        one_task_per_node(&q)?,
        base_config(FtMode::approximate(5, SimDuration::from_secs(5), 0)),
        kill(),
        SimDuration::from_secs(60),
    );
    assert_eq!(full_digest(&cp), full_digest(&zero));
    Ok(())
}
