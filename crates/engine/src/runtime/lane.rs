//! Lane-local event handlers: the data-plane half of the event loop
//! (source generation, delivery, batch processing) factored so it can run
//! either inline on the simulation thread or inside a worker lane of the
//! sharded executor (see [`super::shard`]).
//!
//! A lane handler may only touch the state passed to it — the receiving
//! task's [`TaskRt`], its node's CPU horizon, and the read-only
//! [`LaneCtx`] — and stages every global side effect (scheduling, sink
//! output, recovery completion) into [`LaneEffects`]. The simulation
//! applies staged effects per event in global span order, which is what
//! makes the merged parallel execution byte-identical to the sequential
//! one: two events of different lanes can only interact through effects,
//! and effects replay in the exact order the single-threaded loop would
//! have produced them.
//!
//! Handlers must be panic-free: a lane runs on a worker thread, so broken
//! internal invariants degrade to `debug_assert!` + a safe early return
//! instead of unwinding across the executor.

use super::{Event, Msg, Rt, Status, TaskRt};
use crate::config::{EngineConfig, FtMode};
use crate::report::SinkBatch;
use crate::tuple::{route, Tuple};
use crate::udf::{BatchCtx, InputBatch};
use ppa_core::model::{TaskGraph, TaskIndex};
use ppa_sim::{SimDuration, SimTime};
use std::sync::Arc;

/// Read-only simulation state a lane handler may consult. All fields are
/// immutable for the whole span (only solo, carried events mutate them),
/// so sharing them across worker threads is safe.
pub(super) struct LaneCtx<'a> {
    pub graph: &'a TaskGraph,
    pub config: &'a EngineConfig,
    pub replica_slot: &'a [Option<Rt>],
    pub storm_buffer_batches: Option<u64>,
    /// The span's instant (== the scheduler clock while it executes).
    pub now: SimTime,
}

/// Global side effects staged by one lane event, applied by the
/// simulation in global span order.
#[derive(Default)]
pub(super) struct LaneEffects {
    /// Events to schedule, in call order (so sequence numbers — and with
    /// them all same-instant tie-breaks — match the sequential loop).
    pub scheduled: Vec<(SimTime, Event)>,
    /// Sink records produced by active sink incarnations.
    pub sink: Vec<SinkBatch>,
    /// Logical tasks whose catch-up completed at the given instant.
    pub recovered: Vec<(usize, SimTime)>,
    /// Tuples scheduled for delivery (including replica copies).
    pub tuples_moved: u64,
}

/// A data-plane event in lane-local form.
pub(super) enum LaneEvent {
    /// [`Event::SourceBatch`]: cadence + generation.
    Source { batch: u64 },
    /// Bare generation (restore/catch-up paths; no cadence rescheduling).
    Generate { batch: u64, regen: bool },
    /// [`Event::Deliver`].
    Deliver {
        substream: usize,
        batch: u64,
        msg: Msg,
    },
    /// Drain consecutive ready batches (restore paths).
    TryProcess,
}

/// Runs one lane event against one task. `busy` is the CPU horizon of
/// the node hosting `task`; distinct lanes reference distinct nodes, so
/// horizons never race.
pub(super) fn handle(
    cx: &LaneCtx<'_>,
    rt: Rt,
    task: &mut TaskRt,
    busy: &mut SimTime,
    ev: LaneEvent,
    fx: &mut LaneEffects,
) {
    match ev {
        LaneEvent::Source { batch } => source_batch(cx, rt, task, busy, batch, fx),
        LaneEvent::Generate { batch, regen } => generate(cx, task, busy, batch, regen, fx),
        LaneEvent::Deliver {
            substream,
            batch,
            msg,
        } => deliver(cx, task, busy, substream, batch, msg, fx),
        LaneEvent::TryProcess => try_process(cx, task, busy, fx),
    }
}

/// Reserves `work` on a node CPU horizon; returns the finish instant.
fn reserve(busy: &mut SimTime, now: SimTime, work: SimDuration) -> SimTime {
    let start = (*busy).max(now);
    let finish = start + work;
    *busy = finish;
    finish
}

fn source_batch(
    cx: &LaneCtx<'_>,
    rt: Rt,
    task: &mut TaskRt,
    busy: &mut SimTime,
    batch: u64,
    fx: &mut LaneEffects,
) {
    // A replica slot the control plane deactivated is orphaned: stop
    // its cadence instead of ticking an event stream forever.
    if task.is_replica && cx.replica_slot[task.logical.0] != Some(rt) {
        return;
    }
    // Always keep the cadence going; a dead source skips generation.
    let next_at = cx.now + cx.config.batch_interval;
    fx.scheduled.push((
        next_at,
        Event::SourceBatch {
            rt,
            batch: batch + 1,
        },
    ));

    if task.status != Status::Running {
        return;
    }
    generate(cx, task, busy, batch, false, fx);
}

/// Generates one source batch; `regen` marks catch-up regeneration.
fn generate(
    cx: &LaneCtx<'_>,
    task: &mut TaskRt,
    busy: &mut SimTime,
    batch: u64,
    regen: bool,
    fx: &mut LaneEffects,
) {
    let Some(source) = task.source.as_mut() else {
        debug_assert!(false, "generate_source_batch on a non-source task");
        return;
    };
    let tuples = source.batch(batch);
    let cost = if regen {
        cx.config.costs.replay_per_tuple
    } else {
        cx.config.costs.source_per_tuple
    };
    let work = cost * tuples.len() as u64;
    let finish = reserve(busy, cx.now, work);
    task.cpu.processing += work;
    if !regen {
        task.throughput.tuples_out += tuples.len() as u64;
    }
    task.next_batch = task.next_batch.max(batch + 1);
    emit(cx, task, batch, tuples, false, finish, fx);
    trim_storm_buffer(cx, task);
}

/// Partitions `tuples` across the task's out targets, buffers them and
/// (if outputs are enabled) schedules deliveries at `finish + latency`.
///
/// The route table (`TaskRt::stream_spans`) is precomputed at task
/// construction; single-target streams forward the whole batch behind one
/// shared `Arc` with no per-tuple work at all, and multi-target streams
/// bin each tuple exactly once.
pub(super) fn emit(
    cx: &LaneCtx<'_>,
    task: &mut TaskRt,
    batch: u64,
    tuples: Vec<Tuple>,
    degraded: bool,
    finish: SimTime,
    fx: &mut LaneEffects,
) {
    let n_targets = task.out_targets.len();
    if n_targets == 0 {
        return;
    }
    let whole = Arc::new(tuples);
    let mut parts: Vec<Option<Arc<Vec<Tuple>>>> = vec![None; n_targets];
    for &(start, len) in &task.stream_spans {
        if len == 1 {
            parts[start] = Some(whole.clone());
        } else {
            let mut bins: Vec<Vec<Tuple>> = vec![Vec::new(); len];
            for t in whole.iter() {
                bins[route(t.key, len)].push(t.clone());
            }
            for (j, bin) in bins.into_iter().enumerate() {
                parts[start + j] = Some(Arc::new(bin));
            }
        }
    }
    let outputs_enabled = task.outputs_enabled;
    let deliver_at = finish + cx.config.costs.network_latency;
    for (k, part) in parts.into_iter().enumerate() {
        let Some(part) = part else {
            debug_assert!(false, "stream spans must cover every out target");
            continue;
        };
        task.out_buffer[k].push_back((batch, part.clone(), degraded));
        if outputs_enabled {
            let (to, to_substream) = (task.out_targets[k].to, task.out_targets[k].to_substream);
            deliver_to(
                cx,
                fx,
                to,
                to_substream,
                batch,
                part,
                degraded,
                None,
                deliver_at,
            );
        }
    }
}

/// Stages a Data delivery to the primary slot and replica slot (if any)
/// of a logical task.
#[allow(clippy::too_many_arguments)]
pub(super) fn deliver_to(
    cx: &LaneCtx<'_>,
    fx: &mut LaneEffects,
    to: TaskIndex,
    substream: usize,
    batch: u64,
    tuples: Arc<Vec<Tuple>>,
    degraded: bool,
    replay_for: Option<TaskIndex>,
    at: SimTime,
) {
    fx.tuples_moved += tuples.len() as u64;
    fx.scheduled.push((
        at,
        Event::Deliver {
            to: to.0,
            substream,
            batch,
            msg: Msg::Data {
                tuples: tuples.clone(),
                degraded,
                replay_for,
            },
        },
    ));
    if let Some(slot) = cx.replica_slot[to.0] {
        fx.tuples_moved += tuples.len() as u64;
        fx.scheduled.push((
            at,
            Event::Deliver {
                to: slot,
                substream,
                batch,
                msg: Msg::Data {
                    tuples,
                    degraded,
                    replay_for,
                },
            },
        ));
    }
}

fn deliver(
    cx: &LaneCtx<'_>,
    task: &mut TaskRt,
    busy: &mut SimTime,
    substream: usize,
    batch: u64,
    msg: Msg,
    fx: &mut LaneEffects,
) {
    match task.status {
        // Memory of dead/loading incarnations is gone; upstream buffers
        // (or checkpointed buffers) re-serve these batches after restore.
        Status::Dead | Status::Restoring => return,
        Status::Running | Status::CatchingUp => {}
    }
    match msg {
        Msg::Proxy => {
            let c = &mut task.closed[substream];
            *c = (*c).max(batch + 1);
        }
        Msg::Data {
            tuples,
            degraded,
            replay_for,
        } => {
            // Storm replay forwarding: a hop that already processed this
            // batch recharges reprocessing CPU and forwards its own
            // buffered output toward the recovering task.
            if let Some(target) = replay_for {
                if task.logical != target && batch < task.next_batch {
                    forward_replay(cx, task, busy, batch, tuples.len(), target, fx);
                    return;
                }
            }
            if batch < task.next_batch
                || batch < task.closed[substream]
                || task.staged[substream].contains_key(&batch)
            {
                return; // duplicate
            }
            task.staged[substream].insert(batch, (tuples, degraded));
        }
    }
    try_process(cx, task, busy, fx);
}

/// Storm-mode hop forwarding: charge replay CPU, forward the hop's own
/// buffered output for this batch along edges toward `target`.
fn forward_replay(
    cx: &LaneCtx<'_>,
    task: &mut TaskRt,
    busy: &mut SimTime,
    batch: u64,
    in_tuples: usize,
    target: TaskIndex,
    fx: &mut LaneEffects,
) {
    let work = cx.config.costs.replay_per_tuple * in_tuples as u64 + cx.config.costs.batch_overhead;
    let finish = reserve(busy, cx.now, work);
    task.cpu.processing += work;
    let deliver_at = finish + cx.config.costs.network_latency;
    let cone = upstream_cone(cx.graph, target);
    let mut sends: Vec<(TaskIndex, usize, u64, Arc<Vec<Tuple>>)> = Vec::new();
    for (k, tgt) in task.out_targets.iter().enumerate() {
        if tgt.to != target && !cone[tgt.to.0] {
            continue;
        }
        if let Some((b, tuples, _)) = task.out_buffer[k].iter().find(|(b, _, _)| *b == batch) {
            sends.push((tgt.to, tgt.to_substream, *b, tuples.clone()));
        }
    }
    for (to, substream, b, tuples) in sends {
        deliver_to(
            cx,
            fx,
            to,
            substream,
            b,
            tuples,
            false,
            Some(target),
            deliver_at,
        );
    }
}

/// Logical tasks with a path to `t` (the replay cone), excluding `t`.
pub(super) fn upstream_cone(graph: &TaskGraph, t: TaskIndex) -> Vec<bool> {
    let mut cone = vec![false; graph.n_tasks()];
    let mut stack = vec![t];
    while let Some(x) = stack.pop() {
        for u in graph.upstream_tasks(x) {
            if !cone[u.0] {
                cone[u.0] = true;
                stack.push(u);
            }
        }
    }
    cone
}

/// Processes as many consecutive ready batches as possible.
fn try_process(cx: &LaneCtx<'_>, task: &mut TaskRt, busy: &mut SimTime, fx: &mut LaneEffects) {
    loop {
        let b = task.next_batch;
        if !task.ready(b) {
            return;
        }
        process_batch(cx, task, busy, b, fx);
    }
}

fn process_batch(
    cx: &LaneCtx<'_>,
    task: &mut TaskRt,
    busy: &mut SimTime,
    b: u64,
    fx: &mut LaneEffects,
) {
    if task.udf.is_none() {
        // Never reached for well-formed graphs (sources have no inputs,
        // so nothing is delivered to them); advance the cursor anyway so
        // `try_process` cannot spin.
        debug_assert!(false, "process_batch on a task without a UDF");
        task.next_batch = b + 1;
        return;
    }
    // Assemble per-stream inputs (round-robin merge across substreams).
    let n_streams = cx.graph.inputs(task.logical).len();
    let mut degraded = false;
    let mut total_in = 0usize;
    // Gather this batch's substream data per stream.
    let mut per_stream: Vec<Vec<Arc<Vec<Tuple>>>> = vec![Vec::new(); n_streams];
    for s in 0..task.n_substreams() {
        let (stream, _) = task.sub_from[s];
        match task.staged[s].remove(&b) {
            Some((tuples, d)) => {
                degraded |= d;
                total_in += tuples.len();
                per_stream[stream].push(tuples);
            }
            None => {
                // Closed by proxy: missing contribution.
                debug_assert!(task.closed[s] > b);
                degraded = true;
            }
        }
        // Drop any stale staged batches below the cursor.
        while let Some((&k, _)) = task.staged[s].iter().next() {
            if k <= b {
                task.staged[s].remove(&k);
            } else {
                break;
            }
        }
    }
    // Streams fed by exactly one substream (the common case) pass their
    // chunk through zero-copy; fan-in streams round-robin interleave for
    // deterministic replica order, exactly like the interleave of one
    // chunk would.
    enum StreamData {
        Whole(Arc<Vec<Tuple>>),
        Merged(Vec<Tuple>),
    }
    let merged: Vec<StreamData> = per_stream
        .into_iter()
        .map(|mut chunks| {
            if chunks.len() == 1 {
                let Some(only) = chunks.pop() else {
                    return StreamData::Merged(Vec::new());
                };
                return StreamData::Whole(only);
            }
            let max_len = chunks.iter().map(|c| c.len()).max().unwrap_or(0);
            let mut out = Vec::with_capacity(chunks.iter().map(|c| c.len()).sum());
            for i in 0..max_len {
                for c in &chunks {
                    if let Some(t) = c.get(i) {
                        out.push(t.clone());
                    }
                }
            }
            StreamData::Merged(out)
        })
        .collect();

    // CPU charge.
    let catching_up = task.status == Status::CatchingUp;
    let per_tuple = if catching_up {
        cx.config.costs.replay_per_tuple
    } else {
        cx.config.costs.process_per_tuple
    };
    let work = cx.config.costs.batch_overhead + per_tuple * total_in as u64;
    let finish = reserve(busy, cx.now, work);
    task.cpu.processing += work;
    if !catching_up {
        task.throughput.tuples_in += total_in as u64;
    }

    // Run the UDF.
    let mut out = Vec::new();
    {
        let op = cx.graph.operator_of(task.logical);
        let ctx = BatchCtx {
            batch: b,
            now: finish,
            task_local: cx.graph.local_index(task.logical),
            parallelism: cx.graph.topology().operator(op).parallelism,
        };
        let inputs: Vec<InputBatch<'_>> = merged
            .iter()
            .enumerate()
            .map(|(stream, data)| InputBatch {
                stream,
                tuples: match data {
                    StreamData::Whole(arc) => arc.as_slice(),
                    StreamData::Merged(v) => v.as_slice(),
                },
            })
            .collect();
        if let Some(udf) = task.udf.as_mut() {
            udf.on_batch(&ctx, &inputs, &mut out);
        }
        task.next_batch = b + 1;
    }
    if !catching_up {
        task.throughput.tuples_out += out.len() as u64;
    }

    // Recovery completion check: progress vector dominated. Staged (not
    // applied inline) because the outage books are global state; events
    // reaching a catching-up task only ever run sequentially, so the
    // deferred application preserves the legacy order exactly.
    if catching_up {
        if let Some(pre) = task.pre_failure_progress {
            if task.next_batch >= pre {
                task.status = Status::Running;
                fx.recovered.push((task.logical.0, finish));
            }
        }
    }

    // Approximate mode: every absorbed input tuple is one unit of state
    // drift. The first batch that pushes the drift across the error
    // bound arms a backup ship at this batch's CPU finish; replicas and
    // catch-up replay never ship (a replica's primary owns the drift,
    // and catch-up reprocesses tuples already counted).
    if let FtMode::Approximate { error_bound, .. } = cx.config.mode {
        if !task.is_replica && !catching_up && task.divergence.absorb(total_in as u64, error_bound)
        {
            fx.scheduled
                .push((finish, Event::ApproxShip { rt: task.logical.0 }));
        }
    }

    // Sink collection: active incarnations record directly; muted sink
    // replicas stash records so a takeover can backfill the gap between
    // the primary's death and its own activation.
    if cx.graph.is_sink_task(task.logical) {
        let record = SinkBatch {
            task: task.logical,
            batch: b,
            at: finish,
            tentative: degraded,
            tuples: out.clone(),
        };
        if task.outputs_enabled {
            fx.sink.push(record);
        } else {
            task.pending_sink.push(record);
            // Bound the stash to the replica sync horizon.
            if task.pending_sink.len() > 256 {
                task.pending_sink.remove(0);
            }
        }
    }

    emit(cx, task, b, out, degraded, finish, fx);
    trim_storm_buffer(cx, task);
}

/// Storm mode keeps only the replay window (plus a safety margin so a
/// recovering task's oldest needed batch is still forwardable by hops
/// whose cursors run slightly ahead) in output buffers.
fn trim_storm_buffer(cx: &LaneCtx<'_>, task: &mut TaskRt) {
    if let Some(w) = cx.storm_buffer_batches {
        let min_keep = task.next_batch.saturating_sub(w + 5);
        for q in &mut task.out_buffer {
            while let Some((b, _, _)) = q.front() {
                if *b < min_keep {
                    q.pop_front();
                } else {
                    break;
                }
            }
        }
    }
}
