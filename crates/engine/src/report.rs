//! Run reports: everything the experiment harness extracts from a run.

use crate::tuple::Tuple;
use ppa_core::model::TaskIndex;
use ppa_sim::{SimDuration, SimTime};

/// Where a task sits in its failure/recovery lifecycle.
///
/// The runtime walks each task through
/// `Healthy → Failed → Replaying → Recovered → ReFailed → Replaying → …`:
/// every failure of the task's *active incarnation* (primary, restored
/// primary, or activated replica) opens a fresh [`OutageRecord`] and moves
/// the task to `Failed`/`ReFailed`; detection + a started recovery path
/// moves it to `Replaying`; restoring its pre-failure progress moves it to
/// `Recovered`, from which it can fail again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lifecycle {
    /// Never failed.
    Healthy,
    /// In its first outage, no recovery path running yet.
    Failed,
    /// A recovery path is running (pending replica takeover, checkpoint
    /// restore + catch-up, or source replay).
    Replaying,
    /// The most recent outage recovered; the task serves again.
    Recovered,
    /// Failed again after recovering — the honest re-failure state the
    /// one-shot bookkeeping used to paper over.
    ReFailed,
}

/// One outage in a task's lifecycle: a failure of its active incarnation,
/// its detection, and (if the run lasted long enough) its recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutageRecord {
    /// Whether this outage was recovered from an active replica.
    pub via_replica: bool,
    /// When the hosting node actually failed.
    pub failed_at: SimTime,
    /// When the master's heartbeat scan detected it (`SimTime::MAX` until
    /// then).
    pub detected_at: SimTime,
    /// When the task's progress vector dominated its pre-failure progress
    /// (`None` if the run ended first).
    pub recovered_at: Option<SimTime>,
    /// Lossy (approximate) recoveries only: the guaranteed share of the
    /// outage window *not* forfeited by skipping replay, in permille
    /// (1000 = nothing forfeited). A conservative floor on the window's
    /// sink fidelity — tentative outputs typically deliver more. `None`
    /// for every exact recovery.
    pub fidelity_floor: Option<u16>,
}

impl OutageRecord {
    /// The paper's recovery latency: detection → progress restored.
    pub fn latency(&self) -> Option<SimDuration> {
        self.recovered_at.map(|r| r.since(self.detected_at))
    }

    /// Whether the heartbeat scan has detected this outage.
    pub fn detected(&self) -> bool {
        self.detected_at != SimTime::MAX
    }

    /// Whether the outage is still unrecovered.
    pub fn open(&self) -> bool {
        self.recovered_at.is_none()
    }
}

/// Full outage history of one task, oldest first.
#[derive(Debug, Clone)]
pub struct TaskOutages {
    pub task: TaskIndex,
    /// Every outage the task went through, in time order.
    pub records: Vec<OutageRecord>,
}

impl TaskOutages {
    /// Outages beyond the first — the re-failures.
    pub fn refail_count(&self) -> usize {
        self.records.len().saturating_sub(1)
    }

    /// The most recent outage.
    pub fn current(&self) -> Option<&OutageRecord> {
        self.records.last()
    }
}

/// Recovery record of one failed task — the backward-compatible
/// *first-outage* view derived from the task's [`TaskOutages`] history
/// (identical to the history for single-failure runs).
#[derive(Debug, Clone)]
pub struct TaskRecovery {
    pub task: TaskIndex,
    /// Whether the task was recovered from an active replica.
    pub via_replica: bool,
    /// When the node failure actually happened.
    pub failed_at: SimTime,
    /// When the master's heartbeat scan detected it.
    pub detected_at: SimTime,
    /// When the task's progress vector dominated its pre-failure progress
    /// (`None` if the run ended first).
    pub recovered_at: Option<SimTime>,
}

impl TaskRecovery {
    /// The paper's recovery latency: detection → progress restored.
    pub fn latency(&self) -> Option<SimDuration> {
        self.recovered_at.map(|r| r.since(self.detected_at))
    }
}

/// One batch of output collected at a sink task.
#[derive(Debug, Clone)]
pub struct SinkBatch {
    pub task: TaskIndex,
    pub batch: u64,
    /// Virtual time the batch's output was emitted.
    pub at: SimTime,
    /// Whether any proxy punctuation (lost input) degraded this batch.
    pub tentative: bool,
    pub tuples: Vec<Tuple>,
}

/// Per-task throughput accounting, the raw material for §V-C's dynamic plan
/// adaptation: observed rates feed re-planning.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaskThroughput {
    /// Tuples consumed across all input substreams (source tasks: 0).
    pub tuples_in: u64,
    /// Tuples emitted downstream (or collected, for sinks).
    pub tuples_out: u64,
}

impl TaskThroughput {
    /// Mean output rate in tuples/s over a run of `secs` seconds.
    ///
    /// A degenerate horizon — zero, negative, or NaN `secs` — yields 0.0
    /// rather than an infinity or NaN that would poison every downstream
    /// mean (`secs <= 0.0` alone would let NaN straight through, since
    /// every comparison against NaN is false).
    pub fn out_rate(&self, secs: f64) -> f64 {
        if secs.is_nan() || secs <= 0.0 {
            return 0.0;
        }
        self.tuples_out as f64 / secs
    }
}

/// Per-task CPU accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuStats {
    /// CPU spent in normal batch processing (including source generation).
    pub processing: SimDuration,
    /// CPU spent creating checkpoints.
    pub checkpoint: SimDuration,
}

impl CpuStats {
    /// Ratio of checkpoint CPU to processing CPU (Fig. 9's metric).
    pub fn checkpoint_ratio(&self) -> f64 {
        let p = self.processing.as_micros();
        if p == 0 {
            return 0.0;
        }
        self.checkpoint.as_micros() as f64 / p as f64
    }
}

/// Everything measured during one simulated run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Per-failed-task recovery records, in task order — the first-outage
    /// view of `outages`, kept for every consumer that models one failure
    /// per task (the §VI-A figures).
    pub recoveries: Vec<TaskRecovery>,
    /// Full per-task outage histories in first-failure order: every
    /// failure of a task's active incarnation — including an activated
    /// replica dying after takeover — appends a fresh [`OutageRecord`].
    pub outages: Vec<TaskOutages>,
    /// Sink outputs in emission order.
    pub sink: Vec<SinkBatch>,
    /// Per-task CPU statistics (indexed by task).
    pub cpu: Vec<CpuStats>,
    /// Per-task throughput (indexed by task; primary incarnations only).
    pub throughput: Vec<TaskThroughput>,
    /// Number of events the simulation processed.
    pub events: u64,
    /// Tuples scheduled for delivery (replica copies included) — the
    /// deterministic volume denominator behind the harness's tuples/sec.
    pub tuples_moved: u64,
    /// Virtual time the run ended.
    pub ended_at: SimTime,
}

impl RunReport {
    /// Mean recovery latency over recovered tasks (`None` if nothing
    /// recovered).
    pub fn mean_recovery_latency(&self) -> Option<SimDuration> {
        let lat: Vec<SimDuration> = self
            .recoveries
            .iter()
            .filter_map(TaskRecovery::latency)
            .collect();
        if lat.is_empty() {
            return None;
        }
        let total: u64 = lat.iter().map(|d| d.as_micros()).sum();
        Some(SimDuration::from_micros(total / lat.len() as u64))
    }

    /// Latest recovery completion (the correlated-failure "recovery done"
    /// instant).
    pub fn full_recovery_at(&self) -> Option<SimTime> {
        if self.recoveries.is_empty() || self.recoveries.iter().any(|r| r.recovered_at.is_none()) {
            return None;
        }
        self.recoveries.iter().filter_map(|r| r.recovered_at).max()
    }

    /// Mean recovery latency over a subset of tasks.
    pub fn mean_latency_of(
        &self,
        mut include: impl FnMut(TaskIndex) -> bool,
    ) -> Option<SimDuration> {
        let lat: Vec<SimDuration> = self
            .recoveries
            .iter()
            .filter(|r| include(r.task))
            .filter_map(TaskRecovery::latency)
            .collect();
        if lat.is_empty() {
            return None;
        }
        let total: u64 = lat.iter().map(|d| d.as_micros()).sum();
        Some(SimDuration::from_micros(total / lat.len() as u64))
    }

    /// The outage history of one task (empty if it never failed).
    pub fn outages_of(&self, task: TaskIndex) -> &[OutageRecord] {
        self.outages
            .iter()
            .find(|o| o.task == task)
            .map_or(&[], |o| o.records.as_slice())
    }

    /// Total re-failures across all tasks (outages beyond each task's
    /// first).
    pub fn refail_count(&self) -> usize {
        self.outages.iter().map(TaskOutages::refail_count).sum()
    }

    /// First tentative sink batch at or after `t`.
    pub fn first_tentative_after(&self, t: SimTime) -> Option<SimTime> {
        self.sink
            .iter()
            .filter(|s| s.tentative && s.at >= t)
            .map(|s| s.at)
            .min()
    }

    /// Sink batches emitted for batch id `b` across sink tasks.
    pub fn sink_batches(&self, b: u64) -> impl Iterator<Item = &SinkBatch> {
        self.sink.iter().filter(move |s| s.batch == b)
    }

    /// Aggregate checkpoint-CPU ratio across tasks that did any processing.
    pub fn mean_checkpoint_ratio(&self) -> f64 {
        let ratios: Vec<f64> = self
            .cpu
            .iter()
            .filter(|c| c.processing.as_micros() > 0 && c.checkpoint.as_micros() > 0)
            .map(CpuStats::checkpoint_ratio)
            .collect();
        if ratios.is_empty() {
            return 0.0;
        }
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }
}

impl RunReport {
    /// Observed mean output rates (tuples/s) per task — plug these into
    /// `ppa_core::model::TaskWeights::Explicit` per operator to re-plan with
    /// live rates (§V-C).
    pub fn observed_out_rates(&self) -> Vec<f64> {
        let secs = self.ended_at.as_secs_f64();
        self.throughput.iter().map(|t| t.out_rate(secs)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_rates() {
        let t = TaskThroughput {
            tuples_in: 500,
            tuples_out: 1_000,
        };
        assert!((t.out_rate(10.0) - 100.0).abs() < 1e-9);
        assert_eq!(t.out_rate(0.0), 0.0);
        // Degenerate horizons never produce inf/NaN rates.
        assert_eq!(t.out_rate(-5.0), 0.0);
        assert_eq!(t.out_rate(f64::NAN), 0.0);
        assert_eq!(t.out_rate(f64::NEG_INFINITY), 0.0);
    }

    #[test]
    fn latency_math() {
        let r = TaskRecovery {
            task: TaskIndex(0),
            via_replica: false,
            failed_at: SimTime::from_secs(10),
            detected_at: SimTime::from_secs(15),
            recovered_at: Some(SimTime::from_secs(40)),
        };
        assert_eq!(r.latency(), Some(SimDuration::from_secs(25)));
    }

    #[test]
    fn report_aggregates() {
        let mk = |task, rec| TaskRecovery {
            task: TaskIndex(task),
            via_replica: false,
            failed_at: SimTime::from_secs(10),
            detected_at: SimTime::from_secs(15),
            recovered_at: rec,
        };
        let mut rep = RunReport::default();
        rep.recoveries.push(mk(0, Some(SimTime::from_secs(25))));
        rep.recoveries.push(mk(1, Some(SimTime::from_secs(35))));
        assert_eq!(
            rep.mean_recovery_latency(),
            Some(SimDuration::from_secs(15))
        );
        assert_eq!(rep.full_recovery_at(), Some(SimTime::from_secs(35)));
        // Unrecovered task blocks full_recovery_at.
        rep.recoveries.push(mk(2, None));
        assert_eq!(rep.full_recovery_at(), None);
        assert_eq!(
            rep.mean_latency_of(|t| t.0 == 1),
            Some(SimDuration::from_secs(20))
        );
    }

    #[test]
    fn cpu_ratio() {
        let c = CpuStats {
            processing: SimDuration::from_secs(10),
            checkpoint: SimDuration::from_secs(5),
        };
        assert!((c.checkpoint_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CpuStats::default().checkpoint_ratio(), 0.0);
    }

    #[test]
    fn outage_history_helpers() {
        let rec = |failed: u64, det: u64, recv: Option<u64>| OutageRecord {
            via_replica: false,
            failed_at: SimTime::from_secs(failed),
            detected_at: SimTime::from_secs(det),
            recovered_at: recv.map(SimTime::from_secs),
            fidelity_floor: None,
        };
        let mut rep = RunReport::default();
        rep.outages.push(TaskOutages {
            task: TaskIndex(2),
            records: vec![rec(10, 15, Some(25)), rec(40, 45, None)],
        });
        assert_eq!(rep.outages_of(TaskIndex(2)).len(), 2);
        assert!(rep.outages_of(TaskIndex(0)).is_empty());
        assert_eq!(rep.refail_count(), 1);
        let second = &rep.outages_of(TaskIndex(2))[1];
        assert!(second.open() && second.detected());
        assert_eq!(
            rep.outages[0].records[0].latency(),
            Some(SimDuration::from_secs(10))
        );
        assert_eq!(rep.outages[0].refail_count(), 1);
        assert!(rep.outages[0].current().unwrap().open());
        // The MAX sentinel reads as "not yet detected".
        let undetected = OutageRecord {
            via_replica: false,
            failed_at: SimTime::from_secs(1),
            detected_at: SimTime::MAX,
            recovered_at: None,
            fidelity_floor: None,
        };
        assert!(!undetected.detected());
    }

    #[test]
    fn tentative_lookup() {
        let mut rep = RunReport::default();
        rep.sink.push(SinkBatch {
            task: TaskIndex(5),
            batch: 3,
            at: SimTime::from_secs(4),
            tentative: false,
            tuples: vec![],
        });
        rep.sink.push(SinkBatch {
            task: TaskIndex(5),
            batch: 9,
            at: SimTime::from_secs(10),
            tentative: true,
            tuples: vec![],
        });
        assert_eq!(
            rep.first_tentative_after(SimTime::ZERO),
            Some(SimTime::from_secs(10))
        );
        assert_eq!(rep.first_tentative_after(SimTime::from_secs(11)), None);
        assert_eq!(rep.sink_batches(9).count(), 1);
    }
}
