//! The control plane: online adaptation hooks over a running simulation.
//!
//! [`crate::Simulation::drive`] runs the engine's event loop with a
//! [`ControlPolicy`] in the loop: the policy's hooks fire at every failure
//! event and on a fixed epoch cadence, receive a [`HealthView`] — live
//! per-fault-domain health aggregated from the [`crate::Placement`]'s
//! node → domain mapping with time-decayed failure counts — and return
//! typed [`ControlAction`]s the engine applies:
//!
//! * [`ControlAction::Replan`] re-plans the active-replication set through
//!   `ppa_core::AdaptivePlanner::step` (§V-C's hysteresis) against a
//!   `PlanContext` derived from the placement's *current* node → domain
//!   mapping, then reconciles the running replicas with the adopted plan
//!   (tearing down dropped replicas, spinning up — or re-establishing —
//!   planned ones from checkpoints);
//! * [`ControlAction::MigrateTasks`] evacuates primaries and standbys off
//!   the named fault domains through the placement subsystem
//!   (`plan_evacuation`), with migration cost charged to the recovery
//!   model.
//!
//! Two policies ship: [`StaticPolicy`] (never acts — byte-identical to the
//! legacy run paths, the control-plane no-op baseline) and
//! [`DomainHealthPolicy`] (migrate away from degraded domains and their
//! cascade-threatened neighbours, then re-plan).

use crate::report::{Lifecycle, RunReport};
use ppa_core::model::TaskIndex;
use ppa_faults::{DomainId, FailureTrace, FaultDomainTree};
use ppa_sim::{SimDuration, SimTime};
use std::collections::BTreeSet;

/// A typed instruction from a [`ControlPolicy`] to the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlAction {
    /// Re-plan active replication with this replica budget via
    /// `AdaptivePlanner::step` and reconcile running replicas with the
    /// adopted plan. Only meaningful under `FtMode::Ppa`.
    Replan { budget: usize },
    /// Evacuate live primaries and standbys off the named fault domains
    /// (and re-home replicas with their standbys).
    MigrateTasks { domains: Vec<DomainId> },
}

/// What actually happened when an action was applied — the engine reports
/// these in the [`DriveReport`] so experiments can count interventions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionOutcome {
    /// A `Replan` was adopted: how many replicas were newly established
    /// (including re-established ones lost to failures) and torn down.
    Replanned {
        activated: usize,
        deactivated: usize,
    },
    /// A `MigrateTasks` moved this many primaries and standbys.
    Migrated { primaries: usize, standbys: usize },
    /// The action had no effect, with the reason.
    NoEffect {
        action: &'static str,
        reason: &'static str,
    },
}

/// One applied control action, timestamped in virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionRecord {
    pub at: SimTime,
    pub outcome: ActionOutcome,
}

/// Everything a [`crate::Simulation::drive`] run produces: the ordinary
/// run report, the control actions taken, the CPU the control plane
/// charged for state shipping, the run's metrics, and the failure trace
/// the feed resolved to.
#[derive(Debug, Clone)]
pub struct DriveReport {
    pub report: RunReport,
    /// Applied control actions in virtual-time order.
    pub actions: Vec<ActionRecord>,
    /// CPU charged for control-plane state shipping (migrations and
    /// replica activations), over and above the report's per-task stats.
    pub control_cpu: SimDuration,
    /// Name-ordered snapshot of the run's observability metrics
    /// (counters, gauges, fixed-bucket histograms).
    pub metrics: ppa_obs::MetricsSnapshot,
    /// The failure trace the feed resolved to (replayable).
    pub trace: FailureTrace,
}

impl DriveReport {
    /// Count of applied actions with a given shape.
    pub fn count(&self, f: impl Fn(&ActionOutcome) -> bool) -> usize {
        self.actions.iter().filter(|a| f(&a.outcome)).count()
    }

    /// Total replicas activated across all replans.
    pub fn replicas_activated(&self) -> usize {
        self.actions
            .iter()
            .map(|a| match a.outcome {
                ActionOutcome::Replanned { activated, .. } => activated,
                _ => 0,
            })
            .sum()
    }

    /// Total primaries + standbys moved across all migrations.
    pub fn tasks_migrated(&self) -> usize {
        self.actions
            .iter()
            .map(|a| match a.outcome {
                ActionOutcome::Migrated {
                    primaries,
                    standbys,
                } => primaries + standbys,
                _ => 0,
            })
            .sum()
    }
}

/// Time-decayed per-fault-domain failure scores: each node failure adds 1
/// to every proper domain containing the node, and scores halve every
/// `half_life`. The decayed score is the "how degraded is this blast
/// radius right now" signal a [`HealthView`] exposes to policies.
#[derive(Debug, Clone)]
pub struct DomainHealth {
    half_life: SimDuration,
    scores: Vec<f64>,
    updated: Vec<SimTime>,
}

impl DomainHealth {
    /// A tracker over `n_domains` domains (indexed by [`DomainId`]).
    pub fn new(n_domains: usize, half_life: SimDuration) -> Self {
        assert!(!half_life.is_zero(), "half-life must be positive");
        DomainHealth {
            half_life,
            scores: vec![0.0; n_domains],
            updated: vec![SimTime::ZERO; n_domains],
        }
    }

    fn decay(&self, from: SimTime, to: SimTime) -> f64 {
        let elapsed = to.since(from);
        0.5f64.powf(elapsed.as_secs_f64() / self.half_life.as_secs_f64())
    }

    /// Records one failure under `domain` at `at`.
    pub fn record(&mut self, domain: DomainId, at: SimTime) {
        let d = domain.0;
        self.scores[d] = self.score_at(domain, at) + 1.0;
        self.updated[d] = self.updated[d].max(at);
    }

    /// The decayed score of `domain` at `at` (monotonically non-increasing
    /// between failures).
    pub fn score_at(&self, domain: DomainId, at: SimTime) -> f64 {
        let d = domain.0;
        self.scores[d] * self.decay(self.updated[d], at.max(self.updated[d]))
    }

    /// All scores decayed to `at`, indexed by [`DomainId`].
    pub fn snapshot(&self, at: SimTime) -> Vec<f64> {
        (0..self.scores.len())
            .map(|d| self.score_at(DomainId(d), at))
            .collect()
    }
}

/// A policy's window into the running cluster: the virtual time of the
/// hook, the placement's fault-domain tree (when attached), every
/// domain's time-decayed failure score, and every task's lifecycle state
/// and outage count — re-failures are first-class observations, not
/// something a policy has to reconstruct from node deaths.
pub struct HealthView<'a> {
    now: SimTime,
    tree: Option<&'a FaultDomainTree>,
    /// Decayed score per domain, indexed by [`DomainId`]; empty when the
    /// placement carries no fault-domain mapping.
    scores: Vec<f64>,
    /// Lifecycle state per logical task.
    lifecycles: Vec<Lifecycle>,
    /// Outage-history length per logical task (0 = never failed; ≥ 2 =
    /// the task has re-failed at least once).
    outage_counts: Vec<usize>,
    /// Monotone recovery-setback count (see
    /// [`HealthView::recovery_setbacks`]).
    setbacks: usize,
}

impl<'a> HealthView<'a> {
    pub(crate) fn new(
        now: SimTime,
        tree: Option<&'a FaultDomainTree>,
        scores: Vec<f64>,
        lifecycles: Vec<Lifecycle>,
        outage_counts: Vec<usize>,
        setbacks: usize,
    ) -> Self {
        HealthView {
            now,
            tree,
            scores,
            lifecycles,
            outage_counts,
            setbacks,
        }
    }

    /// Virtual time the hook fired at.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The placement's fault-domain tree, when attached.
    pub fn tree(&self) -> Option<&'a FaultDomainTree> {
        self.tree
    }

    /// The decayed failure score of a domain (0 when unknown).
    pub fn score(&self, domain: DomainId) -> f64 {
        self.scores.get(domain.0).copied().unwrap_or(0.0)
    }

    /// The lifecycle state of a task (`Healthy` when unknown).
    pub fn lifecycle(&self, task: TaskIndex) -> Lifecycle {
        self.lifecycles
            .get(task.0)
            .copied()
            .unwrap_or(Lifecycle::Healthy)
    }

    /// How many outages a task has gone through (0 = never failed).
    pub fn outage_count(&self, task: TaskIndex) -> usize {
        self.outage_counts.get(task.0).copied().unwrap_or(0)
    }

    /// Total re-failures across all tasks — every outage beyond a task's
    /// first.
    pub fn total_refails(&self) -> usize {
        self.outage_counts
            .iter()
            .map(|&c| c.saturating_sub(1))
            .sum()
    }

    /// Monotone count of recovery setbacks: re-failures, deaths that
    /// re-armed an open outage mid-recovery (which do NOT grow the
    /// outage count), and pending takeovers lost to a muted replica's
    /// death. Comparing against the value last acted on is how a policy
    /// detects that *something went backwards* since its last hook, even
    /// inside domains it already evacuated.
    pub fn recovery_setbacks(&self) -> usize {
        self.setbacks
    }

    /// Tasks that failed again after recovering and are still down or
    /// replaying — the honest re-failure set a policy should rescue.
    pub fn refailed_tasks(&self) -> Vec<TaskIndex> {
        self.outage_counts
            .iter()
            .enumerate()
            .filter(|&(t, &c)| c >= 2 && self.lifecycle(TaskIndex(t)) != Lifecycle::Recovered)
            .map(|(t, _)| TaskIndex(t))
            .collect()
    }

    /// Proper domains whose decayed score is at least `threshold`, in
    /// creation order.
    pub fn degraded(&self, threshold: f64) -> Vec<DomainId> {
        let Some(tree) = self.tree else {
            return Vec::new();
        };
        tree.proper_domains()
            .into_iter()
            .filter(|&d| self.score(d) >= threshold)
            .collect()
    }

    /// Siblings of `domain` within creation-order index distance `radius`
    /// — the "next cascade rings" a policy may want to evacuate
    /// preemptively (cascades spread to adjacent siblings first).
    pub fn ring_siblings(&self, domain: DomainId, radius: usize) -> Vec<DomainId> {
        let Some(tree) = self.tree else {
            return Vec::new();
        };
        let Some(parent) = tree.parent_of(domain) else {
            return Vec::new();
        };
        let family = tree.children_of(parent);
        let Some(origin) = family.iter().position(|&d| d == domain) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for d in 1..=radius {
            for idx in [origin.checked_sub(d), origin.checked_add(d)] {
                let Some(idx) = idx else { continue };
                if idx < family.len() && idx != origin {
                    out.push(family[idx]);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// The online-adaptation hook driving a [`crate::Simulation::drive`] run.
///
/// Hooks must be deterministic functions of the views they receive —
/// the repro harness's `--jobs N` byte-identical guarantee extends
/// through the control plane.
pub trait ControlPolicy {
    /// Short name used in run labels ("static", "domain-health", ...).
    fn name(&self) -> &'static str;

    /// Epoch cadence of [`ControlPolicy::on_epoch`]; `None` disables the
    /// epoch hook entirely (the failure hook still fires).
    fn epoch_interval(&self) -> Option<SimDuration> {
        None
    }

    /// Called every epoch with the cluster health at the epoch boundary.
    fn on_epoch(&mut self, view: &HealthView<'_>) -> Vec<ControlAction> {
        let _ = view;
        Vec::new()
    }

    /// Called immediately after every failure event fires.
    fn on_failure(&mut self, view: &HealthView<'_>) -> Vec<ControlAction> {
        let _ = view;
        Vec::new()
    }
}

/// The do-nothing policy: `drive` with it is byte-identical to the legacy
/// `run`/`run_trace` paths (asserted by the parity tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticPolicy;

impl ControlPolicy for StaticPolicy {
    fn name(&self) -> &'static str {
        "static"
    }
}

/// React to degraded fault domains: evacuate them and their nearest
/// cascade rings, then re-plan active replication against the migrated
/// placement.
///
/// On every hook the policy looks for *freshly* degraded domains (decayed
/// score ≥ `threshold`, not yet acted on). For each batch of fresh
/// domains it emits one [`ControlAction::MigrateTasks`] covering the
/// degraded domains plus their ring siblings within `migrate_radius`
/// (cascades spread outward ring by ring, so the nearest neighbours are
/// the likeliest next victims), followed by one [`ControlAction::Replan`]
/// when `replan_budget` is set — re-planning against the post-migration
/// placement re-establishes replicas the burst destroyed and covers the
/// newly exposed domains.
#[derive(Debug, Clone)]
pub struct DomainHealthPolicy {
    /// Decayed score at which a domain counts as degraded.
    pub threshold: f64,
    /// How many rings of siblings to evacuate along with a degraded
    /// domain (0 = only the degraded domain itself).
    pub migrate_radius: usize,
    /// Replica budget for the follow-up re-plan; `None` migrates only.
    pub replan_budget: Option<usize>,
    /// Epoch cadence of the health check (failures also trigger it).
    pub epoch: SimDuration,
    /// Domains already acted on (a domain is evacuated once).
    acted: BTreeSet<DomainId>,
    /// Recovery setbacks already acted on — fresh ones (an activated
    /// replica died, a recovery was knocked back mid-flight) force
    /// another migrate + replan round even inside already-evacuated
    /// domains.
    setbacks_acted: usize,
}

impl DomainHealthPolicy {
    /// Defaults: act on any failure (threshold 1), evacuate one ring of
    /// neighbours, re-plan with `replan_budget`, check every second.
    pub fn new(replan_budget: Option<usize>) -> Self {
        DomainHealthPolicy {
            threshold: 1.0,
            migrate_radius: 1,
            replan_budget,
            epoch: SimDuration::from_secs(1),
            acted: BTreeSet::new(),
            setbacks_acted: 0,
        }
    }

    fn react(&mut self, view: &HealthView<'_>) -> Vec<ControlAction> {
        let fresh: Vec<DomainId> = view
            .degraded(self.threshold)
            .into_iter()
            .filter(|&d| self.acted.insert(d))
            .collect();
        // Recovery setbacks are first-class: an activated replica dying
        // (or a recovery knocked back mid-flight) lands inside domains
        // this policy may already have evacuated, so the fresh-domain
        // filter alone would ignore it forever. A fresh setback forces
        // another round over every currently degraded domain — re-homing
        // the dead standby is what lets the follow-up replan re-establish
        // the task's replica.
        let setbacks = view.recovery_setbacks();
        let knocked_back = setbacks > self.setbacks_acted;
        self.setbacks_acted = setbacks;
        if fresh.is_empty() && !knocked_back {
            return Vec::new();
        }
        let mut targets = fresh.clone();
        for &d in &fresh {
            targets.extend(view.ring_siblings(d, self.migrate_radius));
        }
        if knocked_back {
            // The setback may have landed in an already-acted domain
            // outside the fresh domains' neighbourhood: re-evacuate every
            // currently degraded domain regardless, so the dead standby
            // is re-homed even when the same hook also saw fresh damage.
            targets.extend(view.degraded(self.threshold));
        }
        targets.sort_unstable();
        targets.dedup();
        let mut actions = Vec::new();
        if !targets.is_empty() {
            actions.push(ControlAction::MigrateTasks { domains: targets });
        }
        if let Some(budget) = self.replan_budget {
            actions.push(ControlAction::Replan { budget });
        }
        actions
    }
}

impl ControlPolicy for DomainHealthPolicy {
    fn name(&self) -> &'static str {
        "domain-health"
    }

    fn epoch_interval(&self) -> Option<SimDuration> {
        Some(self.epoch)
    }

    fn on_epoch(&mut self, view: &HealthView<'_>) -> Vec<ControlAction> {
        self.react(view)
    }

    fn on_failure(&mut self, view: &HealthView<'_>) -> Vec<ControlAction> {
        self.react(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_halves_per_half_life() {
        let mut h = DomainHealth::new(3, SimDuration::from_secs(10));
        let d = DomainId(1);
        h.record(d, SimTime::from_secs(100));
        assert_eq!(h.score_at(d, SimTime::from_secs(100)), 1.0);
        let half = h.score_at(d, SimTime::from_secs(110));
        assert!((half - 0.5).abs() < 1e-12, "one half-life halves: {half}");
        // A second failure stacks on the decayed score.
        h.record(d, SimTime::from_secs(110));
        assert!((h.score_at(d, SimTime::from_secs(110)) - 1.5).abs() < 1e-12);
        // Other domains are untouched.
        assert_eq!(h.score_at(DomainId(2), SimTime::from_secs(110)), 0.0);
    }

    #[test]
    fn decay_is_monotone_between_failures() {
        let mut h = DomainHealth::new(2, SimDuration::from_secs(7));
        let d = DomainId(0);
        h.record(d, SimTime::from_secs(40));
        h.record(d, SimTime::from_secs(41));
        let mut prev = f64::INFINITY;
        for s in 41..120 {
            let score = h.score_at(d, SimTime::from_secs(s));
            assert!(score <= prev, "score rose from {prev} to {score} at {s}s");
            assert!(score > 0.0, "decay never reaches zero");
            prev = score;
        }
    }

    #[test]
    fn health_view_flags_degraded_domains_and_rings() {
        let tree = FaultDomainTree::racks(&(0..12).collect::<Vec<_>>(), 3);
        let racks = tree.domains_at_level(1);
        let mut h = DomainHealth::new(tree.n_domains(), SimDuration::from_secs(30));
        for _ in 0..3 {
            h.record(racks[1], SimTime::from_secs(50));
        }
        let view = HealthView::new(
            SimTime::from_secs(50),
            Some(&tree),
            h.snapshot(SimTime::from_secs(50)),
            Vec::new(),
            Vec::new(),
            0,
        );
        assert_eq!(view.degraded(1.0), vec![racks[1]]);
        assert_eq!(view.score(racks[1]), 3.0);
        assert_eq!(
            view.ring_siblings(racks[1], 1),
            vec![racks[0], racks[2]],
            "ring 1 = both adjacent racks"
        );
        assert_eq!(view.ring_siblings(racks[0], 1), vec![racks[1]]);
        assert_eq!(view.now(), SimTime::from_secs(50));
    }

    #[test]
    fn domain_health_policy_acts_once_per_domain() {
        let tree = FaultDomainTree::racks(&(0..12).collect::<Vec<_>>(), 3);
        let racks = tree.domains_at_level(1);
        let mut h = DomainHealth::new(tree.n_domains(), SimDuration::from_secs(30));
        h.record(racks[0], SimTime::from_secs(40));
        let mut policy = DomainHealthPolicy::new(Some(4));
        let view = HealthView::new(
            SimTime::from_secs(40),
            Some(&tree),
            h.snapshot(SimTime::from_secs(40)),
            Vec::new(),
            Vec::new(),
            0,
        );
        let actions = policy.on_failure(&view);
        assert_eq!(actions.len(), 2, "migrate + replan");
        match &actions[0] {
            ControlAction::MigrateTasks { domains } => {
                assert_eq!(domains, &vec![racks[0], racks[1]], "origin + ring 1");
            }
            other => panic!("expected MigrateTasks first, got {other:?}"),
        }
        assert_eq!(actions[1], ControlAction::Replan { budget: 4 });
        // The same degradation does not trigger twice.
        assert!(policy.on_epoch(&view).is_empty());
    }

    #[test]
    fn health_view_exposes_lifecycles_and_refails() {
        let view = HealthView::new(
            SimTime::from_secs(10),
            None,
            Vec::new(),
            vec![
                Lifecycle::Healthy,
                Lifecycle::Recovered,
                Lifecycle::ReFailed,
                Lifecycle::Replaying,
            ],
            vec![0, 2, 3, 1],
            3,
        );
        assert_eq!(view.lifecycle(TaskIndex(0)), Lifecycle::Healthy);
        assert_eq!(view.lifecycle(TaskIndex(2)), Lifecycle::ReFailed);
        // Out-of-range tasks read as healthy, never-failed.
        assert_eq!(view.lifecycle(TaskIndex(99)), Lifecycle::Healthy);
        assert_eq!(view.outage_count(TaskIndex(99)), 0);
        assert_eq!(view.outage_count(TaskIndex(1)), 2);
        // 1 + 2 + 0 outages beyond the respective firsts.
        assert_eq!(view.total_refails(), 3);
        assert_eq!(view.recovery_setbacks(), 3);
        // Task 1 re-failed but already recovered again; task 2 is down in
        // its third outage; task 3 never re-failed.
        assert_eq!(view.refailed_tasks(), vec![TaskIndex(2)]);
    }

    #[test]
    fn fresh_refailure_forces_another_round_in_acted_domains() {
        let tree = FaultDomainTree::racks(&(0..12).collect::<Vec<_>>(), 3);
        let racks = tree.domains_at_level(1);
        let mut h = DomainHealth::new(tree.n_domains(), SimDuration::from_secs(300));
        h.record(racks[0], SimTime::from_secs(40));
        let mut policy = DomainHealthPolicy::new(Some(4));
        policy.migrate_radius = 0;
        let view_at = |at: u64, counts: Vec<usize>, setbacks: usize, h: &DomainHealth| {
            HealthView::new(
                SimTime::from_secs(at),
                Some(&tree),
                h.snapshot(SimTime::from_secs(at)),
                Vec::new(),
                counts,
                setbacks,
            )
        };
        // First failure: the degraded rack is acted on once.
        let acts = policy.on_failure(&view_at(40, vec![1, 0, 0], 0, &h));
        assert_eq!(acts.len(), 2, "migrate + replan: {acts:?}");
        assert!(policy
            .on_epoch(&view_at(41, vec![1, 0, 0], 0, &h))
            .is_empty());
        // A re-failure (task 0's second outage — one recovery setback)
        // lands in the same, already-acted rack: the policy must go again
        // — evacuate the currently degraded domains and re-plan.
        h.record(racks[0], SimTime::from_secs(60));
        let acts = policy.on_failure(&view_at(60, vec![2, 0, 0], 1, &h));
        assert_eq!(
            acts,
            vec![
                ControlAction::MigrateTasks {
                    domains: vec![racks[0]]
                },
                ControlAction::Replan { budget: 4 },
            ],
            "a fresh re-failure re-arms the acted domains"
        );
        // The same setback does not trigger twice.
        assert!(policy
            .on_epoch(&view_at(61, vec![2, 0, 0], 1, &h))
            .is_empty());
        // A hook seeing BOTH fresh damage (rack 1) and another setback in
        // the already-acted rack 0 must cover both: the fresh domain's
        // neighbourhood AND every degraded acted domain. A mid-recovery
        // death re-arms the open record — outage counts stay flat, only
        // the setback counter moves — and must still trigger.
        h.record(racks[0], SimTime::from_secs(70));
        h.record(racks[1], SimTime::from_secs(70));
        let acts = policy.on_failure(&view_at(70, vec![2, 0, 0], 2, &h));
        assert_eq!(
            acts[0],
            ControlAction::MigrateTasks {
                domains: vec![racks[0], racks[1]]
            },
            "fresh rack 1 + re-evacuated rack 0: {acts:?}"
        );
    }

    #[test]
    fn static_policy_never_acts() {
        let mut p = StaticPolicy;
        let view = HealthView::new(SimTime::ZERO, None, Vec::new(), Vec::new(), Vec::new(), 0);
        assert!(p.on_epoch(&view).is_empty());
        assert!(p.on_failure(&view).is_empty());
        assert!(p.epoch_interval().is_none());
        assert_eq!(p.name(), "static");
    }
}
