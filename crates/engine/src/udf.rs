//! User-defined functions and source generators.
//!
//! Operators in MPSPEs are opaque user code (§III-A); the engine only needs
//! to run them batch-at-a-time, snapshot their state for checkpoints, and
//! know a state-size proxy for checkpoint/restore cost accounting.

use crate::tuple::Tuple;
use ppa_sim::SimTime;

/// Context handed to a UDF for each batch.
#[derive(Debug, Clone, Copy)]
pub struct BatchCtx {
    /// The batch id being processed (batch `b` covers virtual time
    /// `[b·B, (b+1)·B)`).
    pub batch: u64,
    /// Virtual time at which processing starts.
    pub now: SimTime,
    /// Local index of this task within its operator.
    pub task_local: usize,
    /// Parallelism of this operator.
    pub parallelism: usize,
}

/// One input stream's merged tuples for a batch.
///
/// `stream` is the input-stream index (one per upstream operator, in task
/// graph order); tuples from the stream's substreams are merged
/// round-robin, so a replica observes the identical sequence as its primary
/// (§V-B's deterministic batch processing).
#[derive(Debug)]
pub struct InputBatch<'a> {
    pub stream: usize,
    pub tuples: &'a [Tuple],
}

/// A user-defined operator function.
///
/// Implementations must be deterministic given the same input sequence —
/// active replication and checkpoint replay both rely on it.
pub trait Udf: Send {
    /// Processes one batch, appending output tuples to `out`.
    fn on_batch(&mut self, ctx: &BatchCtx, inputs: &[InputBatch<'_>], out: &mut Vec<Tuple>);

    /// Snapshots the full operator state (for checkpoints and replicas).
    fn snapshot(&self) -> Box<dyn Udf>;

    /// Approximate state size in tuples, used to cost checkpoints/restores.
    fn state_tuples(&self) -> usize;
}

/// A source-task generator.
///
/// Generation must be a deterministic function of the batch id (derive any
/// randomness from `(seed, task, batch)`), which makes source recovery and
/// Storm-style source replay trivially consistent: regenerating a batch
/// yields the identical tuples.
pub trait SourceGen: Send {
    /// The tuples this source task emits for batch `batch`.
    fn batch(&mut self, batch: u64) -> Vec<Tuple>;
}

/// A stateless map UDF built from a function; handy for tests and examples.
pub struct MapUdf<F: Fn(&Tuple) -> Option<Tuple> + Clone + Send + 'static> {
    f: F,
}

impl<F: Fn(&Tuple) -> Option<Tuple> + Clone + Send + 'static> MapUdf<F> {
    pub fn new(f: F) -> Self {
        MapUdf { f }
    }
}

impl<F: Fn(&Tuple) -> Option<Tuple> + Clone + Send + 'static> Udf for MapUdf<F> {
    fn on_batch(&mut self, _ctx: &BatchCtx, inputs: &[InputBatch<'_>], out: &mut Vec<Tuple>) {
        for input in inputs {
            for t in input.tuples {
                if let Some(o) = (self.f)(t) {
                    out.push(o);
                }
            }
        }
    }

    fn snapshot(&self) -> Box<dyn Udf> {
        Box::new(MapUdf { f: self.f.clone() })
    }

    fn state_tuples(&self) -> usize {
        0
    }
}

/// A fixed-rate source emitting `rate` key-only tuples per batch, with keys
/// drawn deterministically from `(seed, task, batch, i)`; used by tests and
/// the quickstart example.
#[derive(Debug, Clone)]
pub struct CountingSource {
    pub per_batch: usize,
    pub seed: u64,
    pub key_space: u64,
}

impl SourceGen for CountingSource {
    fn batch(&mut self, batch: u64) -> Vec<Tuple> {
        (0..self.per_batch)
            .map(|i| {
                let h =
                    crate::tuple::hash_key(self.seed ^ batch.wrapping_mul(0x9E37_79B9) ^ i as u64);
                Tuple::key_only(h % self.key_space)
            })
            .collect()
    }
}

/// A sliding window of per-batch tuple counts — the building block for
/// windowed UDFs. Stores whole batches as refcounted chunks so snapshots
/// are cheap while `state_tuples` still reflects the real window volume.
#[derive(Debug, Clone, Default)]
pub struct WindowBuffer {
    batches: std::collections::VecDeque<(u64, std::sync::Arc<Vec<Tuple>>)>,
    tuples: usize,
}

impl WindowBuffer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a batch and evicts batches older than `window_batches`.
    pub fn push(&mut self, batch: u64, tuples: Vec<Tuple>, window_batches: u64) {
        self.tuples += tuples.len();
        self.batches.push_back((batch, std::sync::Arc::new(tuples)));
        let min_keep = batch.saturating_sub(window_batches.saturating_sub(1));
        while let Some((b, _)) = self.batches.front() {
            if *b < min_keep {
                let (_, dropped) = self.batches.pop_front().unwrap();
                self.tuples -= dropped.len();
            } else {
                break;
            }
        }
    }

    /// Number of tuples currently inside the window.
    pub fn len_tuples(&self) -> usize {
        self.tuples
    }

    /// Iterates over the window's batches, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[Tuple])> {
        self.batches.iter().map(|(b, v)| (*b, v.as_slice()))
    }

    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Value;

    #[test]
    fn map_udf_filters_and_transforms() {
        let mut udf = MapUdf::new(|t: &Tuple| {
            t.key
                .is_multiple_of(2)
                .then(|| Tuple::new(t.key, Value::Int(1)))
        });
        let tuples: Vec<Tuple> = (0..6).map(Tuple::key_only).collect();
        let mut out = Vec::new();
        let ctx = BatchCtx {
            batch: 0,
            now: SimTime::ZERO,
            task_local: 0,
            parallelism: 1,
        };
        udf.on_batch(
            &ctx,
            &[InputBatch {
                stream: 0,
                tuples: &tuples,
            }],
            &mut out,
        );
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|t| t.key % 2 == 0));
    }

    #[test]
    fn counting_source_is_deterministic_per_batch() {
        let mut a = CountingSource {
            per_batch: 100,
            seed: 7,
            key_space: 50,
        };
        let mut b = CountingSource {
            per_batch: 100,
            seed: 7,
            key_space: 50,
        };
        assert_eq!(a.batch(3), b.batch(3));
        assert_ne!(
            a.batch(3),
            a.batch(4),
            "different batches yield different data"
        );
    }

    #[test]
    fn window_buffer_evicts_old_batches() {
        let mut w = WindowBuffer::new();
        for b in 0..10u64 {
            w.push(b, vec![Tuple::key_only(b); 5], 3);
        }
        assert_eq!(w.len_tuples(), 15, "3 batches × 5 tuples");
        let batches: Vec<u64> = w.iter().map(|(b, _)| b).collect();
        assert_eq!(batches, vec![7, 8, 9]);
    }

    #[test]
    fn window_buffer_snapshot_is_cheap_but_counts_state() {
        let mut w = WindowBuffer::new();
        w.push(0, vec![Tuple::key_only(1); 1000], 10);
        let snap = w.clone();
        assert_eq!(snap.len_tuples(), 1000);
    }
}
