//! Divergence-bounded ("approximate") state backup — the third recovery
//! family next to active replication and interval checkpoints (AF-Stream,
//! Cheng, Huang & Lee).
//!
//! Instead of shipping a snapshot every checkpoint interval, a stateful
//! task accumulates *divergence* — a measure of how far its live state has
//! drifted from the last shipped backup — and ships only when the drift
//! reaches the configured `error_bound`. Recovery is lossy: the task
//! restores the last shipped snapshot and jumps to the current frontier
//! without replaying the gap, forfeiting at most one bound's worth of
//! state drift plus the un-replayed batches, which the engine records as
//! the outage's fidelity floor.
//!
//! Drift is measured in *input tuples absorbed* since the last shipped
//! backup: every tuple folded into operator state moves the live state
//! away from the snapshot by at most itself, so the tuple count is a
//! conservative, deterministic, workload-independent drift bound.

/// Per-task divergence accumulator. Lane-local: only the owning task's
/// lane mutates it, so the sharded executor needs no synchronization.
#[derive(Debug, Clone, Default)]
pub struct DivergenceModel {
    /// Drift (input tuples absorbed) since the last shipped backup.
    drift: u64,
    /// Batch-processing points that checked the bound and did not ship.
    skipped: u64,
    /// A ship event is staged but has not fired yet (prevents a burst of
    /// batches from staging duplicate ships before the first completes).
    armed: bool,
}

impl DivergenceModel {
    pub fn new() -> Self {
        DivergenceModel::default()
    }

    /// Folds one processed batch into the drift and decides whether a
    /// backup must ship: returns `true` exactly when the accumulated
    /// drift reached `bound` and no ship is already in flight. A `false`
    /// return is a *skip* — a backup a fixed-interval scheme might have
    /// shipped here, avoided because the drift is still within bound.
    pub fn absorb(&mut self, tuples: u64, bound: u64) -> bool {
        self.drift += tuples;
        if !self.armed && self.drift >= bound.max(1) {
            self.armed = true;
            true
        } else {
            self.skipped += 1;
            false
        }
    }

    /// Un-shipped drift accumulated so far — the state a failure at this
    /// instant would forfeit under lossy recovery.
    pub fn pending(&self) -> u64 {
        self.drift
    }

    /// Whether a staged ship is in flight. A ship event arriving while
    /// disarmed is stale (the task died or restored in between) and must
    /// not fire.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Bound-check points that decided not to ship.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// The staged ship completed: the snapshot now covers every absorbed
    /// tuple. Returns the drift the backup covered.
    pub fn shipped(&mut self) -> u64 {
        let covered = self.drift;
        self.drift = 0;
        self.armed = false;
        covered
    }

    /// The task restored from its last shipped snapshot (lossy recovery)
    /// or died before a staged ship fired: live state equals the snapshot
    /// again, so the drift restarts from zero.
    pub fn reset(&mut self) {
        self.drift = 0;
        self.armed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ships_exactly_when_drift_reaches_the_bound() {
        let mut m = DivergenceModel::new();
        assert!(!m.absorb(40, 100));
        assert!(!m.absorb(40, 100));
        assert!(m.absorb(40, 100), "120 >= 100 must arm a ship");
        assert_eq!(m.pending(), 120);
        assert_eq!(m.skipped(), 2);
        // Armed: further drift accumulates without duplicate ships.
        assert!(!m.absorb(10, 100));
        assert_eq!(m.shipped(), 130);
        assert_eq!(m.pending(), 0);
    }

    #[test]
    fn a_zero_bound_ships_every_batch() {
        // `FtMode::approximate` normalizes bound 0 to the exact
        // checkpoint protocol before the model is ever consulted; if a
        // caller constructs the mode literally, bound 0 degrades to
        // continuous backup rather than dividing by zero.
        let mut m = DivergenceModel::new();
        assert!(m.absorb(1, 0));
        m.shipped();
        assert!(m.absorb(1, 0));
    }

    #[test]
    fn reset_clears_drift_and_arm() {
        let mut m = DivergenceModel::new();
        assert!(m.absorb(10, 5));
        m.reset();
        assert_eq!(m.pending(), 0);
        // Disarmed: the next crossing arms a fresh ship.
        assert!(m.absorb(10, 5));
    }

    /// Property (a) of the approximate contract, at the model level: over
    /// random seeded update streams, the drift carried *between* shipped
    /// backups never exceeds the bound — every crossing arms a ship at
    /// the crossing instant.
    #[test]
    fn drift_between_ships_never_exceeds_the_bound() {
        use rand::{Rng, SeedableRng};
        for seed in 0..32u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let bound = rng.gen_range(1..500u64);
            let mut m = DivergenceModel::new();
            let mut carried = 0u64;
            for _ in 0..200 {
                let tuples = rng.gen_range(0..120u64);
                if m.absorb(tuples, bound) {
                    assert!(
                        m.pending() >= bound,
                        "ship armed below the bound (seed {seed})"
                    );
                    m.shipped();
                }
                carried = m.pending();
                assert!(
                    carried < bound,
                    "carried drift {carried} >= bound {bound} between ships (seed {seed})"
                );
            }
            let _ = carried;
        }
    }
}
