//! Executable queries: a `ppa-core` topology plus the UDF and source
//! factories that instantiate per-task runtime logic.

use crate::udf::{SourceGen, Udf};
use ppa_core::model::{OperatorId, OperatorSpec, Partitioning, Topology, TopologyBuilder};
use ppa_core::{CoreError, Result};

/// Factory producing a task's source generator, given the task-local index.
///
/// `Send + Sync` so a built [`Query`] can be shared across the experiment
/// harness's worker threads.
pub type SourceFactory = Box<dyn Fn(usize) -> Box<dyn SourceGen> + Send + Sync>;
/// Factory producing a task's UDF, given the task-local index.
pub type UdfFactory = Box<dyn Fn(usize) -> Box<dyn Udf> + Send + Sync>;

/// An executable query: topology + per-operator factories.
pub struct Query {
    topology: Topology,
    sources: Vec<Option<SourceFactory>>,
    udfs: Vec<Option<UdfFactory>>,
}

impl Query {
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Instantiates the source generator for a source task.
    pub fn make_source(&self, op: OperatorId, task_local: usize) -> Box<dyn SourceGen> {
        let f = self.sources[op.0]
            .as_ref()
            .unwrap_or_else(|| panic!("operator {op} has no source factory"));
        f(task_local)
    }

    /// Instantiates the UDF for a non-source task.
    pub fn make_udf(&self, op: OperatorId, task_local: usize) -> Box<dyn Udf> {
        let f = self.udfs[op.0]
            .as_ref()
            .unwrap_or_else(|| panic!("operator {op} has no UDF factory"));
        f(task_local)
    }

    pub fn is_source(&self, op: OperatorId) -> bool {
        self.sources[op.0].is_some()
    }
}

/// Builder mirroring [`TopologyBuilder`] with factories attached.
#[derive(Default)]
pub struct QueryBuilder {
    topology: TopologyBuilder,
    sources: Vec<Option<SourceFactory>>,
    udfs: Vec<Option<UdfFactory>>,
}

impl QueryBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a source operator with its generator factory.
    pub fn add_source(
        &mut self,
        spec: OperatorSpec,
        factory: impl Fn(usize) -> Box<dyn SourceGen> + Send + Sync + 'static,
    ) -> OperatorId {
        let id = self.topology.add_operator(spec);
        self.sources.push(Some(Box::new(factory)));
        self.udfs.push(None);
        id
    }

    /// Adds a processing operator with its UDF factory.
    pub fn add_operator(
        &mut self,
        spec: OperatorSpec,
        factory: impl Fn(usize) -> Box<dyn Udf> + Send + Sync + 'static,
    ) -> OperatorId {
        let id = self.topology.add_operator(spec);
        self.sources.push(None);
        self.udfs.push(Some(Box::new(factory)));
        id
    }

    /// Connects two operators (see [`TopologyBuilder::connect`]).
    pub fn connect(
        &mut self,
        from: OperatorId,
        to: OperatorId,
        partitioning: Partitioning,
    ) -> Result<()> {
        self.topology.connect(from, to, partitioning)?;
        Ok(())
    }

    /// Validates and freezes the query.
    pub fn build(self) -> Result<Query> {
        let topology = self.topology.build()?;
        // Factories must agree with the graph's source classification.
        for (i, op) in topology.operators().iter().enumerate() {
            let has_source_factory = self.sources[i].is_some();
            if op.is_source() != has_source_factory {
                return Err(CoreError::SourceRate {
                    operator: i,
                    is_source: op.is_source(),
                });
            }
        }
        Ok(Query {
            topology,
            sources: self.sources,
            udfs: self.udfs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use crate::udf::{CountingSource, MapUdf};

    fn tiny_query() -> Query {
        let mut q = QueryBuilder::new();
        let s = q.add_source(OperatorSpec::source("src", 2, 100.0), |task| {
            Box::new(CountingSource {
                per_batch: 100,
                seed: task as u64,
                key_space: 64,
            })
        });
        let m = q.add_operator(OperatorSpec::map("map", 1, 1.0), |_| {
            Box::new(MapUdf::new(|t: &Tuple| Some(t.clone())))
        });
        q.connect(s, m, Partitioning::Merge).unwrap();
        q.build().unwrap()
    }

    #[test]
    fn builds_and_instantiates() {
        let q = tiny_query();
        assert_eq!(q.topology().n_operators(), 2);
        assert!(q.is_source(OperatorId(0)));
        assert!(!q.is_source(OperatorId(1)));
        let mut src = q.make_source(OperatorId(0), 0);
        assert_eq!(src.batch(0).len(), 100);
        let _udf = q.make_udf(OperatorId(1), 0);
    }

    #[test]
    fn source_factories_differ_per_task() {
        let q = tiny_query();
        let mut a = q.make_source(OperatorId(0), 0);
        let mut b = q.make_source(OperatorId(0), 1);
        assert_ne!(a.batch(0), b.batch(0), "different seeds per task");
    }

    #[test]
    #[should_panic(expected = "no source factory")]
    fn make_source_on_non_source_panics() {
        let q = tiny_query();
        let _ = q.make_source(OperatorId(1), 0);
    }
}
