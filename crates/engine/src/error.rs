//! Typed engine errors.
//!
//! Malformed failure injections used to abort deep inside the event loop
//! (an out-of-range node index panicked on the `node_alive` table); they
//! now surface as [`EngineError`]s at injection time, naming exactly what
//! was wrong — the [`crate::FaultFeed`] validates every event centrally
//! before the run starts.

use crate::placement::{NodeId, PlacementError};
use ppa_sim::SimTime;
use std::fmt;

/// Why a failure injection (or a control-plane drive) was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A failure event names a node the cluster does not have.
    NodeOutOfRange { node: NodeId, n_nodes: usize },
    /// A failure event is scheduled before the simulation's current
    /// virtual time — replaying it would rewrite history.
    EventInPast { at: SimTime, now: SimTime },
    /// A failure event names a node that is already dead at injection
    /// time (e.g. the node an activated replica died on). Killing it
    /// again would silently no-op at fire time; the caller almost
    /// certainly meant a different node.
    NodeAlreadyDead { node: NodeId },
    /// A failure or chaos event is scheduled past the run's declared
    /// horizon (see `Simulation::set_horizon`). Such an event would never
    /// fire; silently accepting it hides a mis-built schedule, so the
    /// injection is rejected up front instead.
    EventPastHorizon { at: SimTime, horizon: SimTime },
    /// A feed entry (domain kill, generative process) needs the
    /// placement's fault-domain mapping, or the mapping rejected it.
    Placement(PlacementError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NodeOutOfRange { node, n_nodes } => write!(
                f,
                "failure event names node {node} but the cluster has only {n_nodes} node(s)"
            ),
            EngineError::EventInPast { at, now } => write!(
                f,
                "failure event at {at} is before the simulation's current time {now}"
            ),
            EngineError::NodeAlreadyDead { node } => write!(
                f,
                "failure event names node {node}, which is already dead at injection time"
            ),
            EngineError::EventPastHorizon { at, horizon } => write!(
                f,
                "event at {at} is past the run horizon {horizon} and would never fire"
            ),
            EngineError::Placement(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Placement(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlacementError> for EngineError {
    fn from(e: PlacementError) -> Self {
        EngineError::Placement(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_name_the_offender() {
        let e = EngineError::NodeOutOfRange {
            node: 99,
            n_nodes: 12,
        };
        let msg = e.to_string();
        assert!(msg.contains("node 99"), "{msg}");
        assert!(msg.contains("12 node(s)"), "{msg}");
        let e = EngineError::EventInPast {
            at: SimTime::from_secs(3),
            now: SimTime::from_secs(7),
        };
        assert!(e.to_string().contains("3.000s"), "{e}");
        let e = EngineError::NodeAlreadyDead { node: 7 };
        assert!(e.to_string().contains("node 7"), "{e}");
        assert!(e.to_string().contains("already dead"), "{e}");
        let e = EngineError::EventPastHorizon {
            at: SimTime::from_secs(95),
            horizon: SimTime::from_secs(90),
        };
        assert!(e.to_string().contains("95.000s"), "{e}");
        assert!(e.to_string().contains("horizon 90.000s"), "{e}");
        let e = EngineError::from(PlacementError::NoFaultDomains);
        assert!(e.to_string().contains("fault-domain"), "{e}");
    }
}
