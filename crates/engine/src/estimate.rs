//! Analytical recovery-latency estimates — the capacity-planning companion
//! to the simulator. Given the cost model and a task's steady rates, predict
//! what Fig. 7/8 measure, without running anything.
//!
//! The replay model: recovery latency is measured until the task restores
//! its **pre-failure** progress (§VI) — a fixed target, so there is no race
//! against live arrivals. A restored task must reprocess
//! `checkpoint_age` seconds of data; replaying one second of data costs
//! `k = input_rate × replay_per_tuple + batch_overhead` seconds of CPU:
//!
//! ```text
//! T = state_load + checkpoint_age · k          (feasible while k < 1)
//! ```
//!
//! `k ≥ 1` still means the task can never rejoin the live frontier after
//! recovering, which [`max_recoverable_rate`] exposes as an admission bound.
//! Estimates ignore second-order effects the simulator does model (network
//! latency, batch quantization, neighbour synchronization); tests assert
//! agreement with the simulator within a factor of two.

use crate::config::CostModel;
use ppa_sim::SimDuration;

/// Steady-state description of one task for estimation purposes.
#[derive(Debug, Clone, Copy)]
pub struct TaskProfile {
    /// Input rate in tuples/s.
    pub input_rate: f64,
    /// Output rate in tuples/s (for replica resend volume).
    pub output_rate: f64,
    /// Window state size in tuples (≈ window_secs × input_rate).
    pub state_tuples: f64,
}

impl TaskProfile {
    /// Profile of a windowed operator from its rates and window length.
    pub fn windowed(input_rate: f64, selectivity: f64, window_secs: f64) -> Self {
        TaskProfile {
            input_rate,
            output_rate: input_rate * selectivity,
            state_tuples: input_rate * window_secs,
        }
    }
}

/// Fraction of a second of CPU needed per second of replayed data.
fn replay_load(costs: &CostModel, input_rate: f64) -> f64 {
    input_rate * costs.replay_per_tuple.as_micros() as f64 / 1e6
        + costs.batch_overhead.as_micros() as f64 / 1e6
}

/// Expected checkpoint-restore recovery latency (detection → progress
/// restored) for a task with mean checkpoint age `checkpoint_interval / 2`.
///
/// Returns `None` when the replay load `k ≥ 1`: the task can never catch up
/// under this cost model — exactly the capacity check an operator wants
/// before picking a checkpoint interval.
pub fn checkpoint_recovery(
    costs: &CostModel,
    profile: &TaskProfile,
    checkpoint_interval: SimDuration,
) -> Option<SimDuration> {
    checkpoint_recovery_with_age(
        costs,
        profile,
        SimDuration::from_secs_f64(checkpoint_interval.as_secs_f64() / 2.0),
    )
}

/// Like [`checkpoint_recovery`], but with the exact checkpoint age at the
/// failure instant instead of the expected `interval / 2`.
pub fn checkpoint_recovery_with_age(
    costs: &CostModel,
    profile: &TaskProfile,
    checkpoint_age: SimDuration,
) -> Option<SimDuration> {
    let k = replay_load(costs, profile.input_rate);
    if k >= 1.0 {
        return None;
    }
    let load_secs = profile.state_tuples * costs.state_load_per_tuple.as_micros() as f64 / 1e6;
    let t = load_secs + checkpoint_age.as_secs_f64() * k;
    Some(SimDuration::from_secs_f64(t.max(0.0)))
}

/// Expected active-replica takeover latency: re-send the output buffered
/// since the last sync, plus a batch of slack.
pub fn active_takeover(
    costs: &CostModel,
    profile: &TaskProfile,
    sync_interval: SimDuration,
) -> SimDuration {
    let buffered = profile.output_rate * sync_interval.as_secs_f64();
    let resend = buffered * costs.resend_per_tuple.as_micros() as f64 / 1e6;
    SimDuration::from_secs_f64(resend) + costs.batch_overhead + costs.network_latency
}

/// Expected Storm source-replay latency for a task `depth` hops from the
/// sources: every hop reprocesses the window's worth of its input.
pub fn storm_replay(
    costs: &CostModel,
    profile: &TaskProfile,
    window: SimDuration,
    depth: usize,
) -> Option<SimDuration> {
    let k = replay_load(costs, profile.input_rate);
    if k >= 1.0 {
        return None;
    }
    let per_hop = window.as_secs_f64() * k;
    // Hops replay in a pipeline; the end-to-end rebuild is dominated by the
    // sum of per-stage reprocessing for the window prefix.
    let t = per_hop * depth as f64;
    Some(SimDuration::from_secs_f64(t))
}

/// Expected approximate (lossy) recovery latency: load the last shipped
/// snapshot, jump to the frontier — **no replay term at all**, which is
/// the family's whole advantage. The divergence cadence
/// ([`ppa_core::BackupCadence::Divergence`]) governs how *stale* that
/// snapshot is, not how long the restore takes; the staleness resurfaces
/// as forfeited fidelity, not latency. Always feasible: with no replay
/// there is no `k < 1` admission bound.
pub fn approximate_recovery(costs: &CostModel, profile: &TaskProfile) -> SimDuration {
    let load_secs = profile.state_tuples * costs.state_load_per_tuple.as_micros() as f64 / 1e6;
    SimDuration::from_secs_f64(load_secs.max(0.0)) + costs.batch_overhead
}

/// The largest input rate a task can catch up from at all (k < 1) under
/// this cost model — the admission bound for passive recovery.
pub fn max_recoverable_rate(costs: &CostModel) -> f64 {
    let oh = costs.batch_overhead.as_micros() as f64 / 1e6;
    let per_tuple = costs.replay_per_tuple.as_micros() as f64 / 1e6;
    if per_tuple <= 0.0 {
        return f64::INFINITY;
    }
    ((1.0 - oh) / per_tuple).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EngineConfig, FtMode};
    use crate::placement::Placement;
    use crate::runtime::{FailureSpec, Simulation};
    use crate::tuple::Tuple;
    use crate::udf::{BatchCtx, CountingSource, InputBatch, Udf, WindowBuffer};
    use ppa_core::model::{OperatorSpec, Partitioning};
    use ppa_sim::SimTime;

    #[derive(Clone)]
    struct Windowed {
        w: u64,
        buf: WindowBuffer,
    }

    impl Udf for Windowed {
        fn on_batch(&mut self, ctx: &BatchCtx, inputs: &[InputBatch<'_>], out: &mut Vec<Tuple>) {
            let mut all = Vec::new();
            for i in inputs {
                all.extend_from_slice(i.tuples);
            }
            out.extend(all.iter().cloned());
            self.buf.push(ctx.batch, all, self.w);
        }
        fn snapshot(&self) -> Box<dyn Udf> {
            Box::new(self.clone())
        }
        fn state_tuples(&self) -> usize {
            self.buf.len_tuples()
        }
    }

    /// Measure an actual checkpoint recovery and compare to the estimate.
    #[test]
    fn estimate_matches_simulation_within_2x() {
        let per_batch = 600usize;
        let window = 10u64;
        let interval = SimDuration::from_secs(20);

        let mut q = crate::query::QueryBuilder::new();
        let s = q.add_source(
            OperatorSpec::source("s", 2, per_batch as f64),
            move |task| {
                Box::new(CountingSource {
                    per_batch,
                    seed: task as u64,
                    key_space: 64,
                })
            },
        );
        let m = q.add_operator(OperatorSpec::map("m", 1, 1.0), move |_| {
            Box::new(Windowed {
                w: window,
                buf: WindowBuffer::new(),
            })
        });
        q.connect(s, m, Partitioning::Merge).unwrap();
        let q = q.build().unwrap();
        let placement = Placement::explicit(vec![0, 1, 2], vec![3, 4, 5], 3, 3).unwrap();

        let report = Simulation::run(
            &q,
            placement,
            EngineConfig {
                mode: FtMode::checkpoint(3, interval),
                ..EngineConfig::default()
            },
            vec![FailureSpec {
                at: SimTime::from_secs(51),
                nodes: vec![2],
            }],
            SimDuration::from_secs(160),
        );
        let measured = report.recoveries[0]
            .latency()
            .expect("recovers")
            .as_secs_f64();

        let costs = crate::config::CostModel::default();
        let profile = TaskProfile::windowed(2.0 * per_batch as f64, 1.0, window as f64);
        // Reconstruct the actual checkpoint age of task 2 at the failure
        // instant (checkpoints are staggered exactly as the engine does it).
        let offset_us = 2u64.wrapping_mul(2_654_435_761) % interval.as_micros();
        let first_cp = interval.as_secs_f64() + offset_us as f64 / 1e6;
        let fail = 51.0;
        let mut last_cp = first_cp;
        while last_cp + interval.as_secs_f64() < fail {
            last_cp += interval.as_secs_f64();
        }
        let age = SimDuration::from_secs_f64(fail - last_cp);
        let estimate = checkpoint_recovery_with_age(&costs, &profile, age)
            .expect("feasible")
            .as_secs_f64();
        assert!(
            estimate / measured < 2.0 && measured / estimate < 2.0,
            "estimate {estimate:.2}s vs measured {measured:.2}s"
        );
    }

    #[test]
    fn active_estimate_is_small_and_grows_with_sync() {
        let costs = crate::config::CostModel::default();
        let profile = TaskProfile::windowed(2_000.0, 0.5, 30.0);
        let fast = active_takeover(&costs, &profile, SimDuration::from_secs(5));
        let slow = active_takeover(&costs, &profile, SimDuration::from_secs(30));
        assert!(fast < slow);
        assert!(
            slow < SimDuration::from_secs(2),
            "takeover stays sub-second-ish: {slow}"
        );
    }

    #[test]
    fn infeasible_rates_are_rejected() {
        let costs = crate::config::CostModel::default();
        let bound = max_recoverable_rate(&costs);
        let over = TaskProfile::windowed(bound * 1.2, 1.0, 10.0);
        assert!(checkpoint_recovery(&costs, &over, SimDuration::from_secs(5)).is_none());
        assert!(storm_replay(&costs, &over, SimDuration::from_secs(10), 2).is_none());
        let under = TaskProfile::windowed(bound * 0.5, 1.0, 10.0);
        assert!(checkpoint_recovery(&costs, &under, SimDuration::from_secs(5)).is_some());
    }

    #[test]
    fn estimates_reproduce_figure_orderings() {
        let costs = crate::config::CostModel::default();
        let profile = TaskProfile::windowed(4_000.0, 0.5, 30.0);
        // Fig. 7/8: active < checkpoint, and checkpoint grows with interval.
        let active = active_takeover(&costs, &profile, SimDuration::from_secs(5));
        let cp5 = checkpoint_recovery(&costs, &profile, SimDuration::from_secs(5)).unwrap();
        let cp30 = checkpoint_recovery(&costs, &profile, SimDuration::from_secs(30)).unwrap();
        assert!(active < cp5 && cp5 < cp30);
        // Approximate sits between: the same restore load, none of the
        // replay — and unlike the exact estimate it never goes infeasible.
        let approx = approximate_recovery(&costs, &profile);
        assert!(active < approx && approx < cp5);
        let over = TaskProfile::windowed(max_recoverable_rate(&costs) * 1.2, 1.0, 10.0);
        assert!(checkpoint_recovery(&costs, &over, SimDuration::from_secs(5)).is_none());
        assert!(approximate_recovery(&costs, &over) > SimDuration::ZERO);
        // The planner-side cadence model agrees on the CPU side: matched
        // drift makes the families equally expensive, lower drift makes
        // approximate strictly cheaper.
        let matched = ppa_core::BackupCadence::Divergence {
            error_bound: 20_000,
            drift_rate_per_sec: profile.input_rate,
        };
        let timer = ppa_core::BackupCadence::Interval { interval_secs: 5.0 };
        assert!((matched.backups_per_sec() - timer.backups_per_sec()).abs() < 1e-9);
        let cold = ppa_core::BackupCadence::Divergence {
            error_bound: 20_000,
            drift_rate_per_sec: profile.input_rate / 10.0,
        };
        assert!(cold.backups_per_sec() < timer.backups_per_sec());
        // Storm grows with window and depth.
        let s10 = storm_replay(&costs, &profile, SimDuration::from_secs(10), 2).unwrap();
        let s30 = storm_replay(&costs, &profile, SimDuration::from_secs(30), 2).unwrap();
        let deep = storm_replay(&costs, &profile, SimDuration::from_secs(30), 4).unwrap();
        assert!(s10 < s30 && s30 < deep);
    }
}
