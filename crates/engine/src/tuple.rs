//! Data items: key–value tuples (§II-A).
//!
//! The paper models a data item as a key plus an opaque value blob. We keep
//! keys as 64-bit integers (workloads hash their natural keys into them) and
//! values as a small enum covering what the evaluation workloads carry.

use std::sync::Arc;

/// Tuple key. The engine partitions substreams by `Key` hash.
pub type Key = u64;

/// Value payloads used by the evaluation workloads.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Pure presence (e.g. an access-log hit).
    Empty,
    /// A counter or id.
    Int(i64),
    /// A measurement (e.g. vehicle speed).
    Float(f64),
    /// Two related integers (e.g. user id + speed).
    Pair(i64, i64),
    /// A small aggregate: (key, count) pairs, e.g. a top-k digest.
    Counts(Arc<[(u64, i64)]>),
}

impl Value {
    /// Integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float payload, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Pair payload, if this is a `Pair`.
    pub fn as_pair(&self) -> Option<(i64, i64)> {
        match self {
            Value::Pair(a, b) => Some((*a, *b)),
            _ => None,
        }
    }

    /// Counts payload, if this is a `Counts`.
    pub fn as_counts(&self) -> Option<&[(u64, i64)]> {
        match self {
            Value::Counts(c) => Some(c),
            _ => None,
        }
    }
}

/// One data item flowing through the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    pub key: Key,
    pub value: Value,
}

impl Tuple {
    pub fn new(key: Key, value: Value) -> Self {
        Tuple { key, value }
    }

    /// A key-only tuple.
    pub fn key_only(key: Key) -> Self {
        Tuple {
            key,
            value: Value::Empty,
        }
    }
}

/// The deterministic key hash used for substream partitioning.
///
/// SplitMix64: fast, well mixed, and stable across platforms — partitioning
/// must agree between a primary and its replica and across runs.
#[inline]
pub fn hash_key(key: Key) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Index of the target that `key` routes to among `n` targets.
#[inline]
pub fn route(key: Key, n: usize) -> usize {
    debug_assert!(n > 0);
    (hash_key(key) % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Tuple::new(1, Value::Int(5)).value.as_int(), Some(5));
        assert_eq!(Tuple::key_only(2).value, Value::Empty);
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Pair(3, 4).as_pair(), Some((3, 4)));
        assert_eq!(Value::Int(1).as_float(), None);
        let c = Value::Counts(vec![(1, 2)].into());
        assert_eq!(c.as_counts().unwrap()[0], (1, 2));
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for key in 0..1000u64 {
            let r = route(key, 7);
            assert!(r < 7);
            assert_eq!(r, route(key, 7), "routing must be deterministic");
        }
    }

    #[test]
    fn routing_spreads_keys() {
        let n = 4;
        let mut counts = vec![0usize; n];
        for key in 0..10_000u64 {
            counts[route(key, n)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 2500.0).abs() < 400.0,
                "hash routing should be roughly uniform: {counts:?}"
            );
        }
    }

    #[test]
    fn hash_differs_from_identity() {
        // Sequential keys must not map to sequential buckets.
        let direct: Vec<usize> = (0..8u64).map(|k| (k % 4) as usize).collect();
        let hashed: Vec<usize> = (0..8u64).map(|k| route(k, 4)).collect();
        assert_ne!(direct, hashed);
    }
}
