//! # ppa-engine — a Storm-like MPSPE substrate with PPA fault tolerance
//!
//! This crate implements §V of the paper as a deterministic discrete-event
//! simulation of a cluster (see README.md §Design notes for why the EC2/Storm testbed
//! is substituted this way):
//!
//! * **Batch dataflow** — input streams are cut into batches closed by
//!   batch-over punctuations; a task processes batch `b` only after every
//!   live upstream substream delivered or closed `b` (§V-B).
//! * **Passive replication** — periodic checkpoints (UDF state + output
//!   buffer) stored on standby nodes; upstream output buffers are trimmed on
//!   downstream checkpoints; recovery = restore + replay, with neighbour
//!   synchronization emerging from regenerated streams.
//! * **Active replication** — replicas co-process the same batches on
//!   standby nodes with outputs off; primaries periodically let replicas
//!   trim their output buffers; on failure the replica takes over after
//!   re-sending its buffered output, and downstream deduplicates by batch id.
//! * **Source replay (Storm baseline)** — no checkpoints; failed tasks
//!   restart empty and the sources replay the window's worth of batches
//!   through the topology, charging reprocessing CPU at every hop.
//! * **Tentative outputs** — once the master detects failures it proxies the
//!   batch-over punctuations of failed (non-replicated) tasks so downstream
//!   keeps producing degraded output; proxying stops at recovery.
//! * **Failure detection** — heartbeat scans at a fixed interval (5 s in the
//!   paper); recovery latency is measured from detection to the instant the
//!   task's progress vector dominates its pre-failure progress (§VI).
//! * **Control plane** — every kind of fault injection (explicit specs,
//!   domain kills, replayable traces, live generative processes) unifies
//!   behind a [`FaultFeed`], and [`Simulation::drive`] runs the event loop
//!   with a [`ControlPolicy`] in it: hooks observe live per-fault-domain
//!   health ([`HealthView`]) and respond with typed re-plan / migrate
//!   actions (§V-C's adaptation, closed over the placement subsystem).

pub mod approx;
pub mod chaos;
pub mod config;
pub mod control;
pub mod error;
pub mod estimate;
pub mod feed;
pub mod placement;
pub mod query;
pub mod report;
pub mod runtime;
pub mod tuple;
pub mod udf;

pub use approx::DivergenceModel;
pub use chaos::{ChaosError, ChaosKind, ChaosSpec};
pub use config::{CostModel, EngineConfig, FtMode};
pub use control::{
    ActionOutcome, ActionRecord, ControlAction, ControlPolicy, DomainHealth, DomainHealthPolicy,
    DriveReport, HealthView, StaticPolicy,
};
pub use error::EngineError;
pub use estimate::{
    active_takeover, approximate_recovery, checkpoint_recovery, max_recoverable_rate, storm_replay,
    TaskProfile,
};
pub use feed::FaultFeed;
pub use placement::{
    move_counts, plan_evacuation, Cluster, DomainSpread, MoveRole, Packed, Placement,
    PlacementError, PlacementStrategy, RoundRobin, TaskMove,
};
pub use query::{Query, QueryBuilder};
pub use report::{
    Lifecycle, OutageRecord, RunReport, SinkBatch, TaskOutages, TaskRecovery, TaskThroughput,
};
pub use runtime::{FailureSpec, Simulation};
// Re-exported so engine users can build replayable failure scenarios
// without naming the faults crate explicitly.
pub use ppa_faults::{DomainId, FailureEvent, FailureTrace, FaultDomainTree};
// Re-exported so harnesses can attach sinks and read metrics without
// naming the obs crate explicitly.
pub use ppa_obs::{EngineEvent, MetricsRegistry, MetricsSnapshot, TraceSink, VecSink};
pub use tuple::{Key, Tuple, Value};
pub use udf::{BatchCtx, InputBatch, SourceGen, Udf};
