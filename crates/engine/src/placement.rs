//! Task-to-node placement, mirroring the paper's cluster layout: primary
//! tasks on worker nodes, checkpoints and active replicas on standby nodes.

use ppa_core::model::{TaskGraph, TaskIndex};

/// Identifier of a simulated cluster node.
pub type NodeId = usize;

/// Placement of a task graph onto a cluster.
///
/// Nodes `0..n_workers` are workers, `n_workers..n_workers+n_standby` are
/// standby nodes. Task `t`'s active replica (if any) and its checkpoint
/// restore target both live on `standby[t]`.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Worker node of each primary task.
    pub primary: Vec<NodeId>,
    /// Standby node of each task (replica host / restore target).
    pub standby: Vec<NodeId>,
    pub n_workers: usize,
    pub n_standby: usize,
}

impl Placement {
    /// Round-robin placement: tasks are dealt across `n_workers` workers in
    /// task order; standbys are dealt across `n_standby` standby nodes.
    pub fn round_robin(graph: &TaskGraph, n_workers: usize, n_standby: usize) -> Self {
        assert!(n_workers > 0 && n_standby > 0);
        let n = graph.n_tasks();
        Placement {
            primary: (0..n).map(|t| t % n_workers).collect(),
            standby: (0..n).map(|t| n_workers + t % n_standby).collect(),
            n_workers,
            n_standby,
        }
    }

    /// Explicit placement. `primary[t]` must be `< n_workers` and
    /// `standby[t]` in `n_workers..n_workers+n_standby`.
    pub fn explicit(
        primary: Vec<NodeId>,
        standby: Vec<NodeId>,
        n_workers: usize,
        n_standby: usize,
    ) -> Self {
        assert_eq!(primary.len(), standby.len());
        assert!(primary.iter().all(|&n| n < n_workers));
        assert!(standby
            .iter()
            .all(|&n| (n_workers..n_workers + n_standby).contains(&n)));
        Placement {
            primary,
            standby,
            n_workers,
            n_standby,
        }
    }

    /// Total number of nodes (workers + standby).
    pub fn n_nodes(&self) -> usize {
        self.n_workers + self.n_standby
    }

    /// Tasks hosted on `node` as primaries.
    pub fn tasks_on(&self, node: NodeId) -> Vec<TaskIndex> {
        self.primary
            .iter()
            .enumerate()
            .filter_map(|(t, &n)| (n == node).then_some(TaskIndex(t)))
            .collect()
    }

    /// All worker nodes hosting at least one of the given tasks.
    pub fn nodes_of(&self, tasks: impl IntoIterator<Item = TaskIndex>) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = tasks.into_iter().map(|t| self.primary[t.0]).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// All worker nodes that host any primary task — killing these is the
    /// paper's correlated-failure injection (§VI-A).
    pub fn all_primary_nodes(&self) -> Vec<NodeId> {
        let mut nodes = self.primary.clone();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_core::model::{OperatorSpec, Partitioning, TopologyBuilder};

    fn graph() -> TaskGraph {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 4, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        b.connect(s, m, Partitioning::Merge).unwrap();
        TaskGraph::new(b.build().unwrap())
    }

    #[test]
    fn round_robin_deals_tasks() {
        let g = graph();
        let p = Placement::round_robin(&g, 3, 2);
        assert_eq!(p.primary, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(p.standby, vec![3, 4, 3, 4, 3, 4]);
        assert_eq!(p.n_nodes(), 5);
    }

    #[test]
    fn tasks_on_node() {
        let g = graph();
        let p = Placement::round_robin(&g, 3, 2);
        assert_eq!(p.tasks_on(0), vec![TaskIndex(0), TaskIndex(3)]);
        assert_eq!(
            p.tasks_on(4),
            Vec::<TaskIndex>::new(),
            "standby hosts no primaries"
        );
    }

    #[test]
    fn nodes_of_dedups() {
        let g = graph();
        let p = Placement::round_robin(&g, 3, 2);
        assert_eq!(p.nodes_of([TaskIndex(0), TaskIndex(3)]), vec![0]);
        assert_eq!(p.all_primary_nodes(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic]
    fn explicit_validates_ranges() {
        let _ = Placement::explicit(vec![5], vec![1], 2, 1);
    }
}
