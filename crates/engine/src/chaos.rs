//! Buggify points: typed chaos injections against the engine's control
//! plane.
//!
//! A [`ChaosSpec`] perturbs the *mechanisms* of failure handling —
//! heartbeat scans, restore completions — rather than killing nodes
//! (node kills stay [`crate::FailureSpec`]s). The `ppa-chaos` crate
//! composes both into seeded schedules; the engine only provides the
//! injection surface (`Simulation::inject_chaos`) and keeps each kind's
//! effect deterministic: a run with an empty chaos schedule is
//! byte-identical to a run without the subsystem.

use crate::error::EngineError;
use ppa_sim::{SimDuration, SimTime};
use std::fmt;

/// One chaos injection: `kind` fires at `at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSpec {
    pub at: SimTime,
    pub kind: ChaosKind,
}

/// The buggify catalog. Every kind models a concrete distributed-systems
/// pathology the master or a recovery path must tolerate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosKind {
    /// The next `scans` heartbeat scans are lost (a master that cannot
    /// reach its workers): detection of any open outage is late by up to
    /// `scans` heartbeat intervals. The scan *cadence* is kept.
    HeartbeatDrop { scans: u32 },
    /// The next heartbeat scan (and the cadence behind it) arrives `by`
    /// late — a slow or partitioned master catching up.
    HeartbeatDelay { by: SimDuration },
    /// An extra, duplicated heartbeat scan fires at `at` — detection
    /// must be idempotent under repeated scans.
    HeartbeatDuplicate,
    /// The next restore completion of `task` hangs for `by` before
    /// finishing — a stalled state load.
    RestoreStall { task: usize, by: SimDuration },
    /// If `task` is mid-restore at `at`, the restore target is lost: the
    /// open outage is re-armed and the stale completion must be voided —
    /// the same path a mid-restore node death exercises.
    RestoreVoid { task: usize },
}

impl ChaosKind {
    /// Stable snake_case tag, used by the chaos schedule's text format.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosKind::HeartbeatDrop { .. } => "heartbeat_drop",
            ChaosKind::HeartbeatDelay { .. } => "heartbeat_delay",
            ChaosKind::HeartbeatDuplicate => "heartbeat_duplicate",
            ChaosKind::RestoreStall { .. } => "restore_stall",
            ChaosKind::RestoreVoid { .. } => "restore_void",
        }
    }

    /// The logical task the injection targets, when it targets one.
    pub fn task(&self) -> Option<usize> {
        match self {
            ChaosKind::RestoreStall { task, .. } | ChaosKind::RestoreVoid { task } => Some(*task),
            _ => None,
        }
    }
}

/// Why a chaos injection was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosError {
    /// The underlying scheduling constraint failed (event in the past,
    /// past the horizon).
    Engine(EngineError),
    /// The injection targets a logical task the query does not have.
    TaskOutOfRange { task: usize, n_tasks: usize },
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::Engine(e) => write!(f, "{e}"),
            ChaosError::TaskOutOfRange { task, n_tasks } => write!(
                f,
                "chaos event targets task {task} but the query has only {n_tasks} task(s)"
            ),
        }
    }
}

impl std::error::Error for ChaosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChaosError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ChaosError {
    fn from(e: EngineError) -> Self {
        ChaosError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_stable_names_and_targets() {
        assert_eq!(
            ChaosKind::HeartbeatDrop { scans: 2 }.name(),
            "heartbeat_drop"
        );
        assert_eq!(ChaosKind::HeartbeatDuplicate.task(), None);
        let stall = ChaosKind::RestoreStall {
            task: 4,
            by: SimDuration::from_secs(3),
        };
        assert_eq!(stall.name(), "restore_stall");
        assert_eq!(stall.task(), Some(4));
        assert_eq!(ChaosKind::RestoreVoid { task: 1 }.task(), Some(1));
    }

    #[test]
    fn errors_name_the_offender() {
        let e = ChaosError::TaskOutOfRange {
            task: 9,
            n_tasks: 4,
        };
        assert!(e.to_string().contains("task 9"), "{e}");
        assert!(e.to_string().contains("4 task(s)"), "{e}");
        let e = ChaosError::from(EngineError::EventInPast {
            at: SimTime::from_secs(1),
            now: SimTime::from_secs(2),
        });
        assert!(e.to_string().contains("before"), "{e}");
    }
}
