//! Typed placement validation errors.
//!
//! Malformed placements used to abort via `assert!`; they now surface as
//! [`PlacementError`]s naming the offending task index and node, so harness
//! code (and user-built scenarios) can report exactly which entry of an
//! explicit placement is broken instead of dying with a panic backtrace.

use super::NodeId;
use std::fmt;

/// Why a placement (or a placement strategy) could not be built.
// No `Eq`: the `Planner` variant wraps `CoreError`, whose rate fields
// are floats.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// The cluster has no worker nodes.
    NoWorkers,
    /// The cluster has no standby nodes.
    NoStandby,
    /// `primary` and `standby` assign different numbers of tasks.
    LengthMismatch { primary: usize, standby: usize },
    /// A task's primary node is not a worker node (`node >= n_workers`).
    PrimaryOutOfRange {
        task: usize,
        node: NodeId,
        n_workers: usize,
    },
    /// A task's standby node is outside the standby range
    /// `n_workers..n_workers + n_standby`.
    StandbyOutOfRange {
        task: usize,
        node: NodeId,
        n_workers: usize,
        n_standby: usize,
    },
    /// An attached fault-domain tree mentions a node the cluster does not
    /// have.
    DomainNodeOutOfRange { node: NodeId, n_nodes: usize },
    /// A racked cluster description was given a zero rack size.
    ZeroRackSize,
    /// A domain-level operation needs a fault-domain mapping but the
    /// placement has none attached.
    NoFaultDomains,
    /// The planner rejected the context derived from this placement's
    /// fault-domain mapping.
    Planner(ppa_core::CoreError),
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::NoWorkers => write!(f, "placement needs at least one worker node"),
            PlacementError::NoStandby => write!(f, "placement needs at least one standby node"),
            PlacementError::LengthMismatch { primary, standby } => write!(
                f,
                "primary assigns {primary} task(s) but standby assigns {standby}"
            ),
            PlacementError::PrimaryOutOfRange {
                task,
                node,
                n_workers,
            } => write!(
                f,
                "task {task}: primary node {node} is not a worker (workers are 0..{n_workers})"
            ),
            PlacementError::StandbyOutOfRange {
                task,
                node,
                n_workers,
                n_standby,
            } => write!(
                f,
                "task {task}: standby node {node} is outside {n_workers}..{}",
                n_workers + n_standby
            ),
            PlacementError::DomainNodeOutOfRange { node, n_nodes } => write!(
                f,
                "fault-domain tree assigns node {node} but the cluster has only {n_nodes} node(s)"
            ),
            PlacementError::ZeroRackSize => {
                write!(f, "racked cluster needs a positive rack size")
            }
            PlacementError::NoFaultDomains => {
                write!(f, "placement has no fault-domain mapping attached")
            }
            PlacementError::Planner(e) => {
                write!(f, "planner rejected the placement-derived context: {e}")
            }
        }
    }
}

impl std::error::Error for PlacementError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlacementError::Planner(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ppa_core::CoreError> for PlacementError {
    fn from(e: ppa_core::CoreError) -> Self {
        PlacementError::Planner(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_name_the_offending_task() {
        let e = PlacementError::PrimaryOutOfRange {
            task: 7,
            node: 9,
            n_workers: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("task 7"), "{msg}");
        assert!(msg.contains("node 9"), "{msg}");
        let e = PlacementError::StandbyOutOfRange {
            task: 3,
            node: 1,
            n_workers: 4,
            n_standby: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("task 3"), "{msg}");
        assert!(msg.contains("4..6"), "{msg}");
    }
}
