//! Evacuation planning: where tasks go when the control plane orders them
//! off degraded fault domains.
//!
//! [`plan_evacuation`] is the placement-subsystem half of
//! `ControlAction::MigrateTasks`: pure planning over the current
//! [`Placement`], the node liveness vector and the domains to evacuate.
//! The engine applies the returned moves (rewiring the running tasks and
//! charging state-ship CPU to the recovery model).

use super::{NodeId, Placement, PlacementError};
use ppa_core::model::TaskIndex;
use ppa_faults::DomainId;
use std::collections::BTreeSet;

/// Which incarnation of a task a move relocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveRole {
    /// The running primary (only planned off *live* nodes — a dead
    /// primary is the recovery path's business, not migration's).
    Primary,
    /// The standby slot (replica host / restore target). Planned off dead
    /// nodes too: re-homing a standby whose node died is exactly what
    /// lets a later re-plan re-establish the replica.
    Standby,
}

/// One planned relocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskMove {
    pub task: TaskIndex,
    pub role: MoveRole,
    pub from: NodeId,
    pub to: NodeId,
}

/// Plans the evacuation of every primary and standby hosted under
/// `domains`: each evacuee moves to the least-loaded *alive* node of its
/// role range outside the evacuated domains (ties broken by node id, so
/// the plan is deterministic). Tasks with no valid destination — every
/// other node of the role range dead or evacuated — are left in place.
///
/// `node_alive[n]` is the engine's liveness vector. Returns
/// [`PlacementError::NoFaultDomains`] if the placement carries no
/// fault-domain mapping to expand `domains` through.
pub fn plan_evacuation(
    placement: &Placement,
    domains: &[DomainId],
    node_alive: &[bool],
) -> Result<Vec<TaskMove>, PlacementError> {
    let tree = placement
        .fault_domains()
        .ok_or(PlacementError::NoFaultDomains)?;
    let mut avoid: BTreeSet<NodeId> = BTreeSet::new();
    for &d in domains {
        avoid.extend(tree.nodes_under(d));
    }

    // Current per-node load (primaries + standbys), kept up to date as
    // moves are planned so evacuees spread instead of piling up.
    let mut load = vec![0usize; placement.n_nodes()];
    for &n in placement.primary.iter().chain(placement.standby.iter()) {
        load[n] += 1;
    }

    let alive = |n: NodeId| node_alive.get(n).copied().unwrap_or(false);
    let mut moves = Vec::new();
    let n_tasks = placement.primary.len();
    for t in 0..n_tasks {
        let from = placement.primary[t];
        // Primaries move only off *live* evacuated nodes: a dead node's
        // task is already dead, and recovery (not migration) owns it.
        if avoid.contains(&from) && alive(from) {
            let dest = (0..placement.n_workers)
                .filter(|n| !avoid.contains(n) && alive(*n))
                .min_by_key(|&n| (load[n], n));
            if let Some(to) = dest {
                load[from] -= 1;
                load[to] += 1;
                moves.push(TaskMove {
                    task: TaskIndex(t),
                    role: MoveRole::Primary,
                    from,
                    to,
                });
            }
        }
    }
    let standby_range = placement.n_workers..placement.n_nodes();
    for t in 0..n_tasks {
        let from = placement.standby[t];
        if avoid.contains(&from) {
            let dest = standby_range
                .clone()
                .filter(|n| !avoid.contains(n) && alive(*n))
                .min_by_key(|&n| (load[n], n));
            if let Some(to) = dest {
                load[from] -= 1;
                load[to] += 1;
                moves.push(TaskMove {
                    task: TaskIndex(t),
                    role: MoveRole::Standby,
                    from,
                    to,
                });
            }
        }
    }
    Ok(moves)
}

/// `(primaries, standbys)` planned in `moves` — the shape the
/// observability layer records for a scheduled migration.
pub fn move_counts(moves: &[TaskMove]) -> (usize, usize) {
    let primaries = moves.iter().filter(|m| m.role == MoveRole::Primary).count();
    (primaries, moves.len() - primaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_core::model::{OperatorSpec, Partitioning, TaskGraph, TopologyBuilder};
    use ppa_faults::FaultDomainTree;
    use std::error::Error;

    type TestResult = Result<(), Box<dyn Error>>;

    /// 6 tasks round-robin over 4 workers + 2 standbys, racks of 2 over
    /// all 6 nodes: worker racks {0,1} {2,3}, standby rack {4,5}.
    fn placement() -> Result<Placement, Box<dyn Error>> {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 4, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        b.connect(s, m, Partitioning::Merge)?;
        let g = TaskGraph::new(b.build()?);
        Ok(Placement::round_robin(&g, 4, 2)?
            .with_fault_domains(FaultDomainTree::racks(&[0, 1, 2, 3, 4, 5], 2))?)
    }

    #[test]
    fn evacuates_live_primaries_to_least_loaded_survivors() -> TestResult {
        let p = placement()?;
        let rack0 = p.domain_of(0).ok_or("node 0 has no fault domain")?;
        let alive = vec![true; 6];
        let moves = plan_evacuation(&p, &[rack0], &alive)?;
        // Primaries on nodes 0 and 1 (tasks 0, 4 on node 0; 1, 5 on 1).
        let primaries: Vec<_> = moves
            .iter()
            .filter(|m| m.role == MoveRole::Primary)
            .collect();
        assert_eq!(primaries.len(), 4);
        for m in &primaries {
            assert!(m.to == 2 || m.to == 3, "destination outside rack 0: {m:?}");
        }
        // Load balance: the 4 evacuees split 2 / 2 across nodes 2 and 3.
        let to2 = primaries.iter().filter(|m| m.to == 2).count();
        assert_eq!(to2, 2, "evacuees spread, not piled: {primaries:?}");
        // No standby lives in rack 0, so no standby moves.
        assert!(moves.iter().all(|m| m.role == MoveRole::Primary));
        Ok(())
    }

    #[test]
    fn dead_primaries_stay_but_dead_standbys_are_rehomed() -> TestResult {
        // 4 workers + 4 standbys, racks of 2: worker racks {0,1} {2,3},
        // standby racks {4,5} {6,7}.
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 4, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        b.connect(s, m, Partitioning::Merge)?;
        let g = TaskGraph::new(b.build()?);
        let p = Placement::round_robin(&g, 4, 4)?
            .with_fault_domains(FaultDomainTree::racks(&(0..8).collect::<Vec<_>>(), 2))?;
        // Rack {0,1} died: nodes 0 and 1 are dead.
        let rack0 = p.domain_of(0).ok_or("node 0 has no fault domain")?;
        let mut alive = vec![true; 8];
        alive[0] = false;
        alive[1] = false;
        let moves = plan_evacuation(&p, &[rack0], &alive)?;
        // Dead primaries are recovery's business — no primary moves.
        assert!(
            moves.iter().all(|m| m.role == MoveRole::Standby),
            "{moves:?}"
        );

        // Standby rack {4,5} evacuated while dead: its standbys (tasks
        // 0, 4 on node 4; 1, 5 on node 5) re-home to rack {6,7}.
        let rack2 = p.domain_of(4).ok_or("node 4 has no fault domain")?;
        let mut alive = vec![true; 8];
        alive[4] = false;
        alive[5] = false;
        let moves = plan_evacuation(&p, &[rack2], &alive)?;
        assert_eq!(moves.len(), 4, "{moves:?}");
        for m in &moves {
            assert_eq!(m.role, MoveRole::Standby);
            assert!(m.to == 6 || m.to == 7, "{m:?}");
        }
        Ok(())
    }

    #[test]
    fn whole_domain_evacuation_has_no_admission_bound() -> TestResult {
        // 24 tasks on 24 workers (+24 standbys), racks of 12: evacuating
        // one rack plans every hosted primary in a single round — nothing
        // caps how much state ships per epoch. This is the executable
        // expectation for the ROADMAP's migration-admission-control
        // follow-on: an admission bound would split these 12 moves across
        // rounds.
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 12, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 12, 1.0));
        b.connect(s, m, Partitioning::OneToOne)?;
        let g = TaskGraph::new(b.build()?);
        let p = Placement::round_robin(&g, 24, 24)?
            .with_fault_domains(FaultDomainTree::racks(&(0..24).collect::<Vec<_>>(), 12))?;
        let rack0 = p.domain_of(0).ok_or("node 0 has no fault domain")?;
        let moves = plan_evacuation(&p, &[rack0], &[true; 48])?;
        assert_eq!(moves.len(), 12, "every hosted primary moves at once");
        assert!(moves.iter().all(|mv| mv.role == MoveRole::Primary));
        // The 12 evacuees spread one-per-node over the surviving workers.
        let mut load = [0usize; 24];
        for mv in &moves {
            load[mv.to] += 1;
        }
        assert!((12..24).all(|n| load[n] == 1), "{moves:?}");
        Ok(())
    }

    #[test]
    fn move_counts_splits_roles() -> TestResult {
        let p = placement()?;
        let rack0 = p.domain_of(0).ok_or("node 0 has no fault domain")?;
        let moves = plan_evacuation(&p, &[rack0], &[true; 6])?;
        let (primaries, standbys) = move_counts(&moves);
        assert_eq!(primaries, 4);
        assert_eq!(standbys, 0);
        assert_eq!(move_counts(&[]), (0, 0));
        Ok(())
    }

    #[test]
    fn no_fault_domains_is_a_typed_error() -> TestResult {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 2, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 1, 1.0));
        b.connect(s, m, Partitioning::Merge)?;
        let g = TaskGraph::new(b.build()?);
        let bare = Placement::round_robin(&g, 2, 1)?;
        assert_eq!(
            plan_evacuation(&bare, &[DomainId(1)], &[true; 3]).unwrap_err(),
            PlacementError::NoFaultDomains
        );
        Ok(())
    }
}
