//! Placement strategies: how a task graph is assigned to a cluster.
//!
//! A [`PlacementStrategy`] turns a [`Cluster`] description (worker/standby
//! counts plus an optional fault-domain hierarchy) into a [`Placement`].
//! Three strategies ship:
//!
//! * [`RoundRobin`] — deal tasks across workers in task order; reproduces
//!   [`Placement::round_robin`] bit for bit (the engine's historical
//!   default, topology- and domain-blind);
//! * [`Packed`] — fill nodes sequentially to capacity. The adversarial
//!   baseline: consecutive tasks (usually whole operators, often whole
//!   MC-trees) land in the same fault domain, so a single rack burst takes
//!   out maximal dependent state;
//! * [`DomainSpread`] — anti-affinity against the cluster's fault domains:
//!   spread each MC-tree's tasks across distinct domains of a chosen
//!   level, and put every primary/standby pair in distinct domains, so a
//!   domain burst degrades output instead of erasing it (§IV's motivation
//!   for planning against *plausible* correlated failures). Falls back
//!   gracefully — to load balancing — when domains or capacity run short.

use super::{NodeId, Placement, PlacementError};
use ppa_core::mctree::{enumerate_mc_trees, McTreeLimits};
use ppa_core::model::TaskGraph;
use ppa_faults::FaultDomainTree;

/// A cluster description a strategy places onto: node counts plus the
/// fault-domain hierarchy those nodes live in.
#[derive(Debug, Clone)]
pub struct Cluster {
    pub n_workers: usize,
    pub n_standby: usize,
    /// The node → fault-domain hierarchy over `0..n_workers + n_standby`
    /// (or a subset). [`DomainSpread`] needs it; every strategy attaches it
    /// to the produced [`Placement`] so the runtime and planners see the
    /// same mapping the placement was built against.
    pub domains: Option<FaultDomainTree>,
}

impl Cluster {
    /// A cluster with no fault-domain structure.
    pub fn flat(n_workers: usize, n_standby: usize) -> Self {
        Cluster {
            n_workers,
            n_standby,
            domains: None,
        }
    }

    /// A cluster whose nodes (workers then standbys) are grouped into
    /// consecutive racks of `rack_size`. A zero rack size is a typed
    /// error, consistent with the rest of the placement validation
    /// (`FaultDomainTree::racks` would abort on it).
    pub fn racked(
        n_workers: usize,
        n_standby: usize,
        rack_size: usize,
    ) -> Result<Self, PlacementError> {
        if rack_size == 0 {
            return Err(PlacementError::ZeroRackSize);
        }
        let nodes: Vec<NodeId> = (0..n_workers + n_standby).collect();
        Ok(Cluster {
            n_workers,
            n_standby,
            domains: Some(FaultDomainTree::racks(&nodes, rack_size)),
        })
    }

    /// Attaches (or replaces) the fault-domain hierarchy.
    pub fn with_domains(mut self, domains: FaultDomainTree) -> Self {
        self.domains = Some(domains);
        self
    }

    fn validate(&self) -> Result<(), PlacementError> {
        if self.n_workers == 0 {
            return Err(PlacementError::NoWorkers);
        }
        if self.n_standby == 0 {
            return Err(PlacementError::NoStandby);
        }
        Ok(())
    }

    /// Attaches this cluster's domain tree to a freshly built placement.
    fn finish(&self, placement: Placement) -> Result<Placement, PlacementError> {
        match &self.domains {
            Some(tree) => placement.with_fault_domains(tree.clone()),
            None => Ok(placement),
        }
    }
}

/// A policy choosing where every primary and standby lands.
pub trait PlacementStrategy {
    /// Short name used in experiment labels ("RoundRobin", "Packed", ...).
    fn name(&self) -> &'static str;

    /// Places `graph` onto `cluster`.
    fn place(&self, graph: &TaskGraph, cluster: &Cluster) -> Result<Placement, PlacementError>;
}

/// The historical default: deal tasks across workers (and standbys) in
/// task order. Bit-identical to [`Placement::round_robin`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl PlacementStrategy for RoundRobin {
    fn name(&self) -> &'static str {
        "RoundRobin"
    }

    fn place(&self, graph: &TaskGraph, cluster: &Cluster) -> Result<Placement, PlacementError> {
        cluster.validate()?;
        let placement = Placement::round_robin(graph, cluster.n_workers, cluster.n_standby)?;
        cluster.finish(placement)
    }
}

/// Fill nodes sequentially: the first `ceil(n / n_workers)` tasks on worker
/// 0, the next chunk on worker 1, and likewise for standbys. Consecutive
/// tasks — whole operators, typically whole MC-trees — share nodes and
/// racks, making this the adversarial baseline for correlated failures.
#[derive(Debug, Clone, Copy, Default)]
pub struct Packed;

impl PlacementStrategy for Packed {
    fn name(&self) -> &'static str {
        "Packed"
    }

    fn place(&self, graph: &TaskGraph, cluster: &Cluster) -> Result<Placement, PlacementError> {
        cluster.validate()?;
        let n = graph.n_tasks();
        let per_worker = n.div_ceil(cluster.n_workers).max(1);
        let per_standby = n.div_ceil(cluster.n_standby).max(1);
        let primary: Vec<NodeId> = (0..n).map(|t| t / per_worker).collect();
        let standby: Vec<NodeId> = (0..n)
            .map(|t| cluster.n_workers + t / per_standby)
            .collect();
        let placement =
            Placement::explicit(primary, standby, cluster.n_workers, cluster.n_standby)?;
        cluster.finish(placement)
    }
}

/// Fault-domain anti-affinity at a chosen hierarchy `level` (1 = the
/// children of the root, e.g. racks in a `racks` tree).
///
/// Greedy, deterministic, in task order. For every task the strategy
/// scores candidate worker nodes by, in order:
///
/// 1. how many already-placed tasks *sharing an MC-tree* with this task
///    sit in the candidate's domain (spread each tree across domains: a
///    domain failure then cuts each tree at most once);
/// 2. how many already-placed tasks *of the same operator* sit there
///    (spread each layer: tasks of one operator share no MC-tree, yet
///    losing a whole layer to one rack severs every tree at once);
/// 3. the candidate node's current load (stay balanced);
/// 4. the node id (stable tie-break).
///
/// Anti-affinity never unbalances the cluster: a node already at the even
/// share `ceil(n_tasks / n_nodes_of_its_role)` is deprioritized below
/// every under-capacity node (for primaries this makes the share a hard
/// bound — a conflict-free node cannot soak up the whole graph).
///
/// Standbys additionally refuse the primary's own domain whenever any
/// standby outside it exists (primary/standby pair anti-affinity), then
/// apply the same tree/operator-spread and load scoring. When the cluster
/// has no domain tree, or MC-tree enumeration explodes, the tree term
/// vanishes and the strategy degrades to operator-spread load balancing —
/// graceful, never an error.
#[derive(Debug, Clone, Copy)]
pub struct DomainSpread {
    /// Hierarchy level the anti-affinity applies at.
    pub level: usize,
    /// MC-tree enumeration guard; explosion falls back to singleton groups.
    pub mc_limits: McTreeLimits,
}

impl Default for DomainSpread {
    fn default() -> Self {
        DomainSpread {
            level: 1,
            mc_limits: McTreeLimits::default(),
        }
    }
}

impl DomainSpread {
    /// Anti-affinity at the rack level of a [`FaultDomainTree::racks`]
    /// (or `regular`) hierarchy.
    pub fn racks() -> Self {
        DomainSpread::default()
    }

    /// Per-task MC-tree membership (tree indices, sorted). Singleton empty
    /// memberships when enumeration is unavailable or explodes.
    fn memberships(&self, graph: &TaskGraph) -> Vec<Vec<usize>> {
        let n = graph.n_tasks();
        let mut member: Vec<Vec<usize>> = vec![Vec::new(); n];
        if let Ok(trees) = enumerate_mc_trees(graph, self.mc_limits) {
            // Bound the pairwise-sharing work on pathological topologies;
            // beyond this the tree term adds noise, not structure.
            if trees.len() <= 4096 {
                for (i, tree) in trees.iter().enumerate() {
                    for t in tree.iter() {
                        member[t.0].push(i);
                    }
                }
            }
        }
        member
    }
}

/// Whether two sorted membership lists intersect.
fn share_tree(a: &[usize], b: &[usize]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

impl PlacementStrategy for DomainSpread {
    fn name(&self) -> &'static str {
        "DomainSpread"
    }

    fn place(&self, graph: &TaskGraph, cluster: &Cluster) -> Result<Placement, PlacementError> {
        cluster.validate()?;
        let n = graph.n_tasks();
        let member = self.memberships(graph);
        // Domain of a node at the anti-affinity level; None = outside the
        // hierarchy (its own pseudo-domain, never conflicting).
        let domain_at = |node: NodeId| -> Option<ppa_faults::DomainId> {
            cluster
                .domains
                .as_ref()
                .and_then(|t| t.domain_of_at_level(node, self.level))
        };

        // Conflict pressure of placing task `t` into domain `dom`, given
        // the nodes already chosen for tasks `0..t` (looked up via `at`):
        // MC-tree co-members first, operator peers second.
        let conflicts = |t: usize,
                         dom: Option<ppa_faults::DomainId>,
                         placed: &[NodeId],
                         at: &dyn Fn(NodeId) -> Option<ppa_faults::DomainId>|
         -> (usize, usize) {
            let Some(d) = dom else { return (0, 0) };
            let mut tree = 0;
            let mut op = 0;
            for (u, &node) in placed.iter().enumerate() {
                if at(node) != Some(d) {
                    continue;
                }
                if share_tree(&member[t], &member[u]) {
                    tree += 1;
                }
                if graph.operator_of(ppa_core::model::TaskIndex(u))
                    == graph.operator_of(ppa_core::model::TaskIndex(t))
                {
                    op += 1;
                }
            }
            (tree, op)
        };

        let cap_workers = n.div_ceil(cluster.n_workers);
        let cap_standby = n.div_ceil(cluster.n_standby);
        let mut primary: Vec<NodeId> = Vec::with_capacity(n);
        let mut load = vec![0usize; cluster.n_workers + cluster.n_standby];
        for t in 0..n {
            let best = (0..cluster.n_workers)
                .min_by_key(|&w| {
                    let (tree, op) = conflicts(t, domain_at(w), &primary, &domain_at);
                    (load[w] >= cap_workers, tree, op, load[w], w)
                })
                .expect("n_workers > 0 was validated");
            load[best] += 1;
            primary.push(best);
        }

        let mut standby: Vec<NodeId> = Vec::with_capacity(n);
        let standby_range = cluster.n_workers..cluster.n_workers + cluster.n_standby;
        // `primary` is fully built here; `standby` grows as `t` advances.
        #[allow(clippy::needless_range_loop)]
        for t in 0..n {
            let primary_dom = domain_at(primary[t]);
            // Pair anti-affinity is only enforceable if some standby node
            // lives outside the primary's domain. It outranks the capacity
            // share: a colocated replica is worthless, an uneven standby
            // is merely slower.
            let escapable =
                primary_dom.is_some() && standby_range.clone().any(|s| domain_at(s) != primary_dom);
            let best = standby_range
                .clone()
                .min_by_key(|&s| {
                    let dom = domain_at(s);
                    let pair_conflict = (escapable && dom == primary_dom) as usize;
                    let (tree, op) = conflicts(t, dom, &standby, &domain_at);
                    (pair_conflict, load[s] >= cap_standby, tree, op, load[s], s)
                })
                .expect("n_standby > 0 was validated");
            load[best] += 1;
            standby.push(best);
        }

        let placement =
            Placement::explicit(primary, standby, cluster.n_workers, cluster.n_standby)?;
        cluster.finish(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_core::model::{OperatorSpec, Partitioning, TopologyBuilder};

    /// Chain topology: 4 sources → 2 maps → 1 sink (7 tasks).
    fn chain() -> TaskGraph {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 4, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        let k = b.add_operator(OperatorSpec::map("k", 1, 1.0));
        b.connect(s, m, Partitioning::Merge).unwrap();
        b.connect(m, k, Partitioning::Merge).unwrap();
        TaskGraph::new(b.build().unwrap())
    }

    #[test]
    fn round_robin_strategy_matches_placement_round_robin() {
        let g = chain();
        let cluster = Cluster::racked(3, 2, 2).unwrap();
        let via_strategy = RoundRobin.place(&g, &cluster).unwrap();
        let direct = Placement::round_robin(&g, 3, 2).unwrap();
        assert_eq!(via_strategy.primary, direct.primary);
        assert_eq!(via_strategy.standby, direct.standby);
        assert!(via_strategy.fault_domains().is_some(), "tree attached");
    }

    #[test]
    fn packed_fills_sequentially() {
        let g = chain();
        let p = Packed.place(&g, &Cluster::flat(3, 2)).unwrap();
        // ceil(7/3) = 3 per worker: 0,0,0,1,1,1,2.
        assert_eq!(p.primary, vec![0, 0, 0, 1, 1, 1, 2]);
        // ceil(7/2) = 4 per standby: 3,3,3,3,4,4,4.
        assert_eq!(p.standby, vec![3, 3, 3, 3, 4, 4, 4]);
    }

    #[test]
    fn domain_spread_separates_pairs_and_balances() {
        let g = chain();
        // 4 workers + 4 standbys in racks of 2: worker racks {0,1} {2,3},
        // standby racks {4,5} {6,7}.
        let cluster = Cluster::racked(4, 4, 2).unwrap();
        let p = DomainSpread::racks().place(&g, &cluster).unwrap();
        for t in 0..g.n_tasks() {
            assert_ne!(
                p.domain_of(p.primary[t]),
                p.domain_of(p.standby[t]),
                "task {t}: primary and standby share a rack"
            );
        }
        // Load stays balanced: no worker holds more than ceil(7/4) + 1.
        for w in 0..4 {
            assert!(p.tasks_on(w).len() <= 3, "worker {w} overloaded");
        }
    }

    #[test]
    fn domain_spread_spreads_mc_trees_and_operators() {
        let g = chain();
        // 8 workers in racks of 2 → 4 worker racks.
        let cluster = Cluster::racked(8, 8, 2).unwrap();
        let p = DomainSpread::racks().place(&g, &cluster).unwrap();
        let tree = p.fault_domains().unwrap();
        let trees = enumerate_mc_trees(&g, McTreeLimits::default()).unwrap();
        assert_eq!(trees.len(), 4, "one path per source");
        // Operator anti-affinity: the 4 sources land in 4 distinct racks
        // (so no single rack failure silences half the input).
        let source_racks: std::collections::BTreeSet<_> = (0..4)
            .map(|t| tree.domain_of_at_level(p.primary[t], 1).unwrap())
            .collect();
        assert_eq!(source_racks.len(), 4, "sources not spread across racks");
        // MC-tree anti-affinity: no rack ever hosts a whole tree, and at
        // most one tree is cut twice by one rack — with one source per
        // rack, the sink's own rack unavoidably doubles up with exactly
        // that rack's source path.
        let mut doubled = 0;
        for mc in &trees {
            let racks: Vec<_> = mc
                .iter()
                .map(|t| tree.domain_of_at_level(p.primary[t.0], 1).unwrap())
                .collect();
            let distinct: std::collections::BTreeSet<_> = racks.iter().collect();
            assert!(distinct.len() >= 2, "a whole MC-tree in one rack");
            if distinct.len() < racks.len() {
                doubled += 1;
            }
        }
        assert!(
            doubled <= 1,
            "{doubled} trees doubled up, expected at most 1"
        );
    }

    #[test]
    fn domain_spread_without_domains_degrades_to_balance() {
        let g = chain();
        let p = DomainSpread::racks()
            .place(&g, &Cluster::flat(3, 2))
            .unwrap();
        // No domains: pure load balance, capacity ceil(7/3)=3 respected.
        for w in 0..3 {
            assert!(p.tasks_on(w).len() <= 3);
        }
        assert!(p.fault_domains().is_none());
    }

    #[test]
    fn strategies_validate_the_cluster() {
        let g = chain();
        for s in [
            &RoundRobin as &dyn PlacementStrategy,
            &Packed,
            &DomainSpread::racks(),
        ] {
            assert_eq!(
                s.place(&g, &Cluster::flat(0, 2)).unwrap_err(),
                PlacementError::NoWorkers,
                "{}",
                s.name()
            );
            assert_eq!(
                s.place(&g, &Cluster::flat(2, 0)).unwrap_err(),
                PlacementError::NoStandby,
                "{}",
                s.name()
            );
        }
    }
}
