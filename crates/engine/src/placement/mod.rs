//! Task-to-node placement, mirroring the paper's cluster layout: primary
//! tasks on worker nodes, checkpoints and active replicas on standby nodes.
//!
//! Placement is a first-class subsystem:
//!
//! * [`Placement`] — the concrete task → node assignment, optionally
//!   carrying the cluster's node → fault-domain mapping (a
//!   [`FaultDomainTree`]) so the runtime and the planners can reason about
//!   which tasks share a blast radius;
//! * [`PlacementStrategy`] — how an assignment is chosen: [`RoundRobin`]
//!   (the historical default), [`Packed`] (fill nodes sequentially — the
//!   adversarial baseline), and [`DomainSpread`] (anti-affinity across
//!   fault domains: spread each MC-tree, separate every primary/standby
//!   pair);
//! * [`PlacementError`] — typed validation: malformed placements surface
//!   as errors naming the offending task, not aborts;
//! * [`plan_evacuation`] — migration planning for the control plane: when
//!   a `ControlPolicy` orders tasks off degraded fault domains, this is
//!   the pure where-do-they-go half the engine applies.

mod error;
mod migration;
mod strategy;

pub use error::PlacementError;
pub use migration::{move_counts, plan_evacuation, MoveRole, TaskMove};
pub use strategy::{Cluster, DomainSpread, Packed, PlacementStrategy, RoundRobin};

use ppa_core::model::{TaskGraph, TaskIndex};
use ppa_core::PlanContext;
use ppa_faults::{DomainId, FaultDomainTree};

/// Identifier of a simulated cluster node.
pub type NodeId = usize;

/// Placement of a task graph onto a cluster.
///
/// Nodes `0..n_workers` are workers, `n_workers..n_workers+n_standby` are
/// standby nodes. Task `t`'s active replica (if any) and its checkpoint
/// restore target both live on `standby[t]`.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Worker node of each primary task.
    pub primary: Vec<NodeId>,
    /// Standby node of each task (replica host / restore target).
    pub standby: Vec<NodeId>,
    pub n_workers: usize,
    pub n_standby: usize,
    /// The cluster's node → fault-domain mapping, when known. Attached by
    /// [`Placement::with_fault_domains`] (strategies built from a
    /// [`Cluster`] attach it automatically).
    domains: Option<FaultDomainTree>,
}

impl Placement {
    /// Round-robin placement: tasks are dealt across `n_workers` workers in
    /// task order; standbys are dealt across `n_standby` standby nodes.
    pub fn round_robin(
        graph: &TaskGraph,
        n_workers: usize,
        n_standby: usize,
    ) -> Result<Self, PlacementError> {
        if n_workers == 0 {
            return Err(PlacementError::NoWorkers);
        }
        if n_standby == 0 {
            return Err(PlacementError::NoStandby);
        }
        let n = graph.n_tasks();
        Ok(Placement {
            primary: (0..n).map(|t| t % n_workers).collect(),
            standby: (0..n).map(|t| n_workers + t % n_standby).collect(),
            n_workers,
            n_standby,
            domains: None,
        })
    }

    /// Explicit placement. `primary[t]` must be `< n_workers` and
    /// `standby[t]` in `n_workers..n_workers+n_standby`; violations are
    /// reported with the offending task index.
    pub fn explicit(
        primary: Vec<NodeId>,
        standby: Vec<NodeId>,
        n_workers: usize,
        n_standby: usize,
    ) -> Result<Self, PlacementError> {
        if n_workers == 0 {
            return Err(PlacementError::NoWorkers);
        }
        if n_standby == 0 {
            return Err(PlacementError::NoStandby);
        }
        if primary.len() != standby.len() {
            return Err(PlacementError::LengthMismatch {
                primary: primary.len(),
                standby: standby.len(),
            });
        }
        for (task, &node) in primary.iter().enumerate() {
            if node >= n_workers {
                return Err(PlacementError::PrimaryOutOfRange {
                    task,
                    node,
                    n_workers,
                });
            }
        }
        for (task, &node) in standby.iter().enumerate() {
            if !(n_workers..n_workers + n_standby).contains(&node) {
                return Err(PlacementError::StandbyOutOfRange {
                    task,
                    node,
                    n_workers,
                    n_standby,
                });
            }
        }
        Ok(Placement {
            primary,
            standby,
            n_workers,
            n_standby,
            domains: None,
        })
    }

    /// Attaches the cluster's fault-domain hierarchy. Every node the tree
    /// assigns must exist in the cluster; the tree may cover a subset of
    /// the nodes (e.g. workers only), leaving the rest outside any domain.
    pub fn with_fault_domains(mut self, domains: FaultDomainTree) -> Result<Self, PlacementError> {
        let n_nodes = self.n_nodes();
        if let Some(&node) = domains.all_nodes().iter().find(|&&n| n >= n_nodes) {
            return Err(PlacementError::DomainNodeOutOfRange { node, n_nodes });
        }
        self.domains = Some(domains);
        Ok(self)
    }

    /// The attached node → fault-domain mapping, if any.
    pub fn fault_domains(&self) -> Option<&FaultDomainTree> {
        self.domains.as_ref()
    }

    /// The fault domain hosting `node`, when a hierarchy is attached and
    /// covers the node.
    pub fn domain_of(&self, node: NodeId) -> Option<DomainId> {
        self.domains.as_ref()?.domain_of(node)
    }

    /// The nodes a failure of `domain` kills — exactly what
    /// [`crate::Simulation::inject_domain`] expands a domain event into.
    pub fn nodes_in_domain(&self, domain: DomainId) -> Result<Vec<NodeId>, PlacementError> {
        let tree = self
            .domains
            .as_ref()
            .ok_or(PlacementError::NoFaultDomains)?;
        Ok(tree.nodes_under(domain))
    }

    /// A planning context whose correlated-failure sets are derived from
    /// this placement's *actual* node → fault-domain mapping (the primaries
    /// hosted under each proper domain form one candidate failure set),
    /// rather than from an assumed worker grouping.
    /// [`PlacementError::NoFaultDomains`] if no hierarchy is attached;
    /// planner-side validation surfaces as [`PlacementError::Planner`].
    pub fn plan_context(
        &self,
        topology: &ppa_core::model::Topology,
    ) -> Result<PlanContext, PlacementError> {
        let tree = self
            .domains
            .as_ref()
            .ok_or(PlacementError::NoFaultDomains)?;
        Ok(PlanContext::with_fault_domains(
            topology,
            tree,
            &self.primary,
        )?)
    }

    /// Total number of nodes (workers + standby).
    pub fn n_nodes(&self) -> usize {
        self.n_workers + self.n_standby
    }

    /// Tasks hosted on `node` as primaries.
    pub fn tasks_on(&self, node: NodeId) -> Vec<TaskIndex> {
        self.primary
            .iter()
            .enumerate()
            .filter_map(|(t, &n)| (n == node).then_some(TaskIndex(t)))
            .collect()
    }

    /// All worker nodes hosting at least one of the given tasks.
    pub fn nodes_of(&self, tasks: impl IntoIterator<Item = TaskIndex>) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = tasks.into_iter().map(|t| self.primary[t.0]).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// All worker nodes that host any primary task — killing these is the
    /// paper's correlated-failure injection (§VI-A).
    pub fn all_primary_nodes(&self) -> Vec<NodeId> {
        let mut nodes = self.primary.clone();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_core::model::{OperatorSpec, Partitioning, TopologyBuilder};

    fn graph() -> TaskGraph {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 4, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        b.connect(s, m, Partitioning::Merge).unwrap();
        TaskGraph::new(b.build().unwrap())
    }

    #[test]
    fn round_robin_deals_tasks() {
        let g = graph();
        let p = Placement::round_robin(&g, 3, 2).unwrap();
        assert_eq!(p.primary, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(p.standby, vec![3, 4, 3, 4, 3, 4]);
        assert_eq!(p.n_nodes(), 5);
    }

    #[test]
    fn tasks_on_node() {
        let g = graph();
        let p = Placement::round_robin(&g, 3, 2).unwrap();
        assert_eq!(p.tasks_on(0), vec![TaskIndex(0), TaskIndex(3)]);
        assert_eq!(
            p.tasks_on(4),
            Vec::<TaskIndex>::new(),
            "standby hosts no primaries"
        );
    }

    #[test]
    fn nodes_of_dedups() {
        let g = graph();
        let p = Placement::round_robin(&g, 3, 2).unwrap();
        assert_eq!(p.nodes_of([TaskIndex(0), TaskIndex(3)]), vec![0]);
        assert_eq!(p.all_primary_nodes(), vec![0, 1, 2]);
    }

    #[test]
    fn explicit_validates_ranges_with_task_index() {
        assert_eq!(
            Placement::explicit(vec![0, 5], vec![2, 2], 2, 1).unwrap_err(),
            PlacementError::PrimaryOutOfRange {
                task: 1,
                node: 5,
                n_workers: 2
            }
        );
        assert_eq!(
            Placement::explicit(vec![0], vec![1], 2, 1).unwrap_err(),
            PlacementError::StandbyOutOfRange {
                task: 0,
                node: 1,
                n_workers: 2,
                n_standby: 1
            }
        );
        assert_eq!(
            Placement::explicit(vec![0], vec![2, 2], 2, 1).unwrap_err(),
            PlacementError::LengthMismatch {
                primary: 1,
                standby: 2
            }
        );
        assert_eq!(
            Placement::round_robin(&graph(), 0, 1).unwrap_err(),
            PlacementError::NoWorkers
        );
        assert_eq!(
            Placement::round_robin(&graph(), 1, 0).unwrap_err(),
            PlacementError::NoStandby
        );
    }

    #[test]
    fn fault_domain_attachment_validates_and_maps() {
        let g = graph();
        let p = Placement::round_robin(&g, 3, 2).unwrap();
        // Tree over a node the 5-node cluster does not have.
        let bad = FaultDomainTree::racks(&[0, 9], 2);
        assert_eq!(
            p.clone().with_fault_domains(bad).unwrap_err(),
            PlacementError::DomainNodeOutOfRange {
                node: 9,
                n_nodes: 5
            }
        );
        // Valid tree over all 5 nodes, racks of 2.
        let tree = FaultDomainTree::racks(&[0, 1, 2, 3, 4], 2);
        let p = p.with_fault_domains(tree).unwrap();
        let d0 = p.domain_of(0).unwrap();
        assert_eq!(p.domain_of(1), Some(d0), "nodes 0,1 share a rack");
        assert_ne!(p.domain_of(2), Some(d0));
        assert_eq!(p.nodes_in_domain(d0).unwrap(), vec![0, 1]);
        // A placement without domains reports the typed error.
        let bare = Placement::round_robin(&g, 3, 2).unwrap();
        assert_eq!(
            bare.nodes_in_domain(d0).unwrap_err(),
            PlacementError::NoFaultDomains
        );
    }

    #[test]
    fn plan_context_derives_from_actual_placement() {
        let g = graph();
        // 2 workers, 2 standbys; racks = {0,1} (workers), {2,3} (standbys).
        let p = Placement::round_robin(&g, 2, 2)
            .unwrap()
            .with_fault_domains(FaultDomainTree::racks(&[0, 1, 2, 3], 2))
            .unwrap();
        let topo = {
            let mut b = TopologyBuilder::new();
            let s = b.add_operator(OperatorSpec::source("s", 4, 10.0));
            let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
            b.connect(s, m, Partitioning::Merge).unwrap();
            b.build().unwrap()
        };
        let cx = p.plan_context(&topo).unwrap();
        // Only the worker rack holds primaries, so exactly one failure set
        // (the standby rack's set is empty and dropped).
        assert_eq!(cx.failure_sets().unwrap().len(), 1);
        assert_eq!(cx.failure_sets().unwrap()[0].len(), 6, "all tasks");
        let bare = Placement::round_robin(&g, 2, 2).unwrap();
        assert!(matches!(
            bare.plan_context(&topo),
            Err(PlacementError::NoFaultDomains)
        ));
    }
}
