//! `FaultFeed`: the one ordered event source every kind of fault injection
//! funnels through.
//!
//! Before this abstraction the engine exposed three disjoint injection
//! entry points (`inject` for [`FailureSpec`] lists, `inject_domain` for
//! fault-domain kills, `inject_trace` for replayable traces) and the
//! generative [`FailureProcess`]es of `ppa-faults` could only reach a run
//! by being pre-rendered into a trace by the caller. A [`FaultFeed`]
//! accepts all four shapes, resolves them against the run's [`Placement`]
//! (domain events expand through the placement's node → domain mapping,
//! processes generate against its fault-domain tree) and validates every
//! event centrally, yielding one normalized [`FailureTrace`] that
//! [`crate::Simulation::drive`] consumes. The legacy `run`/`run_trace`
//! entry points are thin wrappers over an equivalent feed.

use crate::error::EngineError;
use crate::placement::Placement;
use crate::runtime::FailureSpec;
use ppa_faults::{DomainId, FailureProcess, FailureTrace};
use ppa_sim::{SimDuration, SimTime};

/// One source of failure events, pre-resolution.
enum FeedEntry {
    /// An explicit node kill set at an instant.
    Spec(FailureSpec),
    /// A whole fault domain dies at `at`; expanded through the placement's
    /// node → domain mapping at resolution time.
    Domain { at: SimTime, domain: DomainId },
    /// A replayable, already-rendered trace.
    Trace(FailureTrace),
    /// A live generative process, rendered against the placement's
    /// fault-domain tree at resolution time.
    Process {
        process: Box<dyn FailureProcess>,
        start: SimTime,
        horizon: SimDuration,
        seed: u64,
    },
}

/// An ordered, heterogeneous failure scenario: explicit specs, domain
/// kills, replayable traces and generative processes, resolved against a
/// [`Placement`] into one normalized [`FailureTrace`].
#[derive(Default)]
pub struct FaultFeed {
    entries: Vec<FeedEntry>,
}

impl FaultFeed {
    /// An empty feed (a failure-free run).
    pub fn new() -> Self {
        FaultFeed::default()
    }

    /// A feed holding exactly the given failure specs — what the legacy
    /// `Simulation::run` entry point wraps its argument into.
    pub fn from_specs(specs: Vec<FailureSpec>) -> Self {
        FaultFeed::new().with_specs(specs)
    }

    /// A feed replaying exactly the given trace — what the legacy
    /// `Simulation::run_trace` entry point wraps its argument into.
    pub fn from_trace(trace: FailureTrace) -> Self {
        FaultFeed::new().with_trace(trace)
    }

    /// Adds one explicit kill event.
    pub fn with_spec(mut self, spec: FailureSpec) -> Self {
        self.entries.push(FeedEntry::Spec(spec));
        self
    }

    /// Adds a list of explicit kill events.
    pub fn with_specs(mut self, specs: Vec<FailureSpec>) -> Self {
        self.entries.extend(specs.into_iter().map(FeedEntry::Spec));
        self
    }

    /// Adds a whole-domain kill at `at`. The kill set is expanded through
    /// the placement's node → domain mapping when the feed is resolved, so
    /// callers name the blast radius (a rack, a zone) instead of
    /// pre-expanding node lists.
    pub fn with_domain(mut self, at: SimTime, domain: DomainId) -> Self {
        self.entries.push(FeedEntry::Domain { at, domain });
        self
    }

    /// Adds every event of a replayable trace.
    pub fn with_trace(mut self, trace: FailureTrace) -> Self {
        self.entries.push(FeedEntry::Trace(trace));
        self
    }

    /// Adds a live generative failure process covering
    /// `[start, start + horizon)`, seeded for reproducibility. The process
    /// draws from the placement's attached fault-domain tree at resolution
    /// time; a placement without one rejects the feed.
    pub fn with_process(
        mut self,
        process: Box<dyn FailureProcess>,
        start: SimTime,
        horizon: SimDuration,
        seed: u64,
    ) -> Self {
        self.entries.push(FeedEntry::Process {
            process,
            start,
            horizon,
            seed,
        });
        self
    }

    /// Number of entries (not resolved events).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resolves the feed against a placement into one normalized trace:
    /// domain events expand through the placement's node → domain mapping,
    /// processes generate against its fault-domain tree, and every
    /// resulting event's nodes are validated against the cluster size.
    pub fn resolve(&self, placement: &Placement) -> Result<FailureTrace, EngineError> {
        let mut trace = FailureTrace::new();
        for entry in &self.entries {
            match entry {
                FeedEntry::Spec(spec) => trace.push(spec.at, spec.nodes.clone()),
                FeedEntry::Domain { at, domain } => {
                    let nodes = placement.nodes_in_domain(*domain)?;
                    trace.push(*at, nodes);
                }
                FeedEntry::Trace(t) => {
                    for e in t.events() {
                        trace.push(e.at, e.nodes.clone());
                    }
                }
                FeedEntry::Process {
                    process,
                    start,
                    horizon,
                    seed,
                } => {
                    let tree = placement
                        .fault_domains()
                        .ok_or(crate::placement::PlacementError::NoFaultDomains)?;
                    let generated = process.generate_seeded(tree, *start, *horizon, *seed);
                    for e in generated.events() {
                        trace.push(e.at, e.nodes.clone());
                    }
                }
            }
        }
        let n_nodes = placement.n_nodes();
        for e in trace.events() {
            if let Some(&node) = e.nodes.iter().find(|&&n| n >= n_nodes) {
                return Err(EngineError::NodeOutOfRange { node, n_nodes });
            }
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementError;
    use ppa_core::model::{OperatorSpec, Partitioning, TaskGraph, TopologyBuilder};
    use ppa_faults::{DomainBurstProcess, FaultDomainTree};
    use std::error::Error;

    type TestResult = Result<(), Box<dyn Error>>;

    fn graph() -> Result<TaskGraph, Box<dyn Error>> {
        let mut b = TopologyBuilder::new();
        let s = b.add_operator(OperatorSpec::source("s", 4, 10.0));
        let m = b.add_operator(OperatorSpec::map("m", 2, 1.0));
        b.connect(s, m, Partitioning::Merge)?;
        Ok(TaskGraph::new(b.build()?))
    }

    fn placement() -> Result<Placement, Box<dyn Error>> {
        Ok(Placement::round_robin(&graph()?, 4, 2)?
            .with_fault_domains(FaultDomainTree::racks(&[0, 1, 2, 3], 2))?)
    }

    #[test]
    fn mixed_sources_merge_into_one_normalized_trace() -> TestResult {
        let p = placement()?;
        let rack0 = p.domain_of(0).ok_or("node 0 has no fault domain")?;
        let feed = FaultFeed::new()
            .with_spec(FailureSpec {
                at: SimTime::from_secs(50),
                nodes: vec![3],
            })
            .with_domain(SimTime::from_secs(10), rack0)
            .with_trace(FailureTrace::once(SimTime::from_secs(30), vec![2]));
        let trace = feed.resolve(&p)?;
        assert_eq!(trace.len(), 3);
        // Sorted by time regardless of insertion order.
        assert_eq!(trace.events()[0].at, SimTime::from_secs(10));
        assert_eq!(trace.events()[0].nodes, vec![0, 1], "rack 0 expanded");
        assert_eq!(trace.killed_nodes(), vec![0, 1, 2, 3]);
        Ok(())
    }

    #[test]
    fn process_entries_generate_against_the_placement_tree() -> TestResult {
        let p = placement()?;
        let feed = FaultFeed::new().with_process(
            Box::new(DomainBurstProcess {
                level: 1,
                bursts: 1,
                fraction: 1.0,
            }),
            SimTime::from_secs(40),
            SimDuration::from_secs(60),
            7,
        );
        let a = feed.resolve(&p)?;
        let b = feed.resolve(&p)?;
        assert_eq!(a, b, "resolution is deterministic");
        assert_eq!(a.len(), 1);
        assert_eq!(a.killed_nodes().len(), 2, "one rack of 2");
        // A placement without a tree rejects the process entry.
        let bare = Placement::round_robin(&graph()?, 4, 2)?;
        assert_eq!(
            feed.resolve(&bare).unwrap_err(),
            EngineError::Placement(PlacementError::NoFaultDomains)
        );
        Ok(())
    }

    #[test]
    fn out_of_range_nodes_are_rejected_centrally() -> TestResult {
        let p = placement()?;
        let feed = FaultFeed::from_specs(vec![FailureSpec {
            at: SimTime::from_secs(5),
            nodes: vec![0, 99],
        }]);
        assert_eq!(
            feed.resolve(&p).unwrap_err(),
            EngineError::NodeOutOfRange {
                node: 99,
                n_nodes: 6
            }
        );
        Ok(())
    }

    #[test]
    fn empty_feed_resolves_to_the_empty_trace() -> TestResult {
        let feed = FaultFeed::new();
        assert!(feed.is_empty());
        assert_eq!(feed.len(), 0);
        assert!(feed.resolve(&placement()?)?.is_empty());
        Ok(())
    }
}
