//! A tiny dependency-free JSON document model and writer.
//!
//! The build environment is offline, so the harness cannot pull in
//! `serde_json`; this module provides the small subset the reporter needs:
//! ordered objects (deterministic output), arrays, strings, integers and
//! floats. Non-finite floats serialize as `null` — an unrecovered run's
//! latency is *absent*, not a number.

use std::fmt::Write;

/// A JSON value. Object keys keep insertion order so serialization is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    /// Finite floats render with Rust's shortest round-trip formatting;
    /// NaN and infinities render as `null`.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// `Some(x)` → number (or null if non-finite); `None` → null.
    pub fn opt_num(v: Option<f64>) -> Json {
        match v {
            Some(x) if x.is_finite() => Json::Num(x),
            _ => Json::Null,
        }
    }

    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` on f64 is shortest round-trip, but bare integers
                    // ("3") are still valid JSON numbers — keep them.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.to_pretty(), "null\n");
        assert_eq!(Json::Bool(true).to_pretty(), "true\n");
        assert_eq!(Json::Int(-3).to_pretty(), "-3\n");
        assert_eq!(Json::Num(1.5).to_pretty(), "1.5\n");
        assert_eq!(Json::str("a\"b\n").to_pretty(), "\"a\\\"b\\n\"\n");
    }

    #[test]
    fn non_finite_is_null() {
        assert_eq!(Json::Num(f64::NAN).to_pretty(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).to_pretty(), "null\n");
        assert_eq!(Json::opt_num(None), Json::Null);
        assert_eq!(Json::opt_num(Some(f64::NAN)), Json::Null);
        assert_eq!(Json::opt_num(Some(2.0)), Json::Num(2.0));
    }

    #[test]
    fn nested_structure() {
        let doc = Json::obj(vec![
            ("id", Json::str("fig08")),
            ("points", Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = doc.to_pretty();
        assert!(s.contains("\"id\": \"fig08\""));
        assert!(s.contains("\"empty\": []"));
        // Key order is insertion order.
        assert!(s.find("id").unwrap() < s.find("points").unwrap());
    }

    #[test]
    fn floats_round_trip_shortest() {
        assert_eq!(Json::Num(0.1).to_pretty(), "0.1\n");
        assert_eq!(Json::Num(3.0).to_pretty(), "3\n");
    }
}
