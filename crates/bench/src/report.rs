//! The `--json` reporter: serializes a whole harness run — every figure's
//! series, per-run recovery latencies, and wall-clock timings — to a
//! machine-readable document (`BENCH_repro.json` by convention), seeding
//! the repo's performance trajectory across PRs.

use crate::json::Json;
use crate::runner::RunSummary;

/// Schema identifier; bump when the document shape changes.
pub const SCHEMA: &str = "ppa-bench/1";

/// Builds the full JSON document for a finished run.
pub fn to_json(summary: &RunSummary) -> Json {
    Json::obj(vec![
        ("schema", Json::str(SCHEMA)),
        (
            "paper",
            Json::str(
                "Su & Zhou, Tolerating Correlated Failures in Massively Parallel \
                 Stream Processing Engines, ICDE 2016",
            ),
        ),
        (
            "mode",
            Json::str(if summary.quick { "quick" } else { "full" }),
        ),
        ("jobs", Json::Int(summary.jobs as i64)),
        ("total_wall_s", Json::Num(summary.total_wall.as_secs_f64())),
        (
            "experiments",
            Json::Arr(
                summary
                    .results
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("id", Json::str(r.id)),
                            ("description", Json::str(r.description)),
                            ("section", Json::str(r.section)),
                            ("wall_s", Json::Num(r.wall.as_secs_f64())),
                            (
                                "figures",
                                Json::Arr(r.figures.iter().map(|f| f.to_json()).collect()),
                            ),
                            (
                                "runs",
                                Json::Arr(r.runs.iter().map(|l| l.to_json_timed()).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Serializes and writes the report to `path`. The error carries the
/// target path, so callers surfacing it (or unwrapping it in scripts) name
/// the file that could not be written, not just the OS error.
pub fn write_json(summary: &RunSummary, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_json(summary).to_pretty()).map_err(|e| {
        std::io::Error::new(
            e.kind(),
            format!("writing report to {}: {e}", path.display()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{ExperimentResult, RecoveryRecord, RunLog};
    use crate::{Figure, Series};
    use std::time::Duration;

    fn tiny_summary() -> RunSummary {
        let mut fig = Figure::new("fig99", "t", "x", "y");
        let mut s = Series::new("A");
        s.push("p", 1.0);
        s.push("q", f64::NAN);
        fig.series.push(s);
        RunSummary {
            quick: true,
            jobs: 4,
            total_wall: Duration::from_millis(1500),
            results: vec![ExperimentResult {
                id: "fig99",
                description: "test experiment",
                section: "§0",
                figures: vec![fig],
                runs: vec![RunLog {
                    scenario: "s".into(),
                    strategy: "Storm".into(),
                    fail_at_s: 40,
                    kill_nodes: vec![4, 5],
                    events: 123,
                    tuples_moved: 4567,
                    outages: 2,
                    refails: 1,
                    outages_recovered: 1,
                    wall_s: 0.25,
                    recoveries: vec![
                        RecoveryRecord {
                            task: 7,
                            via_replica: false,
                            detected_s: 45.0,
                            latency_s: Some(12.5),
                        },
                        RecoveryRecord {
                            task: 8,
                            via_replica: true,
                            detected_s: 45.0,
                            latency_s: None,
                        },
                    ],
                }],
                wall: Duration::from_millis(700),
            }],
        }
    }

    #[test]
    fn document_shape() {
        let doc = to_json(&tiny_summary()).to_pretty();
        assert!(doc.contains("\"schema\": \"ppa-bench/1\""));
        assert!(doc.contains("\"mode\": \"quick\""));
        assert!(doc.contains("\"jobs\": 4"));
        assert!(doc.contains("\"id\": \"fig99\""));
        assert!(doc.contains("\"wall_s\": 0.7"));
        // Per-run timing rides in the report via to_json_timed...
        assert!(doc.contains("\"wall_s\": 0.25"));
        assert!(doc.contains("\"refails\": 1"));
        assert!(doc.contains("\"latency_s\": 12.5"));
        // Unrecovered runs serialize as null, never NaN.
        assert!(doc.contains("\"latency_s\": null"));
        assert!(doc.contains("\"y\": null"));
        assert!(!doc.contains("NaN"));
    }

    #[test]
    fn write_json_error_names_the_path() {
        let path = std::path::Path::new("/nonexistent-dir-ppa/out.json");
        let err = write_json(&tiny_summary(), path).unwrap_err();
        assert!(
            err.to_string().contains("/nonexistent-dir-ppa/out.json"),
            "error must name the target path: {err}"
        );
    }

    #[test]
    fn write_json_round_trips_to_disk() {
        let dir = std::env::temp_dir().join("ppa_bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_json(&tiny_summary(), &path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with('{') && body.trim_end().ends_with('}'));
        std::fs::remove_file(&path).ok();
    }
}
