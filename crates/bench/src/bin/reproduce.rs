//! Reproduces the paper's evaluation figures: markdown tables on stdout,
//! progress and timings on stderr, and (optionally) a machine-readable
//! report on disk.
//!
//! ```text
//! reproduce [--quick] [--jobs N] [--shards N] [--seed S] [--swarm N]
//!           [--json PATH] [--trace-dir DIR] [--list] [--filter SUBSTR]
//!           [fig07 fig08 fig09 fig10 fig12 fig13 fig14 tentative corr_sweep
//!            placement_sweep adaptive_sweep refail_sweep scale_sweep
//!            chaos_swarm | all]
//! ```
//!
//! Experiments run concurrently on a bounded worker pool (`--jobs`,
//! default = available parallelism); stdout is byte-identical for any job
//! count — timings never touch it. `--shards` additionally shards every
//! driven run's event loop internally (`EngineConfig::shards`); output is
//! byte-identical for any shard count too. `--trace-dir` records every
//! driven run's engine-event stream under `DIR/<experiment>/` as JSONL +
//! Chrome `trace_event` files, themselves byte-identical for any job or
//! shard count. `--seed` re-roots the chaos swarm's scenario stream and
//! `--swarm` overrides its scenario count (`reproduce --seed S --swarm N
//! chaos_swarm` replays exactly the swarm a CI failure named).

use ppa_bench::{registry, render_markdown, run_experiments, RunOptions};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: reproduce [--quick] [--jobs N] [--shards N] \
     [--seed S] [--swarm N] [--json PATH] [--trace-dir DIR] [--list] \
     [--filter SUBSTR] [EXPERIMENT.. | all]";

fn main() -> ExitCode {
    let mut opts = RunOptions {
        progress: true,
        ..RunOptions::default()
    };
    let mut json_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => opts.quick = true,
            "--jobs" | "-j" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--jobs needs a positive integer\n{USAGE}");
                    return ExitCode::from(2);
                };
                if n == 0 {
                    eprintln!("--jobs must be at least 1\n{USAGE}");
                    return ExitCode::from(2);
                }
                opts.jobs = n;
            }
            "--shards" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--shards needs a positive integer\n{USAGE}");
                    return ExitCode::from(2);
                };
                if n == 0 {
                    eprintln!("--shards must be at least 1\n{USAGE}");
                    return ExitCode::from(2);
                }
                opts.shards = Some(n);
            }
            "--seed" => {
                let Some(raw) = args.next() else {
                    eprintln!("--seed needs an unsigned 64-bit integer\n{USAGE}");
                    return ExitCode::from(2);
                };
                let Ok(s) = raw.parse::<u64>() else {
                    eprintln!("--seed needs an unsigned 64-bit integer, got \"{raw}\"\n{USAGE}");
                    return ExitCode::from(2);
                };
                opts.seed = Some(s);
            }
            "--swarm" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--swarm needs a positive integer\n{USAGE}");
                    return ExitCode::from(2);
                };
                if n == 0 {
                    eprintln!("--swarm must be at least 1\n{USAGE}");
                    return ExitCode::from(2);
                }
                opts.swarm = Some(n);
            }
            "--json" => {
                let Some(p) = args.next() else {
                    eprintln!("--json needs a path\n{USAGE}");
                    return ExitCode::from(2);
                };
                json_path = Some(PathBuf::from(p));
            }
            "--trace-dir" => {
                let Some(d) = args.next() else {
                    eprintln!("--trace-dir needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                };
                opts.trace_dir = Some(PathBuf::from(d));
            }
            "--filter" | "-f" => {
                let Some(f) = args.next() else {
                    eprintln!("--filter needs an id substring\n{USAGE}");
                    return ExitCode::from(2);
                };
                opts.filter = Some(f);
            }
            "--list" | "-l" => {
                // Discovery without reading experiments/mod.rs: one line
                // per experiment, id first (stable column for scripts),
                // then what it reproduces.
                for e in registry() {
                    println!("{:16} {}", e.id, e.description);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}\n\nknown experiments:");
                for e in registry() {
                    println!("  {:10} {} [{}]", e.id, e.description, e.section);
                }
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            id => {
                // Dedupe repeated selectors: `reproduce fig08 fig08` runs
                // fig08 once, not twice.
                let id = id.to_lowercase();
                if !opts.only.contains(&id) {
                    opts.only.push(id);
                }
            }
        }
    }

    if let Err(err) = ppa_bench::runner::select(&opts.only, opts.filter.as_deref()) {
        eprintln!("{err}; known ids:");
        for e in registry() {
            eprintln!("  {:10} {}", e.id, e.description);
        }
        return ExitCode::from(2);
    }

    let summary = run_experiments(&opts);
    print!("{}", render_markdown(&summary));

    eprintln!(
        "== {} experiment(s) in {:.1?} on {} worker(s)",
        summary.results.len(),
        summary.total_wall,
        summary.jobs
    );
    for result in &summary.results {
        eprintln!("   {:10} {:.1?}", result.id, result.wall);
    }

    if let Some(path) = json_path {
        if let Err(err) = ppa_bench::report::write_json(&summary, &path) {
            // write_json's error already names the target path.
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
