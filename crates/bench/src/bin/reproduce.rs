//! Reproduces the paper's evaluation figures and prints each as a markdown
//! table.
//!
//! ```text
//! reproduce [--quick] [fig07 fig08 fig09 fig10 fig12 fig13 fig14 tentative | all]
//! ```

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .map(|a| a.to_lowercase())
        .collect();
    let run_all = wanted.is_empty() || wanted.iter().any(|w| w == "all");

    println!(
        "# PPA reproduction run ({} mode)\n",
        if quick { "quick" } else { "full" }
    );
    println!(
        "Reproducing: Su & Zhou, \"Tolerating Correlated Failures in Massively \
         Parallel Stream Processing Engines\", ICDE 2016.\n"
    );

    let mut matched = false;
    for (id, description, runner) in ppa_bench::registry() {
        if !run_all && !wanted.iter().any(|w| w == id) {
            continue;
        }
        matched = true;
        eprintln!(">> running {id}: {description}");
        let start = Instant::now();
        let figures = runner(quick);
        let elapsed = start.elapsed();
        println!("## {description}\n");
        for fig in &figures {
            print!("{}", fig.to_markdown());
        }
        println!("_(generated in {:.1?})_\n", elapsed);
    }

    if !matched {
        eprintln!("no experiment matched; known ids:");
        for (id, description, _) in ppa_bench::registry() {
            eprintln!("  {id:10} {description}");
        }
        std::process::exit(2);
    }
}
