//! Figure = labelled series over a shared x-axis, rendered as markdown
//! (for stdout) or JSON (for the `--json` reporter).

use crate::json::Json;

/// One series of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    pub label: String,
    /// (x tick label, y value) pairs.
    pub points: Vec<(String, f64)>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: impl Into<String>, y: f64) {
        self.points.push((x.into(), y));
    }
}

/// One reproduced figure.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier, e.g. "fig08".
    pub id: String,
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<Series>,
    /// Free-form notes (calibration caveats, paper comparison).
    pub notes: Vec<String>,
}

impl Figure {
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// The union of x tick labels across series, in first-seen order.
    fn ticks(&self) -> Vec<String> {
        let mut ticks = Vec::new();
        for s in &self.series {
            for (x, _) in &s.points {
                if !ticks.contains(x) {
                    ticks.push(x.clone());
                }
            }
        }
        ticks
    }

    /// Renders the figure as a markdown table (rows = x ticks).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        let ticks = self.ticks();
        out.push_str(&format!(
            "| {} | {} |\n",
            self.x_label,
            self.series
                .iter()
                .map(|s| s.label.as_str())
                .collect::<Vec<_>>()
                .join(" | ")
        ));
        out.push_str(&format!("|{}|\n", "---|".repeat(self.series.len() + 1)));
        for tick in &ticks {
            let mut row = format!("| {tick} ");
            for s in &self.series {
                let v = s.points.iter().find(|(x, _)| x == tick).map(|(_, y)| *y);
                match v {
                    Some(y) if y.is_finite() => row.push_str(&format!("| {y:.3} ")),
                    _ => row.push_str("| — "),
                }
            }
            row.push_str("|\n");
            out.push_str(&row);
        }
        out.push_str(&format!("\n*y: {}*\n", self.y_label));
        for n in &self.notes {
            out.push_str(&format!("\n> {n}\n"));
        }
        out.push('\n');
        out
    }

    /// The figure as a JSON value. Non-finite y values (unrecovered runs)
    /// serialize as `null`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::str(&self.id)),
            ("title", Json::str(&self.title)),
            ("x_label", Json::str(&self.x_label)),
            ("y_label", Json::str(&self.y_label)),
            (
                "series",
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("label", Json::str(&s.label)),
                                (
                                    "points",
                                    Json::Arr(
                                        s.points
                                            .iter()
                                            .map(|(x, y)| {
                                                Json::obj(vec![
                                                    ("x", Json::str(x)),
                                                    ("y", Json::opt_num(Some(*y))),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "notes",
                Json::Arr(self.notes.iter().map(Json::str).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut f = Figure::new("figX", "Test", "x", "latency (s)");
        let mut a = Series::new("A");
        a.push("p1", 1.0);
        a.push("p2", 2.5);
        let mut b = Series::new("B");
        b.push("p1", 3.0);
        f.series.push(a);
        f.series.push(b);
        f.note("a note");
        let md = f.to_markdown();
        assert!(md.contains("### figX — Test"));
        assert!(md.contains("| x | A | B |"));
        assert!(md.contains("| p1 | 1.000 | 3.000 |"));
        assert!(
            md.contains("| p2 | 2.500 | — |"),
            "missing point renders as dash:\n{md}"
        );
        assert!(md.contains("> a note"));
    }

    #[test]
    fn ticks_preserve_order() {
        let mut f = Figure::new("f", "t", "x", "y");
        let mut s = Series::new("s");
        s.push("b", 1.0);
        s.push("a", 2.0);
        f.series.push(s);
        assert_eq!(f.ticks(), vec!["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn json_rendering_nan_is_null() {
        let mut f = Figure::new("f", "t", "x", "y");
        let mut s = Series::new("s");
        s.push("a", 1.5);
        s.push("b", f64::NAN);
        f.series.push(s);
        let json = f.to_json().to_pretty();
        assert!(json.contains("\"id\": \"f\""));
        assert!(json.contains("\"y\": 1.5"));
        assert!(
            json.contains("\"y\": null"),
            "NaN serializes as null:\n{json}"
        );
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn nan_renders_as_dash() {
        let mut f = Figure::new("f", "t", "x", "y");
        let mut s = Series::new("s");
        s.push("a", f64::NAN);
        f.series.push(s);
        assert!(f.to_markdown().contains("| a | — |"));
    }
}
