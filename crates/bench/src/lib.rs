//! # ppa-bench — the experiment harness
//!
//! One module per result figure of the paper's evaluation (§VI). Each
//! experiment returns [`Figure`]s: labelled series over a shared x-axis,
//! printable as a markdown table — the same rows/series the paper plots.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p ppa-bench --bin reproduce              # full scale
//! cargo run --release -p ppa-bench --bin reproduce -- --quick   # CI scale
//! cargo run --release -p ppa-bench --bin reproduce -- --jobs 4 --json out.json fig08 fig13
//! cargo run --release -p ppa-bench --bin reproduce -- --list    # known experiment ids
//! ```
//!
//! ## Architecture
//!
//! * [`registry`] — the [`Experiment`] table, in paper order.
//! * [`runner`] — runs experiments concurrently; every simulated run and
//!   planned topology is a *leaf job* on one global bounded worker pool
//!   ([`pool::Gate`], `--jobs` permits), and results are collected in
//!   registry order so output is byte-identical for any job count.
//! * [`report`] — the `--json` reporter: figures, per-run recovery
//!   latencies and wall-clock timings, serialized with the dependency-free
//!   [`json`] writer.
//!
//! The benches under `benches/` time scaled-down versions of the same
//! experiments (one `harness = false` target per figure; see README.md).

pub mod experiments;
pub mod figure;
pub mod json;
pub mod pool;
pub mod report;
pub mod runner;
pub mod stopwatch;

pub use figure::{Figure, Series};
pub use runner::{
    render_markdown, run_experiments, ExperimentResult, RecoveryRecord, RunCtx, RunLog, RunOptions,
    RunSummary,
};

use ppa_sim::SimDuration;

/// Converts an optional recovery latency into seconds for reporting. An
/// unrecovered run yields NaN — the "absent" sentinel that renders as `—`
/// in markdown tables and `null` in JSON (never as the string `NaN`).
pub fn latency_secs(d: Option<SimDuration>) -> f64 {
    d.map_or(f64::NAN, |d| d.as_secs_f64())
}

/// One reproducible experiment: a stable id, what it reproduces, and the
/// paper section it belongs to.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Stable identifier, e.g. `"fig08"` (also the CLI selector).
    pub id: &'static str,
    /// Human description, shown as the section heading.
    pub description: &'static str,
    /// Paper section the figure comes from, e.g. `"§VI-A"`.
    pub section: &'static str,
    /// The runner; submits its heavy work as leaf jobs on [`RunCtx::map`].
    pub run: Runner,
}

/// An experiment entry point.
pub type Runner = fn(&RunCtx) -> Vec<Figure>;

/// All experiments in paper order. The runner executes and prints them in
/// exactly this order regardless of `--jobs`.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig07",
            description: "Recovery latency of single node failure (Fig. 7)",
            section: "§VI-A",
            run: experiments::fig07::run,
        },
        Experiment {
            id: "fig08",
            description: "Recovery latency of correlated failure (Fig. 8)",
            section: "§VI-A",
            run: experiments::fig08::run,
        },
        Experiment {
            id: "fig09",
            description: "CPU cost of maintaining checkpoints (Fig. 9)",
            section: "§VI-A",
            run: experiments::fig09::run,
        },
        Experiment {
            id: "fig10",
            description: "Recovery latency of correlated failure with PPA plans (Fig. 10)",
            section: "§VI-A",
            run: experiments::fig10::run,
        },
        Experiment {
            id: "fig12",
            description: "OF/IC metric validation against measured accuracy (Fig. 12)",
            section: "§VI-B",
            run: experiments::fig12::run,
        },
        Experiment {
            id: "fig13",
            description: "DP vs SA vs Greedy: OF and measured accuracy (Fig. 13)",
            section: "§VI-C",
            run: experiments::fig13::run,
        },
        Experiment {
            id: "fig14",
            description: "SA vs Greedy on random topologies (Fig. 14 a-d)",
            section: "§VI-C",
            run: experiments::fig14::run,
        },
        Experiment {
            id: "tentative",
            description: "Tentative output latency vs full recovery (conclusion's 10x claim)",
            section: "§VII",
            run: experiments::tentative::run,
        },
        Experiment {
            id: "corr_sweep",
            description: "Generated correlated-failure sweep: burst size × correlation × strategy",
            section: "beyond §VI",
            run: experiments::corr_sweep::run,
        },
        Experiment {
            id: "placement_sweep",
            description:
                "Placement strategies (spread/packed/round-robin) under the burst/cascade grid",
            section: "beyond §VI",
            run: experiments::placement_sweep::run,
        },
        Experiment {
            id: "adaptive_sweep",
            description:
                "Control-plane adaptation (migrate + replan) vs static under generated failures",
            section: "beyond §VI",
            run: experiments::adaptive_sweep::run,
        },
        Experiment {
            id: "refail_sweep",
            description:
                "Repeated cascade waves killing activated replicas: honest re-failure accounting",
            section: "beyond §VI",
            run: experiments::refail_sweep::run,
        },
        Experiment {
            id: "scale_sweep",
            description:
                "Event-loop throughput at scale: shard count × cluster size, deterministic outputs",
            section: "beyond §VI",
            run: experiments::scale_sweep::run,
        },
        Experiment {
            id: "approx_sweep",
            description:
                "Divergence-bounded approximate recovery vs exact checkpointing: latency for fidelity",
            section: "beyond §VI",
            run: experiments::approx_sweep::run,
        },
        Experiment {
            id: "chaos_swarm",
            description:
                "Seeded chaos swarm: buggified scenarios checked against engine invariants",
            section: "beyond §VI",
            run: experiments::chaos_swarm::run,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_secs_sentinel() {
        assert!(latency_secs(None).is_nan());
        assert_eq!(latency_secs(Some(SimDuration::from_secs(3))), 3.0);
    }

    #[test]
    fn registry_ids_are_unique_and_ordered() {
        let ids: Vec<_> = registry().iter().map(|e| e.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids.len(), sorted.len(), "duplicate experiment ids");
        assert_eq!(ids.first(), Some(&"fig07"));
        assert_eq!(ids.last(), Some(&"chaos_swarm"));
    }
}
