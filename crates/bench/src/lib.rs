//! # ppa-bench — the experiment harness
//!
//! One module per result figure of the paper's evaluation (§VI). Each
//! experiment returns a [`Figure`]: labelled series over a shared x-axis,
//! printable as a markdown table — the same rows/series the paper plots.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p ppa-bench --bin reproduce            # full scale
//! cargo run --release -p ppa-bench --bin reproduce -- --quick # CI scale
//! cargo run --release -p ppa-bench --bin reproduce -- fig08 fig13
//! ```
//!
//! The criterion benches under `benches/` time scaled-down versions of the
//! same experiments (one bench target per figure).

pub mod experiments;
pub mod figure;

pub use figure::{Figure, Series};

use ppa_sim::SimDuration;

/// Converts an optional recovery latency into seconds for reporting
/// (unrecovered = NaN so it is visibly absent from tables).
pub fn latency_secs(d: Option<SimDuration>) -> f64 {
    d.map_or(f64::NAN, |d| d.as_secs_f64())
}

/// The experiment registry: (id, description, runner).
pub type Runner = fn(quick: bool) -> Vec<Figure>;

/// All experiments in paper order.
pub fn registry() -> Vec<(&'static str, &'static str, Runner)> {
    vec![
        (
            "fig07",
            "Recovery latency of single node failure (Fig. 7)",
            experiments::fig07::run,
        ),
        (
            "fig08",
            "Recovery latency of correlated failure (Fig. 8)",
            experiments::fig08::run,
        ),
        (
            "fig09",
            "CPU cost of maintaining checkpoints (Fig. 9)",
            experiments::fig09::run,
        ),
        (
            "fig10",
            "Recovery latency of correlated failure with PPA plans (Fig. 10)",
            experiments::fig10::run,
        ),
        (
            "fig12",
            "OF/IC metric validation against measured accuracy (Fig. 12)",
            experiments::fig12::run,
        ),
        (
            "fig13",
            "DP vs SA vs Greedy: OF and measured accuracy (Fig. 13)",
            experiments::fig13::run,
        ),
        (
            "fig14",
            "SA vs Greedy on random topologies (Fig. 14 a-d)",
            experiments::fig14::run,
        ),
        (
            "tentative",
            "Tentative output latency vs full recovery (conclusion's 10x claim)",
            experiments::tentative::run,
        ),
    ]
}
